//! Cross-crate integration: full testbed runs under every workload, with
//! protocol guarantees checked end to end.

use speedlight::core::consistency::ConservationChecker;
use speedlight::core::observer::UnitOutcome;
use speedlight::experiments::common::{attach_workload, standard_testbed, Workload};
use speedlight::fabric::network::DriverConfig;
use speedlight::fabric::switchmod::SnapshotConfig;
use speedlight::fabric::topology::LbKind;
use speedlight::netsim::time::{Duration, Instant};
use speedlight::telemetry::MetricKind;

fn driver(period_ms: u64) -> DriverConfig {
    DriverConfig {
        snapshot_period: Some(Duration::from_millis(period_ms)),
        ..DriverConfig::default()
    }
}

#[test]
fn every_workload_completes_snapshots_under_both_balancers() {
    for workload in Workload::all() {
        for lb in [LbKind::Ecmp, LbKind::Flowlet { gap_us: 60 }] {
            let mut tb = standard_testbed(SnapshotConfig::ewma(256), lb, driver(5), 42);
            attach_workload(&mut tb, workload, 42);
            tb.run_until(Instant::ZERO + Duration::from_millis(120));
            let snaps = tb.snapshots();
            assert!(
                snaps.len() >= 15,
                "{workload:?}/{lb:?}: only {} snapshots",
                snaps.len()
            );
            for rec in snaps {
                assert!(
                    !rec.forced,
                    "{workload:?}/{lb:?} epoch {}",
                    rec.snapshot.epoch
                );
                assert!(rec.snapshot.fully_consistent());
            }
        }
    }
}

#[test]
fn channel_state_snapshots_conserve_packets_under_real_workloads() {
    let mut tb = standard_testbed(
        SnapshotConfig::packet_count_cs(256),
        LbKind::Ecmp,
        driver(8),
        7,
    );
    attach_workload(&mut tb, Workload::Memcache, 7);
    tb.network_mut().enable_audit();
    tb.run_until(Instant::ZERO + Duration::from_millis(150));
    let snaps = tb.snapshots().to_vec();
    assert!(snaps.len() >= 10, "{} snapshots", snaps.len());

    let audit: &ConservationChecker = tb.network().instr.audit.as_ref().unwrap();
    let mut audited = Vec::new();
    for rec in &snaps {
        for (uid, outcome) in &rec.snapshot.units {
            if let UnitOutcome::Value { local, channel } = outcome {
                audited.push((*uid, rec.snapshot.epoch, *local, Some(*channel)));
            }
        }
    }
    assert!(audited.len() > 100);
    let violations = audit.audit(audited);
    assert!(violations.is_empty(), "violations: {violations:#?}");
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let run = || {
        let mut tb = standard_testbed(
            SnapshotConfig::packet_count_cs(128),
            LbKind::Flowlet { gap_us: 80 },
            driver(5),
            1234,
        );
        attach_workload(&mut tb, Workload::GraphX, 1234);
        tb.run_until(Instant::ZERO + Duration::from_millis(80));
        tb.snapshots()
            .iter()
            .map(|r| {
                (
                    r.snapshot.epoch,
                    r.completed_at.as_nanos(),
                    r.snapshot.consistent_total(),
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn counter_totals_grow_monotonically_across_epochs() {
    let mut tb = standard_testbed(
        SnapshotConfig::packet_count_cs(256),
        LbKind::Ecmp,
        driver(4),
        9,
    );
    attach_workload(&mut tb, Workload::Hadoop, 9);
    tb.run_until(Instant::ZERO + Duration::from_millis(120));
    let mut totals: Vec<(u64, u64)> = tb
        .snapshots()
        .iter()
        .map(|r| (r.snapshot.epoch, r.snapshot.consistent_total()))
        .collect();
    totals.sort_unstable();
    assert!(totals.len() >= 15);
    for w in totals.windows(2) {
        assert!(
            w[1].1 >= w[0].1,
            "a consistent cut of a monotone counter cannot decrease: {w:?}"
        );
    }
}

#[test]
fn queue_depth_snapshots_capture_plausible_gauges() {
    use speedlight::workloads::memcache::{MemcacheClient, MemcacheConfig, MemcacheServer};
    let mut tb = standard_testbed(
        SnapshotConfig {
            modulus: 256,
            channel_state: false,
            ingress_metric: MetricKind::PacketCount,
            egress_metric: MetricKind::QueueDepth,
        },
        LbKind::Ecmp,
        driver(1),
        11,
    );
    // A hot multi-get workload: large shards make the response incast
    // actually occupy the client-side egress queues.
    let mc = MemcacheConfig {
        rate_rps: 30_000.0,
        value_bytes: 1_000,
        ..MemcacheConfig::default()
    };
    for c in 0..3u32 {
        tb.set_source(
            c,
            Instant::ZERO,
            Box::new(MemcacheClient::new(c, vec![3, 4, 5], mc.clone(), 11)),
        );
    }
    for (i, srv) in [3u32, 4, 5].into_iter().enumerate() {
        tb.set_source(
            srv,
            Instant::ZERO,
            Box::new(MemcacheServer::new(
                srv,
                i,
                3,
                vec![0, 1, 2],
                mc.clone(),
                11,
            )),
        );
    }
    tb.run_until(Instant::ZERO + Duration::from_millis(100));
    // Queue depths are small non-negative numbers; at least one snapshot
    // should catch a non-empty queue under incast-y memcache.
    let mut saw_buildup = false;
    for rec in tb.snapshots() {
        for (uid, outcome) in &rec.snapshot.units {
            if uid.direction == speedlight::core::Direction::Egress {
                if let Some(v) = outcome.local() {
                    assert!(v < 10_000, "absurd queue depth {v}");
                    saw_buildup |= v > 0;
                }
            }
        }
    }
    assert!(saw_buildup, "expected some queue occupancy to be captured");
}
