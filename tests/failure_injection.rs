//! Failure injection and partial deployment (§6, §10).

use speedlight::core::observer::UnitOutcome;
use speedlight::experiments::common::{attach_workload, standard_testbed, Workload};
use speedlight::fabric::network::DriverConfig;
use speedlight::fabric::switchmod::SnapshotConfig;
use speedlight::fabric::testbed::{Testbed, TestbedConfig};
use speedlight::fabric::topology::{LbKind, Topology};
use speedlight::netsim::dist::Dist;
use speedlight::netsim::time::{Duration, Instant};
use speedlight::telemetry::MetricKind;
use speedlight::workloads::PoissonSource;

#[test]
fn failed_device_is_excluded_not_wedging_the_observer() {
    let mut tb = standard_testbed(
        SnapshotConfig::packet_count_cs(128),
        LbKind::Ecmp,
        DriverConfig {
            snapshot_period: Some(Duration::from_millis(10)),
            device_timeout: Duration::from_millis(40),
            ..DriverConfig::default()
        },
        5,
    );
    attach_workload(&mut tb, Workload::Memcache, 5);
    // Run healthy for a while, then spine 3 "fails" (stops participating
    // in the snapshot protocol; it still forwards).
    tb.run_until(Instant::ZERO + Duration::from_millis(35));
    tb.network_mut().switches[3].snapshot_enabled = false;
    tb.run_until(Instant::ZERO + Duration::from_millis(200));

    let snaps = tb.snapshots();
    let healthy = snaps.iter().filter(|r| !r.forced).count();
    let forced = snaps.iter().filter(|r| r.forced).count();
    assert!(healthy >= 2, "pre-failure snapshots should complete");
    assert!(forced >= 5, "post-failure snapshots should force-finalize");
    // Forced snapshots exclude device 3 but keep everyone else's values.
    let last = snaps.iter().rev().find(|r| r.forced).unwrap();
    assert!(last.snapshot.excluded.contains(&3));
    assert!(last.snapshot.devices.contains(&0));
    let usable = last.snapshot.usable().count();
    assert!(usable > 0, "non-failed devices still report");
    // And every unit of the failed device is marked, not fabricated.
    for (uid, outcome) in &last.snapshot.units {
        if uid.device == 3 {
            assert_eq!(*outcome, UnitOutcome::DeviceExcluded);
        }
    }
}

#[test]
fn two_devices_failing_in_the_same_epoch_are_both_excluded() {
    // Regression for `observer::force_finalize` with multiple lagging
    // devices: when two switches die simultaneously mid-epoch, every
    // forced snapshot after the failure must exclude BOTH of them while
    // the surviving devices keep reporting usable values.
    let mut tb = standard_testbed(
        SnapshotConfig::packet_count_cs(128),
        LbKind::Ecmp,
        DriverConfig {
            snapshot_period: Some(Duration::from_millis(10)),
            device_timeout: Duration::from_millis(40),
            ..DriverConfig::default()
        },
        7,
    );
    attach_workload(&mut tb, Workload::Memcache, 7);
    tb.run_until(Instant::ZERO + Duration::from_millis(35));
    // Both spines fail in the same instant — same epoch, same timeout.
    tb.network_mut().switches[2].snapshot_enabled = false;
    tb.network_mut().switches[3].snapshot_enabled = false;
    tb.run_until(Instant::ZERO + Duration::from_millis(200));

    let snaps = tb.snapshots();
    assert!(snaps.iter().filter(|r| !r.forced).count() >= 2);
    let forced: Vec<_> = snaps.iter().filter(|r| r.forced).collect();
    assert!(
        forced.len() >= 5,
        "post-failure snapshots should force-finalize"
    );
    let last = forced.last().unwrap();
    assert!(
        last.snapshot.excluded.contains(&2) && last.snapshot.excluded.contains(&3),
        "both failed devices must be excluded, got {:?}",
        last.snapshot.excluded
    );
    assert!(last.snapshot.devices.contains(&0));
    assert!(last.snapshot.usable().count() > 0, "survivors still report");
    for (uid, outcome) in &last.snapshot.units {
        if uid.device == 2 || uid.device == 3 {
            assert_eq!(*outcome, UnitOutcome::DeviceExcluded);
        }
    }
}

#[test]
fn tiny_notification_buffer_degrades_gracefully() {
    let topo = Topology::leaf_spine(2, 2, 3);
    let mut cfg = TestbedConfig::new(SnapshotConfig {
        modulus: 256,
        channel_state: false,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    });
    cfg.latency.cp_queue_capacity = 2; // absurdly small socket buffer
    cfg.driver.snapshot_period = Some(Duration::from_millis(5));
    let mut tb = Testbed::new(topo, cfg);
    for h in 0..6u32 {
        let dsts: Vec<u32> = (0..6).filter(|&d| d != h).collect();
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(PoissonSource::new(
                h,
                dsts,
                50_000.0,
                Dist::constant(500.0),
                5,
            )),
        );
    }
    tb.run_until(Instant::ZERO + Duration::from_millis(250));
    let drops: u64 = tb
        .network()
        .switches
        .iter()
        .map(|s| s.stats.notify_drops)
        .sum();
    assert!(drops > 0, "the test must actually drop notifications");
    // Snapshots still finish (retries + conservative marking), and any
    // value that IS reported consistent remains trustworthy.
    assert!(
        tb.snapshots().len() >= 20,
        "only {} snapshots",
        tb.snapshots().len()
    );
}

#[test]
fn partial_deployment_on_a_line_still_snapshots_consistently() {
    // §10: only some devices are snapshot-enabled. On a 4-switch line,
    // disable the middle two; the edge switches still take a consistent
    // snapshot with the shim transiting the disabled region untouched.
    let topo = Topology::line(4);
    let mut cfg = TestbedConfig::new(SnapshotConfig {
        modulus: 128,
        channel_state: false, // multi-hop gaps keep per-channel FIFO: line topology
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    });
    cfg.driver.snapshot_period = Some(Duration::from_millis(5));
    let mut tb = Testbed::new(topo, cfg);
    // Disable switches 1 and 2 and remove them from the observer set.
    for sw in [1u16, 2] {
        tb.network_mut().switches[usize::from(sw)].snapshot_enabled = false;
        tb.network_mut().observer.detach_device(sw);
    }
    tb.set_source(
        0,
        Instant::ZERO,
        Box::new(PoissonSource::new(
            0,
            vec![1],
            80_000.0,
            Dist::constant(400.0),
            3,
        )),
    );
    tb.set_source(
        1,
        Instant::ZERO,
        Box::new(PoissonSource::new(
            1,
            vec![0],
            80_000.0,
            Dist::constant(400.0),
            4,
        )),
    );
    tb.run_until(Instant::ZERO + Duration::from_millis(150));

    let snaps = tb.snapshots();
    assert!(snaps.len() >= 20, "{} snapshots", snaps.len());
    for rec in snaps {
        assert!(!rec.forced);
        assert!(rec.snapshot.fully_consistent());
        // Only the enabled edge devices participate.
        for uid in rec.snapshot.units.keys() {
            assert!(uid.device == 0 || uid.device == 3, "unexpected {uid}");
        }
    }
    // Disabled switches processed traffic but took no snapshots.
    let mid = &tb.network().switches[1];
    assert!(mid.stats.ingress_packets > 1_000);
    assert_eq!(mid.cp.stats().notifications, 0);
}

#[test]
fn node_attachment_joins_the_next_epoch() {
    // §6 "Node attachment": a switch that is snapshot-disabled at first
    // joins later; it participates from the next initiated epoch on, and
    // pre-attachment epochs are unaffected.
    let mut tb = standard_testbed(
        SnapshotConfig::packet_count_cs(128),
        LbKind::Ecmp,
        DriverConfig {
            snapshot_period: Some(Duration::from_millis(10)),
            ..DriverConfig::default()
        },
        6,
    );
    attach_workload(&mut tb, Workload::Memcache, 6);
    // Detach spine 3 from the observer before anything runs.
    tb.network_mut().observer.detach_device(3);
    tb.run_until(Instant::ZERO + Duration::from_millis(45));
    let before = tb.snapshots().len();
    assert!(before >= 2);
    for rec in &tb.snapshots()[..before] {
        assert!(rec.snapshot.units.keys().all(|u| u.device != 3));
    }
    // Re-attach: present from the next epoch.
    let units = tb.network().switches[3].unit_ids();
    tb.network_mut().observer.register_device(3, units);
    tb.run_until(Instant::ZERO + Duration::from_millis(160));
    let after: Vec<_> = tb.snapshots()[before..].to_vec();
    assert!(!after.is_empty());
    let joined = after
        .iter()
        .filter(|r| r.snapshot.units.keys().any(|u| u.device == 3))
        .count();
    assert!(joined >= after.len() - 1, "device 3 must join promptly");
    for rec in &after {
        assert!(!rec.forced, "attachment must not wedge epochs");
    }
}
