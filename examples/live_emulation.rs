//! Live (threaded) emulation: real threads, real channels, real clocks.
//!
//! Runs a line of switch devices as OS threads connected by channels,
//! drives traffic from generator threads, and takes wall-clock-scheduled
//! snapshots — the synchronization spread you see below includes this
//! machine's *actual* scheduling jitter, the live analogue of Fig. 9.
//!
//! Run with: `cargo run --release --example live_emulation`

use emulation::{Cluster, ClusterConfig};
use std::time::Duration;

fn main() {
    let cfg = ClusterConfig {
        switches: 4,
        modulus: 64,
        channel_state: false,
        snapshots: 20,
        interval: Duration::from_millis(10),
        host_rate: 50_000,
        timeout: Duration::from_millis(500),
        record_deliveries: false,
        fail_devices: Vec::new(),
        reference_observer: false,
    };
    println!(
        "spinning up {} switch threads + 2 host generators, {} snapshots \
         at {:?} intervals…\n",
        cfg.switches, cfg.snapshots, cfg.interval
    );
    let report = Cluster::new(cfg).run();

    println!(
        "frames generated: {}   snapshots completed: {}",
        report.frames_sent,
        report.snapshots.len()
    );
    for snap in &report.snapshots {
        println!(
            "  epoch {:>3}: total receives at cut = {:>8}   consistent: {}",
            snap.epoch,
            snap.consistent_total(),
            snap.fully_consistent()
        );
    }

    let mut spreads: Vec<f64> = report.sync_spread_us.values().copied().collect();
    spreads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !spreads.is_empty() {
        println!(
            "\nwall-clock snapshot sync across devices (real OS jitter): \
             median {:.1} us, max {:.1} us over {} epochs",
            spreads[spreads.len() / 2],
            spreads.last().unwrap(),
            spreads.len()
        );
    }
}
