//! Use case 2 (§8.4): is application traffic synchronized?
//!
//! Runs GraphX-style barrier-synchronized supersteps, measures per-port
//! egress packet rates with snapshots and with polling, and Spearman-tests
//! every port pair — reproducing Fig. 13's finding that snapshots expose
//! correlations (synchronized bursts, ECMP-path siblings) that polling
//! misses.
//!
//! Run with: `cargo run --release --example traffic_correlation`

use experiments::fig13::{run, Fig13Config};
use netsim::time::Duration;

fn main() {
    let cfg = Fig13Config {
        rounds: 80,
        interval: Duration::from_millis(80),
        alpha: 0.1,
        seed: 21,
    };
    println!(
        "taking {} rounds of snapshot + polling measurements under GraphX…\n",
        cfg.rounds
    );
    let fig = run(&cfg);
    println!("{}", fig.render());
}
