//! Use case 3 (§2.2 Q3): catching synchronized incast with queue-depth
//! snapshots.
//!
//! memcache multi-gets make all servers answer a client at once; the
//! responses meet at the client's leaf and momentarily fill its egress
//! queue. A consistent snapshot of queue depths catches all the queues of
//! the incast *at the same instant*; asynchronous polling reads them at
//! different moments and rarely sees the (tens of microseconds long)
//! buildup at all.
//!
//! Run with: `cargo run --release --example incast_detection`

use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::Topology;
use netsim::time::{Duration, Instant};
use telemetry::MetricKind;
use workloads::memcache::{MemcacheClient, MemcacheConfig, MemcacheServer};

fn main() {
    let topo = Topology::leaf_spine(2, 2, 3);
    let mut cfg = TestbedConfig::new(SnapshotConfig {
        modulus: 512,
        channel_state: false,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::QueueDepth, // snapshot the queues
    });
    cfg.driver = DriverConfig {
        snapshot_period: Some(Duration::from_micros(500)),
        poll_period: Some(Duration::from_millis(5)),
        ..DriverConfig::default()
    };
    let mut tb = Testbed::new(topo, cfg);

    // A heavy multi-get workload: clients on leaf 0, servers on leaf 1.
    let mc = MemcacheConfig {
        rate_rps: 30_000.0,
        keys_per_request: 50,
        value_bytes: 1_200,
        ..MemcacheConfig::default()
    };
    for c in 0..3u32 {
        tb.set_source(
            c,
            Instant::ZERO,
            Box::new(MemcacheClient::new(c, vec![3, 4, 5], mc.clone(), 99)),
        );
    }
    for (i, s) in [3u32, 4, 5].into_iter().enumerate() {
        tb.set_source(
            s,
            Instant::ZERO,
            Box::new(MemcacheServer::new(s, i, 3, vec![0, 1, 2], mc.clone(), 99)),
        );
    }
    tb.run_until(Instant::ZERO + Duration::from_millis(300));

    // For each snapshot: total queued packets across leaf-0 host-facing
    // egress queues (where the incast lands), plus how many queues were
    // non-empty simultaneously.
    let mut best = (0u64, 0usize, 0u64); // (total, queues, epoch)
    let mut nonzero_snaps = 0usize;
    for rec in tb.snapshots() {
        let mut total = 0;
        let mut queues = 0;
        for port in 2..5u16 {
            if let Some(v) = rec
                .snapshot
                .units
                .get(&speedlight_core::UnitId::egress(0, port))
                .and_then(|o| o.local())
            {
                total += v;
                queues += usize::from(v > 0);
            }
        }
        if total > 0 {
            nonzero_snaps += 1;
        }
        if total > best.0 {
            best = (total, queues, rec.snapshot.epoch);
        }
    }
    println!(
        "{} snapshots taken; {} caught queue buildup at leaf 0",
        tb.snapshots().len(),
        nonzero_snaps
    );
    println!(
        "worst incast (epoch {}): {} packets queued across {} host-facing \
         queues *simultaneously* — synchronized buildup, the incast signature",
        best.2, best.0, best.1
    );

    // The polling view of the same queues.
    let mut poll_nonzero = 0usize;
    let mut poll_best = 0u64;
    for sweep in tb.polls() {
        let total: u64 = sweep
            .samples
            .iter()
            .filter(|(u, _, _)| {
                u.device == 0
                    && u.direction == speedlight_core::Direction::Egress
                    && (2..5).contains(&u.port)
            })
            .map(|&(_, v, _)| v)
            .sum();
        poll_nonzero += usize::from(total > 0);
        poll_best = poll_best.max(total);
    }
    println!(
        "\npolling took {} sweeps: {} saw any buildup, max total {} packets \
         — reads of the three queues happen ~100 µs apart, so the \
         synchronized spike is gone before the sweep finishes",
        tb.polls().len(),
        poll_nonzero,
        poll_best
    );
}
