//! Quickstart: take one synchronized network snapshot.
//!
//! Builds the paper's leaf-spine testbed (Fig. 8), runs steady traffic,
//! takes a channel-state snapshot of per-port packet counters, and prints
//! the causally-consistent network-wide view — contrasted with an
//! asynchronous polling sweep of the same counters.
//!
//! Run with: `cargo run --release --example quickstart`

use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::Topology;
use netsim::dist::Dist;
use netsim::time::{Duration, Instant};
use speedlight_core::observer::UnitOutcome;
use workloads::PoissonSource;

fn main() {
    // 1. The network: 2 leaves × 2 spines, 3 hosts per leaf.
    let topo = Topology::leaf_spine(2, 2, 3);

    // 2. Snapshot configuration: per-port packet counters, with channel
    //    state so in-flight packets are captured too.
    let mut cfg = TestbedConfig::new(SnapshotConfig::packet_count_cs(64));
    cfg.driver = DriverConfig {
        poll_period: None,
        ..DriverConfig::default()
    };
    let mut tb = Testbed::new(topo, cfg);

    // 3. Traffic: every host streams to every other host.
    for h in 0..6u32 {
        let dsts: Vec<u32> = (0..6).filter(|&d| d != h).collect();
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(PoissonSource::new(
                h,
                dsts,
                80_000.0,
                Dist::constant(800.0),
                7 + u64::from(h),
            )),
        );
    }

    // 4. One snapshot at t = 5 ms, one polling sweep at the same time.
    tb.snapshot_at(Instant::ZERO + Duration::from_millis(5));
    tb.poll_at(Instant::ZERO + Duration::from_millis(5));
    tb.run_until(Instant::ZERO + Duration::from_millis(120));

    // 5. Inspect.
    let rec = tb.snapshots().first().expect("snapshot completed");
    println!(
        "snapshot epoch {} completed {} after issue ({} units, fully consistent: {})",
        rec.snapshot.epoch,
        rec.completed_at.saturating_since(rec.issued_at),
        rec.snapshot.units.len(),
        rec.snapshot.fully_consistent(),
    );
    println!(
        "causally-consistent network-wide receive count (local + in-flight): {}",
        rec.snapshot.consistent_total()
    );

    let mut in_flight = 0u64;
    for (unit, outcome) in &rec.snapshot.units {
        if let UnitOutcome::Value { local, channel } = outcome {
            if *channel > 0 {
                println!("  {unit}: {local} received, {channel} in flight toward it");
                in_flight += channel;
            }
        }
    }
    println!("total packets captured in flight: {in_flight}");

    let sweep = tb.polls().first().expect("poll sweep");
    let lo = sweep.samples.iter().map(|s| s.2).min().unwrap();
    let hi = sweep.samples.iter().map(|s| s.2).max().unwrap();
    println!(
        "\npolling the same {} counters spanned {} — no two reads describe \
         the same instant, and in-flight packets are invisible",
        sweep.samples.len(),
        hi.saturating_since(lo),
    );
}
