//! Use case 1 (§8.3): is my load balancer actually balancing?
//!
//! Runs the Hadoop shuffle workload under ECMP and under flowlet
//! switching, snapshots the EWMA of packet interarrival across each leaf's
//! uplinks, and prints the imbalance distribution each measurement method
//! reports — the Fig. 12a story in miniature.
//!
//! Run with: `cargo run --release --example load_balancing`

use experiments::common::Workload;
use experiments::fig12::{run, Fig12Config};
use netsim::time::Duration;
use sim_stats::Cdf;

fn summarize(label: &str, cdf: &Cdf) {
    println!(
        "  {label:<18} median {:>8.1} us   p90 {:>8.1} us   n={}",
        cdf.median(),
        cdf.quantile(0.9),
        cdf.len()
    );
}

fn main() {
    let cfg = Fig12Config {
        duration: Duration::from_millis(800),
        ..Fig12Config::default()
    };
    println!("running Hadoop shuffle under ECMP and flowlet switching…\n");
    let fig = run(&cfg);
    let hadoop = fig
        .panels
        .iter()
        .find(|p| p.workload == Workload::Hadoop)
        .expect("hadoop panel");

    println!("stddev of uplink EWMA-of-interarrival (lower = better balanced):");
    summarize("ECMP (snapshots)", &hadoop.ecmp_snapshots);
    summarize("flowlet (snapshots)", &hadoop.flowlet_snapshots);
    println!();
    summarize("ECMP (polling)", &hadoop.ecmp_polling);
    summarize("flowlet (polling)", &hadoop.flowlet_polling);

    let snap_gain = hadoop.ecmp_snapshots.median() / hadoop.flowlet_snapshots.median().max(1e-9);
    let poll_gain = hadoop.ecmp_polling.median() / hadoop.flowlet_polling.median().max(1e-9);
    println!(
        "\nsnapshots show flowlets improving balance {snap_gain:.1}x; \
         polling sees only {poll_gain:.1}x — asynchronous measurements hide \
         the gain (the paper's Fig. 12a)."
    );
}
