//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no registry access, so the
//! handful of `rand` items the codebase uses are vendored here as a path
//! dependency. The subset is intentionally tiny: the core traits
//! ([`RngCore`], [`SeedableRng`], [`Rng`]) plus [`rngs::StdRng`]. `StdRng`
//! is a xoshiro256++ generator — it does **not** bit-match upstream
//! `StdRng`'s ChaCha stream, and nothing in this repo depends on the exact
//! stream (only on determinism for a fixed seed).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// generators in this workspace; exists for trait compatibility).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Construct an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for every generator here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it via SplitMix64 like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift rejection.
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut l = m as u64;
    if l < bound {
        let t = bound.wrapping_neg() % bound;
        while l < t {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            l = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                if span == u64::MAX as u128 {
                    // Full-width range: every u64 is a valid offset.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, span as u64 + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (u01 as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `StdRng`; deterministic per seed,
    /// which is all the tests rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_raw().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // Guard against the all-zero state, which xoshiro cannot leave.
            if s == [0, 0, 0, 0] {
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    impl StdRng {
        #[inline]
        fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(2..6);
            assert!((2..6).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: u64 = rng.gen_range(0u64..=u64::MAX);
        let _ = x; // any value is legal; the point is "no panic"
        let y: u64 = rng.gen_range(1u64..=u64::MAX);
        assert!(y >= 1);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
