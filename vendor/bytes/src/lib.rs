//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply clonable immutable byte buffer) and the
//! [`Buf`]/[`BufMut`] cursor traits, covering exactly the surface the
//! `wire` codec and the emulation layer use: big-endian `u16`/`u8`
//! accessors over `&[u8]` and `Vec<u8>`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source. Multi-byte reads are big-endian
/// (network order), matching upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The readable contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Multi-byte writes are
/// big-endian (network order), matching upstream `bytes`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = Vec::new();
        buf.put_u16(0x5D1C);
        buf.put_u8(1);
        buf.put_u16(0xBEEF);
        assert_eq!(buf, vec![0x5D, 0x1C, 0x01, 0xBE, 0xEF]);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.get_u16(), 0x5D1C);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clones_share_storage() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [9u8, 8, 7];
        let mut r: &[u8] = &data;
        r.advance(1);
        assert_eq!(r.get_u8(), 8);
        assert_eq!(r.remaining(), 1);
    }
}
