//! Offline API-compatible subset of [loom](https://crates.io/crates/loom).
//!
//! This build environment has no registry access, so this shim implements
//! the slice of loom's API the workspace uses, backed by a real — if
//! deliberately simple — model checker:
//!
//! * model threads are OS threads, but **exactly one runs at a time**;
//!   control changes hands only at synchronization operations (atomic
//!   access, mutex lock/unlock, spawn, join, yield);
//! * [`model`] re-runs the closure under depth-first search over the
//!   scheduling decisions at those points, bounded by a preemption budget
//!   (`LOOM_MAX_PREEMPTIONS`, default 2 — the classic CHESS result is
//!   that almost all real concurrency bugs need ≤ 2 preemptions) and an
//!   execution cap (`LOOM_MAX_ITERATIONS`, default 20 000);
//! * a schedule in which every thread is blocked panics with a deadlock
//!   report; an assertion failure inside the closure panics with the
//!   offending schedule appended, so failures are replayable by reading
//!   the trace.
//!
//! **Fidelity caveat:** because every interleaving executes under the
//! scheduler's own lock, the memory model explored is sequential
//! consistency. Reorderings allowed by `Relaxed`/`Acquire`/`Release` but
//! not by SeqCst are *not* explored (orderings are accepted and ignored).
//! That is exactly why the workspace pairs this checker with the
//! `relaxed-ordering` lint (`crates/invariants`), which bans `Relaxed`
//! on cross-thread snapshot state outright, and with ThreadSanitizer in
//! CI: the model checker covers interleaving logic (lost updates, stale
//! polls, deadlocks); the lint and TSan cover the weak-memory residue.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex};

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    /// Waiting for the mutex with this ID.
    BlockedMutex(usize),
    /// Waiting for the thread with this ID to finish.
    BlockedJoin(usize),
    Finished,
}

/// One scheduling decision: who could run, who was picked, and whether
/// picking them preempted a still-runnable predecessor.
#[derive(Debug, Clone)]
struct Decision {
    runnable: Vec<usize>,
    chosen_idx: usize,
    preemptive: bool,
}

struct Inner {
    states: Vec<ThreadState>,
    active: usize,
    /// Prefix of absolute thread IDs to replay this execution.
    preset: Vec<usize>,
    pos: usize,
    trace: Vec<Decision>,
    preemptions: u32,
    /// Mutex shadow table: `true` = currently held.
    mutexes: Vec<bool>,
    /// First panic payload message observed (with its schedule position).
    failure: Option<String>,
    /// Execution is being torn down (after failure/deadlock); every
    /// waiting thread must wake and unwind.
    teardown: bool,
}

struct Scheduler {
    inner: StdMutex<Inner>,
    cv: Condvar,
}

thread_local! {
    /// (scheduler, my thread id) for the current model thread, if any.
    static CTX: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<(StdArc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Scheduler {
    fn new(preset: Vec<usize>) -> Scheduler {
        Scheduler {
            inner: StdMutex::new(Inner {
                states: vec![ThreadState::Runnable], // thread 0 = model body
                active: 0,
                preset,
                pos: 0,
                trace: Vec::new(),
                preemptions: 0,
                mutexes: Vec::new(),
                failure: None,
                teardown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Pick and activate the next thread. Callers hold the lock. `me` is
    /// the deciding thread; it may or may not be runnable.
    fn pick_next(inner: &mut Inner, me: usize) {
        let runnable: Vec<usize> = inner
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let finished = inner
                .states
                .iter()
                .filter(|s| **s == ThreadState::Finished)
                .count();
            if finished == inner.states.len() {
                return; // everything done; nothing to schedule
            }
            // Someone is blocked and nobody can unblock them.
            let report = format!(
                "deadlock: all live threads blocked (states: {:?})\nschedule so far: {:?}",
                inner.states,
                schedule_of(&inner.trace),
            );
            inner.failure.get_or_insert(report);
            inner.teardown = true;
            return;
        }
        let prev = inner.active;
        let prev_runnable = runnable.contains(&prev);
        // Canonical child order: the no-preemption continuation first,
        // then the rest by ascending ID. Backtracking enumerates siblings
        // strictly after the chosen index, so the default spine choice
        // must sit at index 0 or lower-ID threads would never be tried.
        let mut order = runnable;
        if prev_runnable {
            order.retain(|&t| t != prev);
            order.insert(0, prev);
        }
        let chosen = if inner.pos < inner.preset.len() {
            let c = inner.preset[inner.pos];
            debug_assert!(
                order.contains(&c),
                "non-deterministic model: replayed choice {c} not runnable in {order:?}"
            );
            c
        } else {
            // Default: index 0 = keep running the current thread
            // (depth-first down the no-preemption spine).
            order[0]
        };
        // Free choices never preempt by construction (we continue `prev`
        // whenever runnable), so preemptions only enter via the replayed
        // preset — whose budget next_preset() already enforced.
        let preemptive = prev_runnable && chosen != prev;
        if preemptive {
            inner.preemptions += 1;
        }
        inner.trace.push(Decision {
            chosen_idx: order.iter().position(|&r| r == chosen).unwrap(),
            runnable: order,
            preemptive,
        });
        inner.pos += 1;
        inner.active = chosen;
        let _ = me;
    }

    /// A synchronization point for runnable thread `me`: give the
    /// scheduler a chance to run somebody else.
    fn switch(self: &StdArc<Self>, me: usize) {
        let mut inner = self.inner.lock().unwrap();
        if inner.teardown {
            drop(inner);
            panic!("loom teardown");
        }
        Self::pick_next(&mut inner, me);
        self.cv.notify_all();
        self.wait_for_turn(inner, me);
    }

    /// Block `me` with `state` until somebody flips it back to Runnable.
    fn block(self: &StdArc<Self>, me: usize, state: ThreadState) {
        let mut inner = self.inner.lock().unwrap();
        inner.states[me] = state;
        Self::pick_next(&mut inner, me);
        self.cv.notify_all();
        self.wait_for_turn(inner, me);
    }

    fn wait_for_turn(self: &StdArc<Self>, mut inner: std::sync::MutexGuard<'_, Inner>, me: usize) {
        loop {
            if inner.teardown {
                drop(inner);
                panic!("loom teardown");
            }
            if inner.active == me && inner.states[me] == ThreadState::Runnable {
                return;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Thread `me` finished (normally or by panic); wake joiners, pick a
    /// successor.
    fn finish(self: &StdArc<Self>, me: usize, panic_msg: Option<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.states[me] = ThreadState::Finished;
        for s in inner.states.iter_mut() {
            if *s == ThreadState::BlockedJoin(me) {
                *s = ThreadState::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            let report = format!("{msg}\nschedule: {:?}", schedule_of(&inner.trace));
            inner.failure.get_or_insert(report);
            inner.teardown = true;
        } else {
            Self::pick_next(&mut inner, me);
        }
        self.cv.notify_all();
    }
}

fn schedule_of(trace: &[Decision]) -> Vec<usize> {
    trace.iter().map(|d| d.runnable[d.chosen_idx]).collect()
}

/// A switch point usable from sync primitives: no-op outside a model.
fn switch_point() {
    if let Some((sched, me)) = current_ctx() {
        sched.switch(me);
    }
}

// ---------------------------------------------------------------------------
// model()
// ---------------------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run `f` under every explored interleaving. Panics (with the offending
/// schedule) if any execution panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2) as u32;
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 20_000);
    let f = StdArc::new(f);
    let mut preset: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let sched = StdArc::new(Scheduler::new(preset.clone()));
        let trace = run_one(&sched, StdArc::clone(&f));
        let trace = match trace {
            Ok(t) => t,
            Err(report) => panic!("loom model failed after {executions} execution(s):\n{report}"),
        };
        if executions >= max_iterations {
            // Bounded search exhausted its budget; the explored prefix is
            // still a meaningful certificate, mirroring loom's own
            // LOOM_MAX_BRANCHES cutoff.
            return;
        }
        // Backtrack: deepest decision with an unexplored sibling whose
        // prefix stays within the preemption budget.
        match next_preset(&trace, max_preemptions) {
            Some(p) => preset = p,
            None => return,
        }
    }
}

/// Compute the next DFS preset from a finished execution's trace.
fn next_preset(trace: &[Decision], max_preemptions: u32) -> Option<Vec<usize>> {
    for d in (0..trace.len()).rev() {
        let dec = &trace[d];
        for alt in dec.chosen_idx + 1..dec.runnable.len() {
            // Preemptions of the prefix trace[..d] plus this new choice.
            let mut count: u32 = trace[..d].iter().map(|x| u32::from(x.preemptive)).sum();
            // The alternative differs from the default spine, so if the
            // previously-running thread was runnable and is not the pick,
            // it costs a preemption. The previously-running thread is
            // whatever the decision actually chose by default... we can
            // reconstruct: the alternative is preemptive iff the original
            // choice was the "continue" choice and we now deviate while
            // the original choice is still available, or the original was
            // already preemptive.
            let alt_thread = dec.runnable[alt];
            let prev_thread = if d == 0 {
                0
            } else {
                trace[d - 1].runnable[trace[d - 1].chosen_idx]
            };
            if dec.runnable.contains(&prev_thread) && alt_thread != prev_thread {
                count += 1;
            }
            if count > max_preemptions {
                continue;
            }
            let mut preset = schedule_of(&trace[..d]);
            preset.push(alt_thread);
            return Some(preset);
        }
    }
    None
}

struct ExecState {
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    static EXEC: RefCell<Option<StdArc<StdMutex<ExecState>>>> = const { RefCell::new(None) };
}

/// Run one execution; returns the trace, or a failure report.
fn run_one<F>(sched: &StdArc<Scheduler>, f: StdArc<F>) -> Result<Vec<Decision>, String>
where
    F: Fn() + Sync + Send + 'static,
{
    let exec = StdArc::new(StdMutex::new(ExecState {
        os_handles: Vec::new(),
    }));
    CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(sched), 0)));
    EXEC.with(|e| *e.borrow_mut() = Some(StdArc::clone(&exec)));
    let body = catch_unwind(AssertUnwindSafe(|| (*f)()));

    // Body done (or panicked): drive remaining threads to completion.
    {
        let mut inner = sched.inner.lock().unwrap();
        inner.states[0] = ThreadState::Finished;
        if let Err(p) = &body {
            let report = format!(
                "{}\nschedule: {:?}",
                panic_msg(p),
                schedule_of(&inner.trace)
            );
            inner.failure.get_or_insert(report);
            inner.teardown = true;
        } else {
            Scheduler::pick_next(&mut inner, 0);
        }
        sched.cv.notify_all();
        // Wait for every spawned thread to finish (or teardown to empty).
        while !inner.teardown && inner.states.iter().any(|s| *s != ThreadState::Finished) {
            inner = sched.cv.wait(inner).unwrap();
        }
    }

    // Join the OS threads; under teardown they unwind via the teardown
    // panic, which their wrappers swallow.
    let handles = std::mem::take(&mut exec.lock().unwrap().os_handles);
    for h in handles {
        let _ = h.join();
    }
    CTX.with(|c| *c.borrow_mut() = None);
    EXEC.with(|e| *e.borrow_mut() = None);

    let inner = sched.inner.lock().unwrap();
    match &inner.failure {
        Some(report) => Err(report.clone()),
        None => Ok(inner.trace.clone()),
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked".to_string()
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-aware replacement for `std::thread`.
pub mod thread {
    use super::*;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        id: usize,
        sched: StdArc<Scheduler>,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
    }

    /// Spawn a model thread. Must be called inside [`crate::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = current_ctx().expect("loom::thread::spawn outside loom::model");
        let exec = EXEC.with(|e| e.borrow().clone()).expect("no execution");
        let id = {
            let mut inner = sched.inner.lock().unwrap();
            inner.states.push(ThreadState::Runnable);
            inner.states.len() - 1
        };
        let result = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let child_sched = StdArc::clone(&sched);
        let os = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&child_sched), id)));
                // Wait to be scheduled for the first time.
                {
                    let inner = child_sched.inner.lock().unwrap();
                    child_sched.wait_for_turn(inner, id);
                }
                let out = catch_unwind(AssertUnwindSafe(f));
                let panic_msg = match &out {
                    Ok(_) => None,
                    Err(p) => Some(super::panic_msg(p.as_ref())),
                };
                let is_teardown = panic_msg.as_deref() == Some("loom teardown");
                *slot.lock().unwrap() = Some(out.map_err(|e| e as _));
                child_sched.finish(id, if is_teardown { None } else { panic_msg });
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn loom thread");
        exec.lock().unwrap().os_handles.push(os);
        // Spawn is itself a switch point (the child may run immediately).
        sched.switch(me);
        JoinHandle { id, sched, result }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result.
        pub fn join(self) -> std::thread::Result<T> {
            let (sched, me) = current_ctx().expect("join outside loom::model");
            let finished = {
                let inner = sched.inner.lock().unwrap();
                inner.states[self.id] == ThreadState::Finished
            };
            if !finished {
                self.sched.block(me, ThreadState::BlockedJoin(self.id));
            }
            self.result
                .lock()
                .unwrap()
                .take()
                .expect("joined thread left no result")
        }
    }

    /// Voluntary switch point.
    pub fn yield_now() {
        super::switch_point();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Model-aware replacements for `std::sync` types.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    /// Model-aware mutex: lock/unlock are scheduling points; contention
    /// blocks in the model scheduler (with deadlock detection), never in
    /// the OS.
    pub struct Mutex<T> {
        id: usize,
        data: StdMutex<T>,
    }

    static MUTEX_IDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    impl<T> Mutex<T> {
        /// Create a mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: MUTEX_IDS.fetch_add(1, StdOrdering::SeqCst),
                data: StdMutex::new(value),
            }
        }

        /// Acquire the lock (a scheduling point; blocks in the model
        /// scheduler if contended, with deadlock detection).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            if let Some((sched, me)) = current_ctx() {
                sched.switch(me);
                loop {
                    let acquired = {
                        let mut inner = sched.inner.lock().unwrap();
                        while inner.mutexes.len() <= self.id {
                            inner.mutexes.push(false);
                        }
                        if inner.mutexes[self.id] {
                            false
                        } else {
                            inner.mutexes[self.id] = true;
                            true
                        }
                    };
                    if acquired {
                        break;
                    }
                    sched.block(me, ThreadState::BlockedMutex(self.id));
                }
            }
            match self.data.lock() {
                Ok(g) => Ok(MutexGuard {
                    mutex: self,
                    guard: Some(g),
                }),
                Err(poison) => Err(std::sync::PoisonError::new(MutexGuard {
                    mutex: self,
                    guard: Some(poison.into_inner()),
                })),
            }
        }

        /// Release the model shadow and wake blocked threads (guard Drop).
        fn unlock_shadow(&self) {
            if let Some((sched, _me)) = current_ctx() {
                let mut inner = sched.inner.lock().unwrap();
                if self.id < inner.mutexes.len() {
                    inner.mutexes[self.id] = false;
                }
                for s in inner.states.iter_mut() {
                    if *s == ThreadState::BlockedMutex(self.id) {
                        *s = ThreadState::Runnable;
                    }
                }
                sched.cv.notify_all();
            }
        }
    }

    /// Guard returned by [`Mutex::lock`]; releases the model shadow (and
    /// wakes blocked model threads) on drop.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        guard: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().unwrap()
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().unwrap()
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.guard.take();
            self.mutex.unlock_shadow();
        }
    }

    /// Model-aware atomics: every access is a scheduling point. Memory
    /// orderings are accepted for API compatibility and executed as
    /// SeqCst (see the crate docs for what that does and does not check).
    pub mod atomic {
        use super::super::switch_point;

        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_type {
            ($name:ident, $std:ident, $prim:ty, rmw: $($fetch:ident),*) => {
                /// Model-aware atomic: every access is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Create with `value`.
                    pub fn new(value: $prim) -> Self {
                        Self(std::sync::atomic::$std::new(value))
                    }

                    /// Load (scheduling point; ordering executed as SeqCst).
                    pub fn load(&self, _order: Ordering) -> $prim {
                        switch_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Store (scheduling point; ordering executed as SeqCst).
                    pub fn store(&self, value: $prim, _order: Ordering) {
                        switch_point();
                        self.0.store(value, Ordering::SeqCst)
                    }

                    /// Swap (scheduling point).
                    pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                        switch_point();
                        self.0.swap(value, Ordering::SeqCst)
                    }

                    /// Compare-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        switch_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    $(
                        /// Read-modify-write (scheduling point).
                        pub fn $fetch(&self, value: $prim, _order: Ordering) -> $prim {
                            switch_point();
                            self.0.$fetch(value, Ordering::SeqCst)
                        }
                    )*
                }
            };
        }

        atomic_type!(AtomicBool, AtomicBool, bool, rmw: fetch_or, fetch_and);
        atomic_type!(AtomicU16, AtomicU16, u16, rmw: fetch_add, fetch_sub, fetch_max, fetch_or);
        atomic_type!(AtomicU64, AtomicU64, u64, rmw: fetch_add, fetch_sub, fetch_max, fetch_or);
        atomic_type!(AtomicUsize, AtomicUsize, usize, rmw: fetch_add, fetch_sub, fetch_max, fetch_or);
    }

    /// A minimal model-aware SPSC/MPSC queue built on [`Mutex`]: enough
    /// channel surface for handoff models (`send` never blocks;
    /// `try_recv` returns `None` when empty — poll under the model).
    pub struct ModelQueue<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for ModelQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> ModelQueue<T> {
        /// Empty queue.
        pub fn new() -> ModelQueue<T> {
            ModelQueue {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Push (scheduling points via the inner mutex).
        pub fn send(&self, value: T) {
            self.q.lock().unwrap().push_back(value);
        }

        /// Pop if non-empty.
        pub fn try_recv(&self) -> Option<T> {
            self.q.lock().unwrap().pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_single_thread() {
        super::model(|| {
            let a = AtomicU64::new(0);
            a.store(7, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 7);
        });
    }

    #[test]
    fn model_explores_interleavings() {
        // Counts how many distinct (x, y) observation pairs the reader
        // sees across interleavings of a two-step writer: must include
        // intermediate states, proving the scheduler really interleaves.
        use std::collections::BTreeSet;
        use std::sync::Mutex as StdMutex;
        let seen: &'static StdMutex<BTreeSet<(u64, u64)>> =
            Box::leak(Box::new(StdMutex::new(BTreeSet::new())));
        super::model(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (xw, yw) = (Arc::clone(&x), Arc::clone(&y));
            let t = super::thread::spawn(move || {
                xw.store(1, Ordering::SeqCst);
                yw.store(1, Ordering::SeqCst);
            });
            // Message-passing litmus: read y (the "flag") BEFORE x (the
            // "data"); under SC, y=1 then implies x=1.
            let oy = y.load(Ordering::SeqCst);
            let ox = x.load(Ordering::SeqCst);
            seen.lock().unwrap().insert((ox, oy));
            t.join().unwrap();
        });
        let seen = seen.lock().unwrap();
        // (0,0) before, (1,1) after, (1,0) in between. (0,1) impossible
        // under SC — and must NOT be observed.
        assert!(seen.contains(&(0, 0)), "{seen:?}");
        assert!(seen.contains(&(1, 0)), "{seen:?}");
        assert!(seen.contains(&(1, 1)), "{seen:?}");
        assert!(!seen.contains(&(0, 1)), "{seen:?}");
    }

    #[test]
    fn model_catches_lost_update() {
        // Non-atomic read-modify-write must be caught by some schedule.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = super::thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(
            result.is_err(),
            "the lost update interleaving must be found"
        );
    }

    #[test]
    fn model_detects_deadlock() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "AB-BA deadlock must be detected");
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("deadlock"), "{msg}");
    }

    #[test]
    fn mutex_guards_exclusive_access() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = super::thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock().unwrap();
                let v = *g;
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2, "mutexed RMW must never lose updates");
        });
    }
}
