//! Offline, API-compatible subset of the `criterion` crate.
//!
//! A minimal wall-clock micro-benchmark harness covering the surface the
//! `bench` crate uses: `Criterion`, benchmark groups, `iter`,
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It reports median/mean per-iteration times to
//! stdout instead of criterion's full statistics and HTML reports.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup allocations (sizing is advisory in
/// this subset; batching always re-runs setup per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-runs before every single iteration.
    PerIteration,
    /// A fixed number of iterations per batch.
    NumBatches(u64),
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations, nanoseconds.
    results: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up briefly, then sample.
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            // Batch enough iterations to dodge timer granularity.
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_micros(10) || iters >= 1 << 20 {
                    self.results.push(elapsed.as_nanos() as f64 / iters as f64);
                    break;
                }
                iters *= 4;
            }
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn render(name: &str, results: &mut [f64]) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = results[results.len() / 2];
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    println!("{name:<40} median {median:>12.1} ns/iter   mean {mean:>12.1} ns/iter");
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configure measurement time (accepted for compatibility; unused).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group: {name} ==");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        render(name, &mut b.results);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configure measurement time (accepted for compatibility; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        render(&format!("{}/{}", self.group, name), &mut b.results);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
