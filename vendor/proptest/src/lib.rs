//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, numeric range
//! strategies, tuple strategies, `collection::vec`, a small `[a-z]{m,n}`
//! char-class string strategy, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** On failure the full generated input is printed along
//!   with the case seed; cases are small enough here that shrinking is a
//!   nicety, not a necessity.
//! - **Deterministic by default.** Case seeds derive from the test name, so
//!   CI runs are reproducible. Set `PROPTEST_SEED` to explore a different
//!   stream, and `PROPTEST_CASES` to change the case count (default 96).
//! - **Regression files** (`proptest-regressions/<file>.txt`, lines of
//!   `cc <hex seed>`) are loaded first and replayed before the random
//!   cases, and failures are appended automatically, like upstream.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, RngCore};

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; rejected values are regenerated (upstream
    /// rejects the whole case — with no shrinker the retry is equivalent
    /// and wastes fewer cases).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.whence);
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide dynamic range.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp: i32 = rng.gen_range(-64..64);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * (2.0f64).powi(exp)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
}

/// A `&str` used as a strategy is a regex-like pattern. This subset
/// supports concatenations of literals and `[a-z]`-style character classes,
/// each optionally followed by `{n}`, `{m,n}`, `?`, `*`, or `+`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    enum Piece {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().unwrap_or_else(|| unsupported(pattern));
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or_else(|| unsupported(pattern));
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Piece::Class(ranges)
                }
                '\\' => Piece::Literal(chars.next().unwrap_or_else(|| unsupported(pattern))),
                '{' | '}' | '?' | '*' | '+' | '(' | ')' | '|' | '.' => unsupported(pattern),
                c => Piece::Literal(c),
            };
            // Optional repetition suffix.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                            n.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                        ),
                        None => {
                            let n: usize =
                                spec.trim().parse().unwrap_or_else(|_| unsupported(pattern));
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                match &piece {
                    Piece::Literal(c) => out.push(*c),
                    Piece::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo),
                        );
                    }
                }
            }
        }
        out
    }

    fn unsupported(pattern: &str) -> ! {
        panic!(
            "string pattern {pattern:?} uses regex features beyond the vendored \
             proptest subset (literals, [a-z] classes, {{m,n}}/?/*/+ repetition)"
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size specifications for [`vec`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case outcomes and the runner loop used by `proptest!`.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use rand::SeedableRng;
    use std::io::Write;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn default_cases() -> u64 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(96),
            Err(_) => 96,
        }
    }

    fn base_seed(test_name: &str) -> u64 {
        if let Ok(v) = std::env::var("PROPTEST_SEED") {
            let v = v.trim().trim_start_matches("0x");
            if let Ok(s) = u64::from_str_radix(v, 16) {
                return s;
            }
        }
        // FNV-1a over the test name: deterministic per test, stable per run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"))
    }

    fn load_regression_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let token = rest.split_whitespace().next()?;
                u64::from_str_radix(token.trim_start_matches("0x"), 16).ok()
            })
            .collect()
    }

    fn persist_failure(path: &Path, seed: u64) {
        if load_regression_seeds(path).contains(&seed) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let header_needed = !path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            if header_needed {
                let _ = writeln!(
                    f,
                    "# Seeds for failure cases found by proptest. It is recommended to\n\
                     # check this file into source control so that everyone who runs the\n\
                     # tests benefits from these saved cases."
                );
            }
            let _ = writeln!(f, "cc 0x{seed:016x}");
        }
    }

    /// Execute one property: regression seeds first, then `PROPTEST_CASES`
    /// fresh cases. Panics (with seed echo + persistence) on failure.
    pub fn run<S, F>(manifest_dir: &str, source_file: &str, test_name: &str, strategy: &S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let reg_path = regression_path(manifest_dir, source_file);
        let regression = load_regression_seeds(&reg_path);
        let cases = default_cases();
        let base = base_seed(test_name);

        let mut rejected: u64 = 0;
        let mut executed: u64 = 0;
        let mut case_index: u64 = 0;
        let budget = cases * 20;

        let seeds = regression
            .iter()
            .copied()
            .map(|s| (s, true))
            .chain((0..).map(|i| (splitmix(base.wrapping_add(i)), false)));
        #[allow(clippy::explicit_counter_loop)] // counter spans assume-rejections, not items
        for (seed, from_regression) in seeds {
            if executed >= cases + regression.len() as u64 {
                break;
            }
            if case_index >= budget + regression.len() as u64 {
                panic!(
                    "proptest '{test_name}': too many prop_assume rejections \
                     ({rejected} of {case_index} cases)"
                );
            }
            case_index += 1;

            let mut rng = TestRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| f(value)));
            match outcome {
                Ok(Ok(())) => executed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    if from_regression {
                        executed += 1; // don't loop forever on a rejecting regression seed
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    persist_failure(&reg_path, seed);
                    panic!(
                        "proptest '{test_name}' failed (case seed 0x{seed:016x}, \
                         persisted to {reg_path:?})\n  input: {shown}\n  error: {msg}\n  \
                         replay: PROPTEST_SEED=0x{seed:016x} PROPTEST_CASES=1 cargo test {test_name}"
                    );
                }
                Err(panic) => {
                    persist_failure(&reg_path, seed);
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!(
                        "proptest '{test_name}' panicked (case seed 0x{seed:016x}, \
                         persisted to {reg_path:?})\n  input: {shown}\n  panic: {msg}\n  \
                         replay: PROPTEST_SEED=0x{seed:016x} PROPTEST_CASES=1 cargo test {test_name}"
                    );
                }
            }
        }
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, Strategy};
}

/// Define property tests. Each function body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            *l, *r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            *l
        );
        let _ = r;
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            *l, format!($($fmt)*)
        );
        let _ = r;
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2i32..=2, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vec_compose(
            pair in (any::<bool>(), 0u8..4),
            items in collection::vec((0usize..4, 1u64..5), 1..20),
        ) {
            let (_flag, small) = pair;
            prop_assert!(small < 4);
            prop_assert!(!items.is_empty() && items.len() < 20);
            for (a, b) in items {
                prop_assert!(a < 4 && (1..5).contains(&b));
            }
        }

        #[test]
        fn string_classes_match_shape(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn prop_map_transforms(v in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 200);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u64..1000, "[a-z]{1,12}");
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn failures_report_seed_and_input() {
        let tmp = std::env::temp_dir().join("proptest-shim-selfcheck");
        let tmp_str = tmp.to_str().unwrap().to_string();
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &tmp_str,
                "self_check.rs",
                "always_fails",
                &(0u64..10),
                |_v| Err(TestCaseError::fail("forced")),
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case seed 0x"), "{msg}");
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
        assert!(msg.contains("forced"), "{msg}");
        // And the seed was persisted in regression-file format.
        let reg = tmp.join("proptest-regressions").join("self_check.txt");
        let text = std::fs::read_to_string(&reg).unwrap();
        assert!(text.lines().any(|l| l.starts_with("cc 0x")), "{text}");
        let _ = std::fs::remove_dir_all(tmp);
    }
}
