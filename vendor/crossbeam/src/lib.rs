//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: MPMC channels with cloneable
//! senders *and* receivers, blocking/timeout receives, and disconnect
//! semantics matching upstream (sends fail once all receivers are gone;
//! receives fail once the queue is empty and all senders are gone). Built
//! on `std::sync::{Mutex, Condvar}` — slower than upstream's lock-free
//! queues but semantically equivalent for the emulation layer's needs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or the last sender leaves.
        readable: Condvar,
        /// Signalled when the queue loses an item or the last receiver leaves.
        writable: Condvar,
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel; sends block while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "zero-capacity rendezvous channels are not supported by this vendored subset"
        );
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(msg);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                st = self.shared.writable.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders leave.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.readable.wait(st).unwrap();
            }
        }

        /// Receive with a deadline relative to now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .readable
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn basic_send_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn queued_messages_survive_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn iter_ends_on_disconnect() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let h = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees
                "done"
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(h.join().unwrap(), "done");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn mpmc_receivers_share_work() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = thread::spawn(move || rx2.iter().count());
            let a = rx.iter().count();
            let b = h.join().unwrap();
            assert_eq!(a + b, 100);
        }
    }
}
