//! Differential property tests: the staged pipeline observer must be
//! behaviorally identical to the monolithic reference observer on every
//! legal *and* hostile report sequence — shuffled delivery orders,
//! duplicated reports, and misattributed reports (a device delivering a
//! report for a unit it does not own).
//!
//! Also here: the pipeline's bounded-memory claim at scale. Peak pending
//! values (the assemble stage's working set) must stay at one epoch's
//! worth of units when epochs drain in order, even at 10⁵ channels.

use proptest::prelude::*;
use speedlight_core::control::{Report, ReportValue};
use speedlight_core::observer::{GlobalSnapshot, Observer, ObserverConfig};
use speedlight_core::pipeline::{PipelineConfig, PipelineObserver};
use speedlight_core::{Epoch, UnitId};

const MODULUS: u16 = 8;

/// One delivery in a generated sequence: which expected report to send,
/// and whether to corrupt the delivering device (misattribution).
#[derive(Debug, Clone, Copy)]
struct DeliveryOp {
    /// Index into the legit report list (modulo its length).
    report: usize,
    /// Deliver from `unit.device + 1` instead of the owner.
    misattribute: bool,
}

#[derive(Debug, Clone)]
struct Fleet {
    /// `units_per_device[d]` = number of ports on device `d` (1 unit each).
    units_per_device: Vec<u16>,
    /// Epochs to initiate before delivering (bounded by no-lapping).
    initiations: usize,
    /// The (possibly shuffled, duplicated, corrupted) delivery sequence.
    ops: Vec<DeliveryOp>,
}

fn fleet_strategy() -> impl Strategy<Value = Fleet> {
    (
        proptest::collection::vec(1u16..=3, 1..=4),
        1usize..usize::from(MODULUS - 1),
        proptest::collection::vec((0usize..64, 0u8..20), 0..80),
    )
        .prop_map(|(units_per_device, initiations, raw)| Fleet {
            units_per_device,
            initiations,
            ops: raw
                .into_iter()
                .map(|(report, hostility)| DeliveryOp {
                    report,
                    // ~15% of deliveries arrive from the wrong device.
                    misattribute: hostility < 3,
                })
                .collect(),
        })
}

fn units_of(fleet: &Fleet, device: u16) -> Vec<UnitId> {
    (0..fleet.units_per_device[usize::from(device)])
        .map(|port| UnitId::ingress(device, port))
        .collect()
}

fn report_for(unit: UnitId, epoch: Epoch) -> Report {
    Report {
        unit,
        epoch,
        value: ReportValue::Value {
            // Deterministic, distinct per (unit, epoch): a corrupted
            // credit would change some completed snapshot.
            local: u64::from(unit.device) * 1000 + u64::from(unit.port) * 10 + epoch,
            channel: epoch,
        },
    }
}

/// Everything externally observable from one observer run.
#[derive(Debug, PartialEq)]
struct RunResult {
    epochs: Vec<Option<Epoch>>,
    completed: Vec<Option<GlobalSnapshot>>,
    forced: Vec<GlobalSnapshot>,
    misattributed: u64,
    finalized: u64,
}

/// The externally-observable observer surface, so one driver can run both
/// implementations.
trait ObsApi {
    fn begin(&mut self) -> Option<Epoch>;
    fn report(&mut self, device: u16, r: Report) -> Option<GlobalSnapshot>;
    fn pending(&self) -> Vec<Epoch>;
    fn force(&mut self, epoch: Epoch) -> Option<GlobalSnapshot>;
    /// `(misattributed, finalized)`.
    fn counts(&self) -> (u64, u64);
}

impl ObsApi for Observer {
    fn begin(&mut self) -> Option<Epoch> {
        self.begin_snapshot()
    }
    fn report(&mut self, device: u16, r: Report) -> Option<GlobalSnapshot> {
        self.on_report(device, r)
    }
    fn pending(&self) -> Vec<Epoch> {
        self.pending_epochs().collect()
    }
    fn force(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        self.force_finalize(epoch)
    }
    fn counts(&self) -> (u64, u64) {
        (self.misattributed_count(), self.finalized_count())
    }
}

impl ObsApi for PipelineObserver {
    fn begin(&mut self) -> Option<Epoch> {
        self.begin_snapshot()
    }
    fn report(&mut self, device: u16, r: Report) -> Option<GlobalSnapshot> {
        self.on_report(device, r)
    }
    fn pending(&self) -> Vec<Epoch> {
        self.pending_epochs().collect()
    }
    fn force(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        self.force_finalize(epoch)
    }
    fn counts(&self) -> (u64, u64) {
        (self.misattributed_count(), self.finalized_count())
    }
}

/// Drive one observer through the whole scenario.
fn drive(fleet: &Fleet, obs: &mut dyn ObsApi) -> RunResult {
    let ndev = fleet.units_per_device.len() as u16;
    let mut epochs = Vec::new();
    for _ in 0..fleet.initiations {
        epochs.push(obs.begin());
    }
    // The legit report list: every (unit, initiated epoch) pair in a
    // fixed order; ops index into it.
    let mut legit = Vec::new();
    for &epoch in epochs.iter().flatten() {
        for d in 0..ndev {
            for unit in units_of(fleet, d) {
                legit.push(report_for(unit, epoch));
            }
        }
    }
    let mut completed = Vec::new();
    for op in &fleet.ops {
        if legit.is_empty() {
            break;
        }
        let r = legit[op.report % legit.len()];
        let from = if op.misattribute {
            (r.unit.device + 1) % ndev.max(1)
        } else {
            r.unit.device
        };
        completed.push(obs.report(from, r));
    }
    // Timeout path: force-finalize whatever is still pending, in order.
    let mut forced = Vec::new();
    for epoch in obs.pending() {
        forced.extend(obs.force(epoch));
    }
    let (misattributed, finalized) = obs.counts();
    RunResult {
        epochs,
        completed,
        forced,
        misattributed,
        finalized,
    }
}

proptest! {
    #[test]
    fn pipeline_matches_reference_on_hostile_sequences(fleet in fleet_strategy()) {
        let ndev = fleet.units_per_device.len() as u16;

        let mut reference = Observer::new(ObserverConfig::for_modulus(MODULUS));
        let mut pipeline = PipelineObserver::new(PipelineConfig::for_modulus(MODULUS));
        for d in 0..ndev {
            reference.register_device(d, units_of(&fleet, d));
            pipeline.register_device(d, units_of(&fleet, d));
        }

        let got_ref = drive(&fleet, &mut reference);
        let got_pipe = drive(&fleet, &mut pipeline);

        prop_assert_eq!(got_ref, got_pipe);
    }
}

/// Bounded memory at scale: 10⁵ channels through three epochs drained in
/// order. The assemble working set (peak pending values) must stay at one
/// epoch's worth of units — queuing never accumulates values across
/// epochs when the sink keeps up.
#[test]
fn peak_pending_values_bounded_at_1e5_channels() {
    const DEVICES: u16 = 100;
    const PORTS: u16 = 1000;
    let units: usize = usize::from(DEVICES) * usize::from(PORTS);

    let mut pipe = PipelineObserver::new(PipelineConfig::for_modulus(16));
    for d in 0..DEVICES {
        pipe.register_device(d, (0..PORTS).map(|p| UnitId::ingress(d, p)).collect());
    }
    for _ in 0..3 {
        let epoch = pipe.begin_snapshot().expect("below no-lapping cap");
        let mut sealed = None;
        for d in 0..DEVICES {
            for p in 0..PORTS {
                sealed = pipe.on_report(d, report_for(UnitId::ingress(d, p), epoch));
            }
        }
        let sealed = sealed.expect("last report completes the epoch");
        assert_eq!(sealed.epoch, epoch);
        assert_eq!(sealed.units.len(), units);
    }
    let stats = pipe.stats();
    assert_eq!(stats.accepted, 3 * units as u64);
    assert!(
        stats.peak_pending_values <= units,
        "peak pending values {} exceeds one epoch's working set {}",
        stats.peak_pending_values,
        units
    );
}
