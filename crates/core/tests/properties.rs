//! Property-based tests for the snapshot protocol core.
//!
//! The central claims verified here, over randomized packet schedules:
//!
//! 1. **Wrap/unwrap inverse** — rollover arithmetic is lossless within the
//!    no-lapping window.
//! 2. **Hardware ≡ ideal on consistent epochs** — every epoch the
//!    hardware-constrained unit + control plane report as a consistent
//!    `Value` carries exactly the local and channel state the idealized
//!    Fig. 3 protocol computes for that epoch.
//! 3. **Causal consistency / conservation** — reported values satisfy the
//!    omniscient flow-conservation audit ([`speedlight_core::consistency`]).
//! 4. **No-CS inference** — values inferred across skipped epochs equal the
//!    ideal protocol's values for those epochs.
//! 5. **§5.2 wraparound** — schedules that march the snapshot-ID frontier
//!    across several modulus boundaries still agree with the unbounded-ID
//!    ideal protocol on every reported epoch.
//! 6. **Observer no-lapping** — the observer never has two in-flight
//!    epochs sharing a wrapped ID and refuses initiations only at the cap.

use proptest::prelude::*;
use speedlight_core::consistency::{ConservationChecker, Delivery};
use speedlight_core::control::{ControlPlane, Registers, ReportValue};
use speedlight_core::ideal::IdealUnit;
use speedlight_core::observer::{Observer, ObserverConfig};
use speedlight_core::unit::{DataPlaneUnit, SnapSlot, UnitConfig};
use speedlight_core::{ChannelId, Epoch, Report, UnitId, WrappedId};
use std::collections::{BTreeMap, BTreeSet};

const MODULUS: u16 = 8;

/// A randomized, protocol-legal packet schedule for one unit:
/// per-channel monotone tags whose global spread respects no-lapping.
#[derive(Debug, Clone)]
struct Schedule {
    num_channels: usize,
    /// (channel, tag_epoch, contrib) in arrival order.
    packets: Vec<(usize, Epoch, u64)>,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        1usize..=4,
        proptest::collection::vec((0usize..4, 0u8..8, 1u64..5), 1..120),
    )
        .prop_map(|(num_channels, raw)| {
            let window = Epoch::from(MODULUS) - 1;
            let mut chan_tag = vec![0u64; num_channels];
            let mut global_max = 0u64;
            let mut packets = Vec::with_capacity(raw.len());
            for (ch_raw, jump, contrib) in raw {
                let ch = ch_raw % num_channels;
                // Advance the global frontier occasionally (bounded so the
                // slowest channel stays within the no-lapping window).
                let min_tag = *chan_tag.iter().min().unwrap();
                let max_allowed = min_tag + window;
                let target = (global_max + Epoch::from(jump / 4)).min(max_allowed);
                global_max = global_max.max(target);
                // This channel's next tag: somewhere in [current, global_max],
                // biased by the jump nibble.
                let lo = chan_tag[ch];
                let hi = global_max.max(lo);
                let tag = lo + (Epoch::from(jump) % (hi - lo + 1));
                chan_tag[ch] = tag;
                packets.push((ch, tag, contrib));
            }
            Schedule {
                num_channels,
                packets,
            }
        })
}

/// §5.2 wraparound stress: the global frontier marches steadily across
/// several modulus boundaries (final epoch ≥ 2 × modulus by construction)
/// while each channel trails by a random lag inside the no-lapping window.
fn wraparound_schedule_strategy() -> impl Strategy<Value = Schedule> {
    let window = Epoch::from(MODULUS) - 1;
    (
        1usize..=4,
        proptest::collection::vec(
            (1u64..=2, proptest::collection::vec((0u64..7, 1u64..5), 4)),
            16..40,
        ),
    )
        .prop_map(move |(num_channels, segments)| {
            let mut frontier = 0u64;
            let mut chan_tag = vec![0u64; num_channels];
            let mut packets = Vec::new();
            for (s, (step, lags)) in segments.into_iter().enumerate() {
                frontier += step;
                for i in 0..num_channels {
                    let ch = (i + s) % num_channels; // rotate arrival order
                    let (lag, contrib) = lags[ch];
                    // Monotone per channel. The rollover comparison uses a
                    // channel's Last Seen as reference, so the unit's sid
                    // must stay within `window` of it even after the *next*
                    // segment's step: lag ≤ window − max_step − 1.
                    let tag = chan_tag[ch].max(frontier.saturating_sub(lag.min(window - 3)));
                    chan_tag[ch] = tag;
                    packets.push((ch, tag, contrib));
                }
            }
            Schedule {
                num_channels,
                packets,
            }
        })
}

struct OneUnitRegs {
    unit: DataPlaneUnit,
}

impl Registers for OneUnitRegs {
    fn read_sid(&mut self, _: UnitId) -> WrappedId {
        self.unit.sid()
    }
    fn read_last_seen(&mut self, _: UnitId, channel: ChannelId) -> WrappedId {
        self.unit.last_seen(channel)
    }
    fn take_slot(&mut self, _: UnitId, id: WrappedId) -> Option<SnapSlot> {
        self.unit.take_slot(id)
    }
}

/// Drive the same schedule through the HW unit (+CP) and the ideal unit,
/// using a receive-counting metric. Returns
/// (hw reports per epoch, ideal unit, checker).
fn run_schedule(
    sched: &Schedule,
    channel_state: bool,
) -> (BTreeMap<Epoch, ReportValue>, IdealUnit, ConservationChecker) {
    let uid = UnitId::ingress(0, 0);
    let n = sched.num_channels as u16;
    let mut regs = OneUnitRegs {
        unit: DataPlaneUnit::new(UnitConfig {
            unit: uid,
            modulus: MODULUS,
            channel_state,
            num_channels: n,
        }),
    };
    let mut cp = ControlPlane::new(0, MODULUS, channel_state);
    cp.register_unit(uid, n, vec![true; usize::from(n)]);
    let mut ideal = IdealUnit::new(uid, n, channel_state);
    let mut checker = ConservationChecker::new();

    let mut counter: u64 = 0; // the snapshotted metric: Σ contrib received
    let mut reports = BTreeMap::new();
    for &(ch, tag, contrib) in &sched.packets {
        let w = WrappedId::wrap(tag, MODULUS);
        let out = regs
            .unit
            .on_packet(ChannelId(ch as u16), w, counter, contrib, false);
        let ideal_out = ideal.on_packet(ChannelId(ch as u16), tag, counter, contrib, false);
        // The two protocols must agree on the post-processing epoch.
        assert_eq!(
            out.out_sid,
            WrappedId::wrap(ideal_out.out_epoch, MODULUS),
            "hw and ideal epochs diverged"
        );
        checker.record(Delivery {
            unit: uid,
            tag,
            local_after: ideal_out.out_epoch,
            contrib,
        });
        counter += contrib; // metric update happens after snapshot logic
        if let Some(notif) = out.notification {
            for r in cp.on_notification(&notif, &mut regs) {
                reports.insert(r.epoch, r.value);
            }
        }
    }
    (reports, ideal, checker)
}

proptest! {
    #[test]
    fn wrap_unwrap_inverse(reference in 0u64..1_000_000, delta in 0u64..31, modulus in 2u16..=32) {
        prop_assume!(delta < u64::from(modulus));
        let epoch = reference + delta;
        let w = WrappedId::wrap(epoch, modulus);
        prop_assert_eq!(w.unwrap_from(reference), epoch);
    }

    #[test]
    fn forward_distance_matches_true_difference(base in 0u64..100_000, d1 in 0u64..31, d2 in 0u64..31, modulus in 2u16..=32) {
        prop_assume!(d1 < u64::from(modulus) && d2 < u64::from(modulus));
        let a = WrappedId::wrap(base + d1, modulus);
        let r = WrappedId::wrap(base, modulus);
        prop_assert_eq!(u64::from(a.forward_distance(r)), d1);
        // Distances from a common reference order epochs correctly.
        let b = WrappedId::wrap(base + d2, modulus);
        prop_assert_eq!(a.forward_distance(r) > b.forward_distance(r), d1 > d2);
    }

    #[test]
    fn hardware_consistent_epochs_match_ideal_with_channel_state(sched in schedule_strategy()) {
        let (reports, ideal, checker) = run_schedule(&sched, true);
        let mut audited = Vec::new();
        for (&epoch, &value) in &reports {
            match value {
                ReportValue::Value { local, channel } => {
                    let isnap = ideal.snapshot(epoch)
                        .expect("ideal must have every epoch the hw completed");
                    prop_assert_eq!(local, isnap.value, "epoch {} local", epoch);
                    prop_assert_eq!(channel, isnap.channel, "epoch {} channel", epoch);
                    audited.push((UnitId::ingress(0, 0), epoch, local, Some(channel)));
                }
                ReportValue::Inconsistent => {} // allowed: conservative
                ReportValue::Missing => prop_assert!(false, "no drops were injected; epoch {} missing", epoch),
                ReportValue::Inferred { .. } => prop_assert!(false, "inference is a no-CS mechanism"),
            }
        }
        // Causal consistency: every consistent value passes the omniscient
        // conservation audit.
        let violations = checker.audit(audited);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn hardware_epochs_match_ideal_without_channel_state(sched in schedule_strategy()) {
        let (reports, ideal, checker) = run_schedule(&sched, false);
        let mut audited = Vec::new();
        for (&epoch, &value) in &reports {
            match value {
                ReportValue::Value { local, .. } | ReportValue::Inferred { local } => {
                    let isnap = ideal.snapshot(epoch).expect("ideal has all epochs");
                    prop_assert_eq!(local, isnap.value, "epoch {}", epoch);
                    audited.push((UnitId::ingress(0, 0), epoch, local, None));
                }
                other => prop_assert!(false, "unexpected outcome without CS: {other:?}"),
            }
        }
        let violations = checker.audit(audited);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn no_cs_reports_every_advanced_epoch(sched in schedule_strategy()) {
        let (reports, ideal, _) = run_schedule(&sched, false);
        // Without channel state, completion is immediate: every epoch up to
        // the unit's final ID must have been reported.
        for epoch in 1..=ideal.epoch() {
            prop_assert!(reports.contains_key(&epoch), "epoch {} unreported", epoch);
        }
    }

    #[test]
    fn cs_mode_reports_exactly_the_min_last_seen_prefix(sched in schedule_strategy()) {
        let (reports, ideal, _) = run_schedule(&sched, true);
        let complete = ideal.complete_up_to();
        for epoch in 1..=complete {
            prop_assert!(reports.contains_key(&epoch), "epoch {} should be finished", epoch);
        }
        for (&epoch, _) in reports.iter() {
            prop_assert!(epoch <= complete, "epoch {} reported before completion", epoch);
        }
    }

    #[test]
    fn lockstep_schedules_are_never_inconsistent(
        epochs in 1u64..40,
        contribs in proptest::collection::vec(1u64..5, 4)
    ) {
        // All channels advance together, one epoch at a time: the hardware
        // constraint (spread ≤ 1) is always met, so nothing may be marked
        // inconsistent.
        let num_channels = contribs.len();
        let mut packets = Vec::new();
        for e in 1..=epochs {
            for (ch, &c) in contribs.iter().enumerate() {
                packets.push((ch, e, c));
            }
        }
        let sched = Schedule { num_channels, packets };
        let (reports, _, _) = run_schedule(&sched, true);
        prop_assert_eq!(reports.len() as u64, epochs);
        for (&epoch, &v) in &reports {
            prop_assert!(
                matches!(v, ReportValue::Value { .. }),
                "epoch {} was {:?}", epoch, v
            );
        }
    }

    #[test]
    fn wraparound_consistent_values_match_ideal(sched in wraparound_schedule_strategy()) {
        // §5.2: across ≥ 2 modulus boundaries, every epoch the hardware
        // reports consistent must carry the exact ideal value — wrapped-ID
        // arithmetic never silently aliases one epoch onto another.
        let (reports, ideal, checker) = run_schedule(&sched, true);
        prop_assert!(
            ideal.epoch() >= 2 * Epoch::from(MODULUS),
            "schedule must cross ≥ 2 modulus boundaries, reached {}", ideal.epoch()
        );
        prop_assert!(!reports.is_empty(), "lagging channels stay inside the \
                                           window, so early epochs complete");
        let mut audited = Vec::new();
        for (&epoch, &value) in &reports {
            match value {
                ReportValue::Value { local, channel } => {
                    let isnap = ideal.snapshot(epoch)
                        .expect("ideal has every completed epoch");
                    prop_assert_eq!(local, isnap.value, "epoch {} local across wrap", epoch);
                    prop_assert_eq!(channel, isnap.channel, "epoch {} channel across wrap", epoch);
                    audited.push((UnitId::ingress(0, 0), epoch, local, Some(channel)));
                }
                ReportValue::Inconsistent => {} // skipped epochs: allowed
                other => prop_assert!(false, "unexpected CS outcome {:?} at {}", other, epoch),
            }
        }
        let violations = checker.audit(audited);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn wraparound_no_cs_inference_matches_ideal(sched in wraparound_schedule_strategy()) {
        // Without channel state, *every* epoch up to the final ID must be
        // reported (directly or inferred) and equal the ideal value, even
        // after many wraps of the modulus.
        let (reports, ideal, _) = run_schedule(&sched, false);
        prop_assert!(ideal.epoch() >= 2 * Epoch::from(MODULUS));
        for epoch in 1..=ideal.epoch() {
            let Some(&value) = reports.get(&epoch) else {
                return Err(TestCaseError::fail(format!("epoch {epoch} unreported")));
            };
            let isnap = ideal.snapshot(epoch).expect("ideal has all epochs");
            match value {
                ReportValue::Value { local, .. } | ReportValue::Inferred { local } => {
                    prop_assert_eq!(local, isnap.value, "epoch {} across wrap", epoch);
                }
                other => prop_assert!(false, "unexpected no-CS outcome {:?} at {}", other, epoch),
            }
        }
    }

    #[test]
    fn observer_enforces_no_lapping(
        modulus in 2u16..=16,
        ops in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        // The observer may never let two in-flight epochs share a wrapped
        // snapshot ID (§5.2 no-lapping), and may refuse an initiation only
        // when the outstanding cap is the reason.
        let uid = UnitId::ingress(0, 0);
        let mut obs = Observer::new(ObserverConfig::for_modulus(modulus));
        obs.register_device(0, vec![uid]);
        let mut pending: Vec<Epoch> = Vec::new();
        for begin in ops {
            if begin {
                match obs.begin_snapshot() {
                    Some(epoch) => {
                        pending.push(epoch);
                        let wrapped: BTreeSet<u16> = pending
                            .iter()
                            .map(|&e| WrappedId::wrap(e, modulus).raw())
                            .collect();
                        prop_assert_eq!(
                            wrapped.len(), pending.len(),
                            "in-flight epochs {:?} alias under modulus {}", &pending, modulus
                        );
                    }
                    None => prop_assert_eq!(
                        pending.len(), usize::from(modulus - 1),
                        "observer refused below the no-lapping cap"
                    ),
                }
            } else if !pending.is_empty() {
                let epoch = pending.remove(0);
                let snap = obs.on_report(0, Report {
                    unit: uid,
                    epoch,
                    value: ReportValue::Value { local: 0, channel: 0 },
                });
                prop_assert!(snap.is_some(), "single report completes epoch {}", epoch);
            }
        }
    }
}
