//! Shared identifiers and message types of the snapshot protocol.

use crate::id::WrappedId;

/// Which side of a port a processing unit serves (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Packet reception side of a port.
    Ingress,
    /// Packet transmission side of a port.
    Egress,
}

/// Identifies one per-port, per-direction processing unit in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId {
    /// Switch/router identifier.
    pub device: u16,
    /// Port number within the device.
    pub port: u16,
    /// Ingress or egress side.
    pub direction: Direction,
}

impl UnitId {
    /// The ingress unit of `(device, port)`.
    pub fn ingress(device: u16, port: u16) -> UnitId {
        UnitId {
            device,
            port,
            direction: Direction::Ingress,
        }
    }

    /// The egress unit of `(device, port)`.
    pub fn egress(device: u16, port: u16) -> UnitId {
        UnitId {
            device,
            port,
            direction: Direction::Egress,
        }
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = match self.direction {
            Direction::Ingress => "in",
            Direction::Egress => "out",
        };
        write!(f, "d{}p{}/{}", self.device, self.port, d)
    }
}

/// Index of an upstream logical channel at a processing unit (§5.1).
///
/// For an ingress unit, channel 0 is the single external upstream neighbor.
/// For an egress unit, channel `i` is the i-th ingress port of the same
/// device. The control-plane pseudo-channel (used only for rollover
/// reference, never for completion — §6) is a separate sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u16);

/// The control-plane pseudo-neighbor.
pub const CPU_CHANNEL: ChannelId = ChannelId(u16::MAX);

/// What the data-plane unit decided about an incoming packet's snapshot
/// header (returned for instrumentation and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Packet's epoch equals the local epoch; nothing to do.
    Current,
    /// Packet announced a newer epoch; the unit saved state and advanced by
    /// the given number of epochs (1 in the common case).
    Advanced(u16),
    /// Packet was in flight from an older epoch (this many epochs behind);
    /// its contribution was folded into channel state if enabled.
    InFlight(u16),
}

/// A data-plane → control-plane notification (§5.3, "Snapshot
/// Notifications").
///
/// Exported on *any* update of the local snapshot ID or of a Last Seen
/// entry. Carries the former value of `LastSeen[n]` along with the former
/// and new snapshot ID, exactly as the paper specifies (all four are needed
/// by the Fig. 7 handler; former and new values may coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// The reporting processing unit.
    pub unit: UnitId,
    /// Snapshot ID before this packet was processed.
    pub old_sid: WrappedId,
    /// Snapshot ID after this packet was processed.
    pub new_sid: WrappedId,
    /// The upstream channel whose Last Seen entry changed, if any.
    /// `None` for units running without channel state.
    pub channel: Option<ChannelId>,
    /// `LastSeen[channel]` before the update (meaningless if `channel` is
    /// `None`).
    pub old_last_seen: WrappedId,
    /// `LastSeen[channel]` after the update.
    pub new_last_seen: WrappedId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_id_constructors() {
        let i = UnitId::ingress(2, 5);
        assert_eq!(i.device, 2);
        assert_eq!(i.port, 5);
        assert_eq!(i.direction, Direction::Ingress);
        assert_eq!(i.to_string(), "d2p5/in");
        let e = UnitId::egress(2, 5);
        assert_eq!(e.direction, Direction::Egress);
        assert_eq!(e.to_string(), "d2p5/out");
        assert_ne!(i, e);
    }

    #[test]
    fn unit_ids_order_deterministically() {
        let mut v = [
            UnitId::egress(1, 0),
            UnitId::ingress(0, 1),
            UnitId::ingress(0, 0),
        ];
        v.sort();
        assert_eq!(v[0], UnitId::ingress(0, 0));
        assert_eq!(v[1], UnitId::ingress(0, 1));
        assert_eq!(v[2], UnitId::egress(1, 0));
    }

    #[test]
    fn cpu_channel_is_distinct() {
        assert_ne!(CPU_CHANNEL, ChannelId(0));
        assert_ne!(CPU_CHANNEL, ChannelId(65_534));
    }
}
