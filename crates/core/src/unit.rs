//! The data-plane processing unit (Figs. 4–5).
//!
//! One [`DataPlaneUnit`] models the snapshot logic of a per-port,
//! per-direction processing element, restricted to what a line-rate
//! match-action pipeline can do (§5.3):
//!
//! * register arrays of fixed size (`modulus` snapshot slots, one Last Seen
//!   entry per upstream channel),
//! * at most **one** slot written per packet — no looping over intermediate
//!   snapshot IDs when the packet's ID and the local ID differ by more than
//!   one (the control plane marks those epochs inconsistent, Fig. 7),
//! * wrapped snapshot IDs with rollover, compared using the Last Seen entry
//!   of the packet's channel as the rollover reference (§5.3),
//! * a notification exported to the CPU on any update of the local ID or a
//!   Last Seen entry.
//!
//! The unit is metric-agnostic: the caller passes in the current value of
//! the snapshotted register (`local_state`) *before* applying the packet's
//! own update, plus the packet's channel-state contribution (e.g. `1` for a
//! packet counter, the byte count for a byte counter, `0` for metrics where
//! channel state is meaningless). Per Fig. 3, the saved state excludes the
//! packet that triggers the snapshot — its send belongs to the new epoch.

use crate::id::{Epoch, WrappedId};
use crate::types::{ChannelId, Direction, Notification, PacketVerdict, UnitId, CPU_CHANNEL};

/// Static configuration of a processing unit.
#[derive(Debug, Clone)]
pub struct UnitConfig {
    /// This unit's identity (used in notifications).
    pub unit: UnitId,
    /// Snapshot ID modulus ("max snapshot id" + 1 in paper terms).
    pub modulus: u16,
    /// Whether channel state is collected (§5.1 "−" items).
    pub channel_state: bool,
    /// Number of real upstream channels (excluding the CPU pseudo-channel).
    pub num_channels: u16,
}

/// One entry of the snapshot value register array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapSlot {
    /// The saved local state for this epoch.
    pub value: u64,
    /// Accumulated channel state (in-flight contributions).
    pub channel: u64,
    /// Set when the slot is saved; cleared when the control plane reads it.
    /// Stands in for the "check for value initialization" of Fig. 7 l.21.
    pub written: bool,
}

/// Result of processing one packet's snapshot header.
#[derive(Debug, Clone)]
pub struct PacketOutcome {
    /// How the packet related to the local epoch.
    pub verdict: PacketVerdict,
    /// The snapshot ID to write into the forwarded packet's header
    /// (`pkt.sid ← sid`, Fig. 3 l.13).
    pub out_sid: WrappedId,
    /// Notification for the CPU, if any state changed.
    pub notification: Option<Notification>,
}

/// A data-plane processing unit's snapshot state machine.
#[derive(Debug, Clone)]
pub struct DataPlaneUnit {
    cfg: UnitConfig,
    sid: WrappedId,
    slots: Vec<SnapSlot>,
    /// Last Seen per real upstream channel (kept even without channel state
    /// as the rollover reference; without channel state its updates are not
    /// notified and it plays no role in completion).
    last_seen: Vec<WrappedId>,
    /// Last Seen for the CPU pseudo-channel — rollover reference only (§6).
    cpu_last_seen: WrappedId,
}

impl DataPlaneUnit {
    /// Create a unit with all registers zeroed (the boot state of a newly
    /// attached device, §6 "Node attachment").
    pub fn new(cfg: UnitConfig) -> DataPlaneUnit {
        assert!(cfg.modulus >= 2, "modulus must allow progress");
        let zero = WrappedId::wrap(0, cfg.modulus);
        DataPlaneUnit {
            slots: vec![SnapSlot::default(); usize::from(cfg.modulus)],
            last_seen: vec![zero; usize::from(cfg.num_channels)],
            cpu_last_seen: zero,
            sid: zero,
            cfg,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &UnitConfig {
        &self.cfg
    }

    /// Current snapshot ID register.
    pub fn sid(&self) -> WrappedId {
        self.sid
    }

    /// Current Last Seen register for a channel.
    pub fn last_seen(&self, channel: ChannelId) -> WrappedId {
        if channel == CPU_CHANNEL {
            self.cpu_last_seen
        } else {
            let Some(&seen) = self.last_seen.get(usize::from(channel.0)) else {
                panic!("channel {} outside this unit's channel space", channel.0)
            };
            seen
        }
    }

    /// Process one packet's snapshot header.
    ///
    /// * `channel` — the upstream channel the packet arrived on
    ///   ([`CPU_CHANNEL`] for control-plane initiations at an ingress unit).
    /// * `pkt_sid` — the snapshot ID carried by the packet.
    /// * `local_state` — the snapshotted register's value *before* this
    ///   packet's metric update is applied.
    /// * `contrib` — this packet's channel-state contribution if it turns
    ///   out to be in flight.
    /// * `is_initiation` — initiation packets are never counted as in
    ///   flight (§6).
    pub fn on_packet(
        &mut self,
        channel: ChannelId,
        pkt_sid: WrappedId,
        local_state: u64,
        contrib: u64,
        is_initiation: bool,
    ) -> PacketOutcome {
        self.on_packet_traced(
            channel,
            pkt_sid,
            local_state,
            contrib,
            is_initiation,
            &mut obs::NoopSink,
            0,
        )
    }

    /// [`DataPlaneUnit::on_packet`] with trace emission: `unit.save` when
    /// the packet advances the local epoch (the state-save of Fig. 3), and
    /// `marker.seen` when it moves a Last Seen register (first marker of an
    /// epoch on that channel). With [`obs::NoopSink`] the whole
    /// instrumentation folds away — `on_packet` delegates here at zero cost.
    #[allow(clippy::too_many_arguments)]
    pub fn on_packet_traced<S: obs::Sink>(
        &mut self,
        channel: ChannelId,
        pkt_sid: WrappedId,
        local_state: u64,
        contrib: u64,
        is_initiation: bool,
        sink: &mut S,
        t_ns: u64,
    ) -> PacketOutcome {
        debug_assert_eq!(pkt_sid.modulus(), self.cfg.modulus);
        let ls = self.last_seen(channel);
        let old_sid = self.sid;

        // Rollover-safe three-way comparison using the channel's Last Seen
        // entry as the reference (§5.3). FIFO channels make both the
        // packet's ID and the local ID at least `ls`, and no-lapping bounds
        // both within `modulus - 1` of it, so forward distances from `ls`
        // order them correctly.
        let d_pkt = pkt_sid.forward_distance(ls);
        let d_sid = self.sid.forward_distance(ls);

        let verdict = if d_pkt > d_sid {
            // New snapshot: save local state into the new epoch's slot and
            // jump. Intermediate slots are *not* written (single-slot
            // constraint); the control plane will mark them inconsistent.
            let adv = d_pkt - d_sid;
            self.sid = pkt_sid;
            self.slots[usize::from(pkt_sid.raw())] = SnapSlot {
                value: local_state,
                channel: 0,
                written: true,
            };
            obs::event!(
                sink,
                t_ns,
                "unit.save",
                dev = self.cfg.unit.device,
                port = self.cfg.unit.port,
                dir = dir_label(self.cfg.unit.direction),
                sid = pkt_sid.raw(),
                adv = adv,
            );
            PacketVerdict::Advanced(adv)
        } else if d_pkt < d_sid {
            // In-flight packet from an older epoch. The ideal algorithm
            // credits every epoch in (pkt_sid, sid]; the hardware can update
            // only the *current* slot, which is correct for the current
            // epoch iff the gap is exactly 1 — larger gaps are what Fig. 7
            // marks inconsistent.
            if self.cfg.channel_state && !is_initiation {
                let slot = &mut self.slots[usize::from(self.sid.raw())];
                if slot.written {
                    slot.channel += contrib;
                }
            }
            PacketVerdict::InFlight(d_sid - d_pkt)
        } else {
            PacketVerdict::Current
        };

        // Last Seen update (monotone by FIFO).
        let ls_changed = pkt_sid != ls;
        if ls_changed {
            if channel == CPU_CHANNEL {
                self.cpu_last_seen = pkt_sid;
            } else {
                self.last_seen[usize::from(channel.0)] = pkt_sid;
            }
            obs::event!(
                sink,
                t_ns,
                "marker.seen",
                dev = self.cfg.unit.device,
                port = self.cfg.unit.port,
                dir = dir_label(self.cfg.unit.direction),
                ch = channel.0,
                sid = pkt_sid.raw(),
            );
        }

        // Notification on any update of the local ID or a Last Seen entry
        // (§5.3). Without channel state only ID changes are reported, since
        // Last Seen exists purely as a rollover reference.
        let sid_changed = self.sid != old_sid;
        let notification = if sid_changed || (ls_changed && self.cfg.channel_state) {
            Some(Notification {
                unit: self.cfg.unit,
                old_sid,
                new_sid: self.sid,
                channel: self.cfg.channel_state.then_some(channel),
                old_last_seen: ls,
                new_last_seen: pkt_sid,
            })
        } else {
            None
        };

        PacketOutcome {
            verdict,
            out_sid: self.sid,
            notification,
        }
    }

    /// Read and clear one snapshot slot (the control plane's register read;
    /// clearing implements the initialization check of Fig. 7 l.21).
    pub fn take_slot(&mut self, id: WrappedId) -> Option<SnapSlot> {
        let slot = &mut self.slots[usize::from(id.raw())];
        if slot.written {
            let out = *slot;
            *slot = SnapSlot::default();
            Some(out)
        } else {
            None
        }
    }

    /// Inspect a slot without clearing it (tests and proactive CP polling).
    pub fn peek_slot(&self, id: WrappedId) -> SnapSlot {
        self.slots[usize::from(id.raw())]
    }

    /// Snapshot the unit's registers as seen over the CPU interface —
    /// used by the control plane's proactive polling recovery path (§6).
    pub fn poll_registers(&self) -> PolledRegisters {
        PolledRegisters {
            sid: self.sid,
            last_seen: self.last_seen.clone(),
        }
    }
}

/// Trace label for a unit direction (matches the [`UnitId`] display form).
fn dir_label(d: Direction) -> &'static str {
    match d {
        Direction::Ingress => "in",
        Direction::Egress => "out",
    }
}

/// A proactive register poll result (§6 "Ensuring liveness").
#[derive(Debug, Clone)]
pub struct PolledRegisters {
    /// The unit's current snapshot ID.
    pub sid: WrappedId,
    /// The unit's Last Seen array (real channels only).
    pub last_seen: Vec<WrappedId>,
}

/// Convenience: wrap an epoch with this unit's modulus.
impl DataPlaneUnit {
    /// Wrap a full epoch into this unit's ID space.
    pub fn wrap(&self, epoch: Epoch) -> WrappedId {
        WrappedId::wrap(epoch, self.cfg.modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(channel_state: bool, channels: u16, modulus: u16) -> DataPlaneUnit {
        DataPlaneUnit::new(UnitConfig {
            unit: UnitId::ingress(0, 0),
            modulus,
            channel_state,
            num_channels: channels,
        })
    }

    fn w(v: u16, m: u16) -> WrappedId {
        WrappedId::from_raw(v, m)
    }

    #[test]
    fn boot_state_is_epoch_zero() {
        let u = unit(true, 2, 8);
        assert_eq!(u.sid().raw(), 0);
        assert_eq!(u.last_seen(ChannelId(0)).raw(), 0);
        assert_eq!(u.last_seen(CPU_CHANNEL).raw(), 0);
        assert_eq!(u.peek_slot(w(0, 8)), SnapSlot::default());
    }

    #[test]
    fn current_epoch_packet_is_a_noop() {
        let mut u = unit(true, 1, 8);
        let out = u.on_packet(ChannelId(0), w(0, 8), 10, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Current);
        assert_eq!(out.out_sid.raw(), 0);
        assert!(out.notification.is_none());
    }

    #[test]
    fn newer_packet_advances_and_saves_pre_update_state() {
        let mut u = unit(true, 1, 8);
        let out = u.on_packet(ChannelId(0), w(1, 8), 42, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Advanced(1));
        assert_eq!(out.out_sid.raw(), 1);
        let slot = u.peek_slot(w(1, 8));
        assert!(slot.written);
        assert_eq!(slot.value, 42); // state *before* this packet's update
        assert_eq!(slot.channel, 0);
        let n = out.notification.expect("sid change must notify");
        assert_eq!(n.old_sid.raw(), 0);
        assert_eq!(n.new_sid.raw(), 1);
        assert_eq!(n.channel, Some(ChannelId(0)));
        assert_eq!(n.old_last_seen.raw(), 0);
        assert_eq!(n.new_last_seen.raw(), 1);
    }

    #[test]
    fn in_flight_packet_credits_current_slot() {
        let mut u = unit(true, 2, 8);
        // Channel 0 advances us to epoch 1.
        u.on_packet(ChannelId(0), w(1, 8), 100, 1, false);
        // Channel 1 still in epoch 0: in-flight, contributes 7 bytes.
        let out = u.on_packet(ChannelId(1), w(0, 8), 101, 7, false);
        assert_eq!(out.verdict, PacketVerdict::InFlight(1));
        assert_eq!(out.out_sid.raw(), 1, "header rewritten to local sid");
        assert_eq!(u.peek_slot(w(1, 8)).channel, 7);
        // The in-flight packet did not change Last Seen (still 0 == 0), so
        // no notification.
        assert!(out.notification.is_none());
    }

    #[test]
    fn last_seen_update_notifies_with_channel_state() {
        let mut u = unit(true, 2, 8);
        u.on_packet(ChannelId(0), w(1, 8), 0, 1, false);
        // Channel 1 catches up: last seen 0 -> 1, sid unchanged.
        let out = u.on_packet(ChannelId(1), w(1, 8), 0, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Current);
        let n = out.notification.expect("last-seen change must notify");
        assert_eq!(n.old_sid, n.new_sid);
        assert_eq!(n.channel, Some(ChannelId(1)));
        assert_eq!(n.old_last_seen.raw(), 0);
        assert_eq!(n.new_last_seen.raw(), 1);
    }

    #[test]
    fn without_channel_state_only_sid_changes_notify() {
        let mut u = unit(false, 2, 8);
        let out = u.on_packet(ChannelId(0), w(1, 8), 5, 1, false);
        let n = out.notification.expect("sid change notifies");
        assert_eq!(n.channel, None);
        // Catch-up on the other channel: no notification without CS.
        let out = u.on_packet(ChannelId(1), w(1, 8), 5, 1, false);
        assert!(out.notification.is_none());
        // And no channel accumulation on in-flight.
        u.on_packet(ChannelId(0), w(2, 8), 6, 1, false);
        let out = u.on_packet(ChannelId(1), w(1, 8), 6, 9, false);
        assert_eq!(out.verdict, PacketVerdict::InFlight(1));
        assert_eq!(u.peek_slot(w(2, 8)).channel, 0);
    }

    #[test]
    fn skip_jump_leaves_intermediate_slots_unwritten() {
        let mut u = unit(true, 1, 8);
        let out = u.on_packet(ChannelId(0), w(3, 8), 50, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Advanced(3));
        assert!(!u.peek_slot(w(1, 8)).written);
        assert!(!u.peek_slot(w(2, 8)).written);
        assert!(u.peek_slot(w(3, 8)).written);
        assert_eq!(u.peek_slot(w(3, 8)).value, 50);
    }

    #[test]
    fn rollover_advance_and_in_flight() {
        let m = 4;
        let mut u = unit(true, 2, m);
        // Walk channel 0 up through a full wrap: epochs 1,2,3,4(->0),5(->1).
        for (epoch, state) in [(1u16, 10u64), (2, 20), (3, 30)] {
            u.on_packet(ChannelId(0), w(epoch % m, m), state, 1, false);
        }
        // Bring channel 1 to epoch 3 so its reference is fresh.
        u.on_packet(ChannelId(1), w(3, m), 31, 1, false);
        // Epoch 4 wraps to raw 0.
        let out = u.on_packet(ChannelId(0), w(0, m), 40, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Advanced(1));
        assert_eq!(u.sid().raw(), 0);
        assert_eq!(u.peek_slot(w(0, m)).value, 40);
        // Channel 1 sends an epoch-3 packet: in-flight across the wrap.
        let out = u.on_packet(ChannelId(1), w(3, m), 41, 5, false);
        assert_eq!(out.verdict, PacketVerdict::InFlight(1));
        assert_eq!(u.peek_slot(w(0, m)).channel, 5);
    }

    #[test]
    fn cpu_initiation_advances_but_never_counts_in_flight() {
        let mut u = unit(true, 1, 8);
        let out = u.on_packet(CPU_CHANNEL, w(1, 8), 7, 1, true);
        assert_eq!(out.verdict, PacketVerdict::Advanced(1));
        assert_eq!(u.last_seen(CPU_CHANNEL).raw(), 1);
        // A duplicate (re-sent) initiation is ignored.
        let out = u.on_packet(CPU_CHANNEL, w(1, 8), 8, 1, true);
        assert_eq!(out.verdict, PacketVerdict::Current);
        // An outdated initiation is in-flight-classified but never credited.
        u.on_packet(ChannelId(0), w(2, 8), 9, 1, false);
        let before = u.peek_slot(w(2, 8)).channel;
        let out = u.on_packet(CPU_CHANNEL, w(1, 8), 9, 1, true);
        assert_eq!(out.verdict, PacketVerdict::InFlight(1));
        assert_eq!(u.peek_slot(w(2, 8)).channel, before);
    }

    #[test]
    fn take_slot_clears_written() {
        let mut u = unit(true, 1, 8);
        u.on_packet(ChannelId(0), w(1, 8), 42, 1, false);
        let slot = u.take_slot(w(1, 8)).expect("written");
        assert_eq!(slot.value, 42);
        assert!(u.take_slot(w(1, 8)).is_none(), "second read sees cleared");
        assert!(!u.peek_slot(w(1, 8)).written);
    }

    #[test]
    fn poll_registers_reflects_state() {
        let mut u = unit(true, 2, 8);
        u.on_packet(ChannelId(0), w(2, 8), 0, 1, false);
        u.on_packet(ChannelId(1), w(1, 8), 0, 1, false);
        let regs = u.poll_registers();
        assert_eq!(regs.sid.raw(), 2);
        assert_eq!(regs.last_seen[0].raw(), 2);
        assert_eq!(regs.last_seen[1].raw(), 1);
    }

    #[test]
    fn in_flight_before_any_snapshot_is_impossible_but_guarded() {
        // At boot (sid=0, ls=0) every packet is Current or Advanced; the
        // contribution guard on unwritten slots protects against misuse.
        let mut u = unit(true, 1, 8);
        let out = u.on_packet(ChannelId(0), w(0, 8), 0, 1, false);
        assert_eq!(out.verdict, PacketVerdict::Current);
        assert_eq!(u.peek_slot(w(0, 8)).channel, 0);
    }
}
