//! The snapshot observer (§3 "Operation", §6).
//!
//! A host-side process that (1) registers the set of participating devices,
//! (2) issues snapshot epochs — respecting the **no-lapping** invariant by
//! capping outstanding epochs below the ID modulus (§5.3), (3) assembles
//! per-unit reports shipped up by the device control planes into
//! [`GlobalSnapshot`]s, and (4) deals with failures: devices that time out
//! are excluded from the snapshot rather than wedging it (§6).
//!
//! Like the rest of `speedlight-core` this is sans-I/O: the embedding layer
//! decides when to call [`Observer::begin_snapshot`] (e.g. at a
//! PTP-scheduled instant) and what to do with the initiation fan-out.

use crate::control::{Report, ReportValue};
use crate::id::Epoch;
use crate::types::UnitId;
use std::collections::{BTreeMap, BTreeSet};

/// Observer configuration.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Snapshot ID modulus used by the data planes.
    pub modulus: u16,
    /// Maximum epochs in flight at once. Must be ≤ `modulus - 1` to uphold
    /// no-lapping; smaller values trade snapshot rate for slack.
    pub max_outstanding: u16,
}

impl ObserverConfig {
    /// The most permissive safe configuration for a given modulus.
    pub fn for_modulus(modulus: u16) -> ObserverConfig {
        assert!(modulus >= 2);
        ObserverConfig {
            modulus,
            max_outstanding: modulus - 1,
        }
    }
}

/// Outcome of one unit's measurement within a global snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOutcome {
    /// A consistent, directly read value (local state + channel state).
    Value {
        /// Snapshotted local state.
        local: u64,
        /// Accumulated channel state.
        channel: u64,
    },
    /// Value inferred across a skipped epoch (no-channel-state mode).
    Inferred {
        /// Inferred local state.
        local: u64,
    },
    /// Hardware limits / conservative drop handling invalidated this value.
    Inconsistent,
    /// The control plane could not produce the value.
    Missing,
    /// The owning device timed out and was excluded from the snapshot.
    DeviceExcluded,
}

impl From<ReportValue> for UnitOutcome {
    fn from(v: ReportValue) -> UnitOutcome {
        match v {
            ReportValue::Value { local, channel } => UnitOutcome::Value { local, channel },
            ReportValue::Inferred { local } => UnitOutcome::Inferred { local },
            ReportValue::Inconsistent => UnitOutcome::Inconsistent,
            ReportValue::Missing => UnitOutcome::Missing,
        }
    }
}

impl UnitOutcome {
    /// The usable local value, if any (consistent or inferred).
    pub fn local(&self) -> Option<u64> {
        match self {
            UnitOutcome::Value { local, .. } | UnitOutcome::Inferred { local } => Some(*local),
            _ => None,
        }
    }
}

/// A fully assembled network-wide snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSnapshot {
    /// The snapshot epoch.
    pub epoch: Epoch,
    /// Devices that participated (registered at initiation and not excluded).
    pub devices: BTreeSet<u16>,
    /// Devices excluded by timeout.
    pub excluded: BTreeSet<u16>,
    /// Per-unit outcomes.
    pub units: BTreeMap<UnitId, UnitOutcome>,
}

impl GlobalSnapshot {
    /// Iterate over units with usable values.
    pub fn usable(&self) -> impl Iterator<Item = (UnitId, u64)> + '_ {
        self.units
            .iter()
            .filter_map(|(u, o)| o.local().map(|v| (*u, v)))
    }

    /// Sum of `local + channel` over consistent values — for counting
    /// metrics this is the causally-consistent network-wide total.
    ///
    /// Overflow policy: the total **saturates** at `u64::MAX`. Counter
    /// values near the u64 boundary are already degenerate (real switch
    /// counters wrap far below it), so a saturated total is a readable
    /// "off the scale" marker — preferable to a panic in release builds
    /// or, worse, a silently wrapped small number that looks plausible.
    /// Callers that must distinguish saturation use
    /// [`GlobalSnapshot::checked_consistent_total`].
    pub fn consistent_total(&self) -> u64 {
        self.units.values().fold(0u64, |acc, o| match o {
            UnitOutcome::Value { local, channel } => {
                acc.saturating_add(*local).saturating_add(*channel)
            }
            UnitOutcome::Inferred { local } => acc.saturating_add(*local),
            _ => acc,
        })
    }

    /// [`GlobalSnapshot::consistent_total`] without the saturation: `None`
    /// when the exact sum does not fit in a `u64`.
    pub fn checked_consistent_total(&self) -> Option<u64> {
        self.units.values().try_fold(0u64, |acc, o| match o {
            UnitOutcome::Value { local, channel } => acc.checked_add(*local)?.checked_add(*channel),
            UnitOutcome::Inferred { local } => acc.checked_add(*local),
            _ => Some(acc),
        })
    }

    /// True when every unit reported a consistent or inferred value.
    pub fn fully_consistent(&self) -> bool {
        self.units
            .values()
            .all(|o| matches!(o, UnitOutcome::Value { .. } | UnitOutcome::Inferred { .. }))
    }
}

#[derive(Debug, Clone)]
struct PendingSnapshot {
    device_set: BTreeSet<u16>,
    expected: BTreeSet<UnitId>,
    excluded: BTreeSet<u16>,
    values: BTreeMap<UnitId, UnitOutcome>,
}

/// The network-wide snapshot observer.
#[derive(Debug, Clone)]
pub struct Observer {
    cfg: ObserverConfig,
    devices: BTreeMap<u16, Vec<UnitId>>,
    next_epoch: Epoch,
    pending: BTreeMap<Epoch, PendingSnapshot>,
    finalized: u64,
    misattributed: u64,
}

impl Observer {
    /// Create an observer with no registered devices.
    pub fn new(cfg: ObserverConfig) -> Observer {
        assert!(cfg.max_outstanding >= 1);
        assert!(
            cfg.max_outstanding < cfg.modulus,
            "outstanding epochs must stay below the modulus (no-lapping)"
        );
        Observer {
            cfg,
            devices: BTreeMap::new(),
            next_epoch: 1,
            pending: BTreeMap::new(),
            finalized: 0,
            misattributed: 0,
        }
    }

    /// Register a device and its expected processing units (§6 "Node
    /// attachment"). The device participates starting with the *next*
    /// initiated snapshot.
    pub fn register_device(&mut self, device: u16, units: Vec<UnitId>) {
        self.devices.insert(device, units);
    }

    /// Remove a device (decommissioning). Pending snapshots that expected
    /// it will only finish via [`Observer::force_finalize`].
    pub fn detach_device(&mut self, device: u16) {
        self.devices.remove(&device);
    }

    /// Registered device IDs.
    pub fn device_ids(&self) -> impl Iterator<Item = u16> + '_ {
        self.devices.keys().copied()
    }

    /// Epochs issued but not yet finalized.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Epochs currently pending, oldest first.
    pub fn pending_epochs(&self) -> impl Iterator<Item = Epoch> + '_ {
        self.pending.keys().copied()
    }

    /// Number of snapshots finalized so far.
    pub fn finalized_count(&self) -> u64 {
        self.finalized
    }

    /// Reports rejected because the delivering device did not own the
    /// reported unit (see `report.misattributed` in the trace).
    pub fn misattributed_count(&self) -> u64 {
        self.misattributed
    }

    /// Issue the next snapshot epoch, or `None` if doing so would violate
    /// the no-lapping cap (the caller should retry after completions).
    ///
    /// The caller is responsible for fanning the returned epoch out to every
    /// registered device control plane as a scheduled initiation.
    pub fn begin_snapshot(&mut self) -> Option<Epoch> {
        self.begin_snapshot_traced(&mut obs::NoopSink, 0)
    }

    /// [`Observer::begin_snapshot`] with trace emission: a `snap.initiate`
    /// event carrying the epoch and the expected device/unit counts.
    pub fn begin_snapshot_traced<S: obs::Sink>(
        &mut self,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<Epoch> {
        if self.pending.len() >= usize::from(self.cfg.max_outstanding) {
            return None;
        }
        if self.devices.is_empty() {
            return None;
        }
        let epoch = self.next_epoch;
        // Checked-arithmetic policy: a wrapped epoch counter would silently
        // alias wrapped snapshot IDs and corrupt no-lapping bookkeeping.
        self.next_epoch = epoch.checked_add(1).unwrap_or_else(|| {
            panic!("observer epoch counter overflow: next_epoch would exceed u64::MAX")
        });
        let device_set: BTreeSet<u16> = self.devices.keys().copied().collect();
        let expected: BTreeSet<UnitId> = self
            .devices
            .values()
            .flat_map(|units| units.iter().copied())
            .collect();
        obs::event!(
            sink,
            t_ns,
            "snap.initiate",
            epoch = epoch,
            devices = device_set.len(),
            units = expected.len(),
        );
        self.pending.insert(
            epoch,
            PendingSnapshot {
                device_set,
                expected,
                excluded: BTreeSet::new(),
                values: BTreeMap::new(),
            },
        );
        Some(epoch)
    }

    /// Deliver one control-plane report. Returns the finished snapshot if
    /// this report completed its epoch.
    ///
    /// Reports for unknown epochs, for devices outside the epoch's device
    /// set (late attachers, §6), or duplicates are ignored.
    pub fn on_report(&mut self, device: u16, report: Report) -> Option<GlobalSnapshot> {
        self.on_report_traced(device, report, &mut obs::NoopSink, 0)
    }

    /// [`Observer::on_report`] with trace emission: an `obs.finalize` event
    /// when this report completes its epoch.
    pub fn on_report_traced<S: obs::Sink>(
        &mut self,
        device: u16,
        report: Report,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        // Attribution check first: a report whose unit belongs to a
        // different device than the one delivering it is misrouted (or
        // spoofed) — crediting it would let device A complete device B's
        // share of the epoch. Rejected regardless of epoch validity.
        if report.unit.device != device {
            obs::event!(
                sink,
                t_ns,
                "report.misattributed",
                dev = device,
                unit_dev = report.unit.device,
                epoch = report.epoch,
            );
            self.misattributed += 1;
            return None;
        }
        let pending = self.pending.get_mut(&report.epoch)?;
        if !pending.device_set.contains(&device) || pending.excluded.contains(&device) {
            return None; // spurious: device not in this epoch's set
        }
        if !pending.expected.contains(&report.unit) {
            return None;
        }
        pending
            .values
            .entry(report.unit)
            .or_insert_with(|| report.value.into());
        if pending.values.len() == pending.expected.len() {
            let snap = self.finalize(report.epoch)?;
            obs::event!(
                sink,
                t_ns,
                "obs.finalize",
                epoch = snap.epoch,
                units = snap.units.len(),
                excluded = snap.excluded.len(),
                forced = false,
            );
            return Some(snap);
        }
        None
    }

    /// Units still missing for `epoch` (retry / re-initiation planning).
    pub fn missing_units(&self, epoch: Epoch) -> Vec<UnitId> {
        match self.pending.get(&epoch) {
            Some(p) => p
                .expected
                .iter()
                .filter(|u| !p.values.contains_key(u))
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Devices with at least one missing unit for `epoch`.
    pub fn lagging_devices(&self, epoch: Epoch) -> BTreeSet<u16> {
        self.missing_units(epoch).iter().map(|u| u.device).collect()
    }

    /// Timeout path: exclude every device that still has missing units and
    /// finalize the snapshot with what arrived (§6: "If a device fails, it
    /// may timeout and be excluded from the global snapshot").
    pub fn force_finalize(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        self.force_finalize_traced(epoch, &mut obs::NoopSink, 0)
    }

    /// [`Observer::force_finalize`] with trace emission: one `snap.exclude`
    /// per timed-out device, then an `obs.finalize` marked `forced`.
    pub fn force_finalize_traced<S: obs::Sink>(
        &mut self,
        epoch: Epoch,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        let pending = self.pending.get_mut(&epoch)?;
        let lagging: BTreeSet<u16> = pending
            .expected
            .iter()
            .filter(|u| !pending.values.contains_key(u))
            .map(|u| u.device)
            .collect();
        for dev in &lagging {
            pending.excluded.insert(*dev);
            obs::event!(sink, t_ns, "snap.exclude", epoch = epoch, dev = *dev);
        }
        // Exclusion policy (§6): an excluded device contributes NOTHING —
        // every one of its units reads DeviceExcluded, even units it did
        // deliver before timing out (a partial view of a failed device is
        // not a consistent cut). The values it DID deliver are counted and
        // surfaced in the finalize event so the discard is auditable
        // instead of silent.
        let expected = pending.expected.clone();
        let mut discarded: u64 = 0;
        for unit in expected {
            if lagging.contains(&unit.device) {
                if let Some(prev) = pending.values.insert(unit, UnitOutcome::DeviceExcluded) {
                    if prev != UnitOutcome::DeviceExcluded {
                        discarded += 1;
                    }
                }
            }
        }
        let snap = self.finalize(epoch)?;
        obs::event!(
            sink,
            t_ns,
            "obs.finalize",
            epoch = snap.epoch,
            units = snap.units.len(),
            excluded = snap.excluded.len(),
            forced = true,
            discarded = discarded,
        );
        Some(snap)
    }

    /// Remove `epoch` from the pending set and seal its snapshot. Total:
    /// an epoch that is not pending (already finalized, or never opened)
    /// yields `None` instead of tearing down the event loop.
    fn finalize(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        let p = self.pending.remove(&epoch)?;
        self.finalized += 1;
        Some(GlobalSnapshot {
            epoch,
            devices: &p.device_set - &p.excluded,
            excluded: p.excluded,
            units: p.values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(unit: UnitId, epoch: Epoch, local: u64) -> Report {
        Report {
            unit,
            epoch,
            value: ReportValue::Value { local, channel: 0 },
        }
    }

    fn two_device_observer() -> Observer {
        let mut obs = Observer::new(ObserverConfig::for_modulus(8));
        obs.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        obs.register_device(1, vec![UnitId::ingress(1, 0), UnitId::egress(1, 0)]);
        obs
    }

    #[test]
    fn assembles_snapshot_when_all_units_report() {
        let mut obs = two_device_observer();
        let epoch = obs.begin_snapshot().unwrap();
        assert_eq!(epoch, 1);
        assert!(obs
            .on_report(0, report(UnitId::ingress(0, 0), 1, 10))
            .is_none());
        assert!(obs
            .on_report(0, report(UnitId::egress(0, 0), 1, 11))
            .is_none());
        assert!(obs
            .on_report(1, report(UnitId::ingress(1, 0), 1, 12))
            .is_none());
        let snap = obs
            .on_report(1, report(UnitId::egress(1, 0), 1, 13))
            .expect("final report completes the snapshot");
        assert_eq!(snap.epoch, 1);
        assert!(snap.fully_consistent());
        assert_eq!(snap.consistent_total(), 10 + 11 + 12 + 13);
        assert_eq!(snap.devices, BTreeSet::from([0, 1]));
        assert!(snap.excluded.is_empty());
        assert_eq!(obs.outstanding(), 0);
        assert_eq!(obs.finalized_count(), 1);
    }

    #[test]
    fn no_lapping_cap_limits_outstanding_epochs() {
        let mut obs = Observer::new(ObserverConfig {
            modulus: 4,
            max_outstanding: 3,
        });
        obs.register_device(0, vec![UnitId::ingress(0, 0)]);
        assert_eq!(obs.begin_snapshot(), Some(1));
        assert_eq!(obs.begin_snapshot(), Some(2));
        assert_eq!(obs.begin_snapshot(), Some(3));
        assert_eq!(obs.begin_snapshot(), None, "cap reached");
        // Completing epoch 1 frees a slot.
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 5))
            .unwrap();
        assert_eq!(obs.begin_snapshot(), Some(4));
    }

    #[test]
    fn cannot_snapshot_an_empty_network() {
        let mut obs = Observer::new(ObserverConfig::for_modulus(8));
        assert_eq!(obs.begin_snapshot(), None);
    }

    #[test]
    fn duplicate_reports_do_not_double_count() {
        let mut obs = Observer::new(ObserverConfig::for_modulus(8));
        obs.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        obs.begin_snapshot().unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        // Duplicate (e.g., a retry raced with the original) is ignored and
        // keeps the first value.
        assert!(obs
            .on_report(0, report(UnitId::ingress(0, 0), 1, 99))
            .is_none());
        let snap = obs
            .on_report(0, report(UnitId::egress(0, 0), 1, 11))
            .unwrap();
        assert_eq!(
            snap.units[&UnitId::ingress(0, 0)],
            UnitOutcome::Value {
                local: 10,
                channel: 0
            }
        );
    }

    #[test]
    fn late_attached_device_is_ignored_for_in_flight_epochs() {
        let mut obs = Observer::new(ObserverConfig::for_modulus(8));
        obs.register_device(0, vec![UnitId::ingress(0, 0)]);
        obs.begin_snapshot().unwrap();
        // Device 1 attaches after epoch 1 was initiated.
        obs.register_device(1, vec![UnitId::ingress(1, 0)]);
        // Its (spurious) epoch-1 report is ignored.
        assert!(obs
            .on_report(1, report(UnitId::ingress(1, 0), 1, 7))
            .is_none());
        let snap = obs
            .on_report(0, report(UnitId::ingress(0, 0), 1, 5))
            .unwrap();
        assert_eq!(snap.units.len(), 1);
        // But epoch 2 includes it.
        let e2 = obs.begin_snapshot().unwrap();
        assert_eq!(e2, 2);
        assert!(obs
            .on_report(0, report(UnitId::ingress(0, 0), 2, 6))
            .is_none());
        let snap2 = obs
            .on_report(1, report(UnitId::ingress(1, 0), 2, 8))
            .unwrap();
        assert_eq!(snap2.units.len(), 2);
    }

    #[test]
    fn timeout_excludes_lagging_devices() {
        let mut obs = two_device_observer();
        obs.begin_snapshot().unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        obs.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        assert_eq!(obs.lagging_devices(1), BTreeSet::from([1]));
        let snap = obs.force_finalize(1).unwrap();
        assert_eq!(snap.excluded, BTreeSet::from([1]));
        assert_eq!(snap.devices, BTreeSet::from([0]));
        assert_eq!(
            snap.units[&UnitId::ingress(1, 0)],
            UnitOutcome::DeviceExcluded
        );
        assert!(!snap.fully_consistent());
        assert_eq!(snap.consistent_total(), 21);
        // Excluded device's late report arrives afterwards: epoch is gone.
        assert!(obs
            .on_report(1, report(UnitId::ingress(1, 0), 1, 12))
            .is_none());
    }

    #[test]
    fn force_finalize_excludes_two_devices_failing_in_the_same_epoch() {
        // Regression: force_finalize must cope with MULTIPLE lagging
        // devices at once — every unit of both is marked DeviceExcluded,
        // both land in `excluded`, and a third healthy device's values
        // survive untouched.
        let mut obs = Observer::new(ObserverConfig::for_modulus(8));
        for d in 0..3u16 {
            obs.register_device(d, vec![UnitId::ingress(d, 0), UnitId::egress(d, 0)]);
        }
        obs.begin_snapshot().unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        obs.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        // Devices 1 and 2 both died: no reports at all.
        assert_eq!(obs.lagging_devices(1), BTreeSet::from([1, 2]));
        let snap = obs.force_finalize(1).unwrap();
        assert_eq!(snap.excluded, BTreeSet::from([1, 2]));
        assert_eq!(snap.devices, BTreeSet::from([0]));
        for (uid, outcome) in &snap.units {
            match uid.device {
                0 => assert!(matches!(outcome, UnitOutcome::Value { .. })),
                _ => assert_eq!(*outcome, UnitOutcome::DeviceExcluded),
            }
        }
        assert_eq!(snap.consistent_total(), 21);
        assert_eq!(obs.outstanding(), 0);
        // The epoch is gone: stragglers' late reports are ignored and the
        // next epoch proceeds normally with all three devices expected.
        assert!(obs
            .on_report(1, report(UnitId::ingress(1, 0), 1, 9))
            .is_none());
        assert_eq!(obs.begin_snapshot(), Some(2));
    }

    #[test]
    fn missing_units_drive_retries() {
        let mut obs = two_device_observer();
        obs.begin_snapshot().unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        let missing = obs.missing_units(1);
        assert_eq!(missing.len(), 3);
        assert!(missing.contains(&UnitId::egress(0, 0)));
        assert!(obs.missing_units(99).is_empty());
    }

    #[test]
    fn reports_for_unknown_epochs_or_units_are_ignored() {
        let mut obs = two_device_observer();
        obs.begin_snapshot().unwrap();
        assert!(obs
            .on_report(0, report(UnitId::ingress(0, 0), 7, 1))
            .is_none());
        assert!(obs
            .on_report(0, report(UnitId::ingress(9, 9), 1, 1))
            .is_none());
    }

    #[test]
    fn outcome_helpers() {
        assert_eq!(
            UnitOutcome::Value {
                local: 3,
                channel: 1
            }
            .local(),
            Some(3)
        );
        assert_eq!(UnitOutcome::Inferred { local: 4 }.local(), Some(4));
        assert_eq!(UnitOutcome::Inconsistent.local(), None);
        assert_eq!(UnitOutcome::Missing.local(), None);
        assert_eq!(UnitOutcome::DeviceExcluded.local(), None);
    }

    #[test]
    #[should_panic(expected = "no-lapping")]
    fn config_rejects_unsafe_outstanding_cap() {
        Observer::new(ObserverConfig {
            modulus: 4,
            max_outstanding: 4,
        });
    }

    #[test]
    fn consistent_total_saturates_at_the_u64_boundary() {
        let snap = GlobalSnapshot {
            epoch: 1,
            devices: BTreeSet::from([0]),
            excluded: BTreeSet::new(),
            units: BTreeMap::from([
                (
                    UnitId::ingress(0, 0),
                    UnitOutcome::Value {
                        local: u64::MAX - 1,
                        channel: 1,
                    },
                ),
                (UnitId::egress(0, 0), UnitOutcome::Inferred { local: 7 }),
            ]),
        };
        // local + channel alone hits u64::MAX exactly; the inferred unit
        // pushes past it and the total clamps instead of wrapping.
        assert_eq!(snap.consistent_total(), u64::MAX);
        assert_eq!(snap.checked_consistent_total(), None);
    }

    #[test]
    fn misattributed_report_is_rejected_and_counted() {
        // Regression: device 0 delivers a report for device 1's (expected!)
        // unit. Pre-fix this was credited — device 0 could complete device
        // 1's share of the epoch with spoofed attribution. It must be
        // rejected, traced, and must leave the unit missing.
        let mut obs = two_device_observer();
        let mut sink = obs::sinks::RingSink::new(16);
        obs.begin_snapshot_traced(&mut sink, 0).unwrap();
        assert!(obs
            .on_report_traced(0, report(UnitId::ingress(1, 0), 1, 99), &mut sink, 10)
            .is_none());
        assert_eq!(obs.misattributed_count(), 1);
        assert!(obs.missing_units(1).contains(&UnitId::ingress(1, 0)));
        let ev = sink
            .events()
            .find(|e| e.name == "report.misattributed")
            .expect("misattribution must be traced");
        assert_eq!(ev.get("dev").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(ev.get("unit_dev").and_then(|v| v.as_u64()), Some(1));
        // The spoofed value never lands: finishing the epoch legitimately
        // yields device 1's real value, not 99.
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        obs.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        obs.on_report(1, report(UnitId::ingress(1, 0), 1, 12));
        let snap = obs
            .on_report(1, report(UnitId::egress(1, 0), 1, 13))
            .unwrap();
        assert_eq!(
            snap.units[&UnitId::ingress(1, 0)],
            UnitOutcome::Value {
                local: 12,
                channel: 0
            }
        );
    }

    #[test]
    fn forced_finalize_counts_discarded_partial_values() {
        // Regression: device 1 reported its ingress unit but timed out on
        // egress. Exclusion policy still zeroes the whole device (excluded
        // ⇒ every unit DeviceExcluded), but the overwrite of a delivered
        // value must be surfaced as `discarded` in the finalize event, not
        // vanish silently.
        let mut obs = two_device_observer();
        let mut sink = obs::sinks::RingSink::new(16);
        obs.begin_snapshot_traced(&mut sink, 0).unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        obs.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        obs.on_report(1, report(UnitId::ingress(1, 0), 1, 12));
        let snap = obs.force_finalize_traced(1, &mut sink, 50).unwrap();
        assert_eq!(snap.excluded, BTreeSet::from([1]));
        assert_eq!(
            snap.units[&UnitId::ingress(1, 0)],
            UnitOutcome::DeviceExcluded,
            "exclusion is total: even the delivered unit reads DeviceExcluded"
        );
        let ev = sink
            .events()
            .find(|e| e.name == "obs.finalize")
            .expect("forced finalize must be traced");
        assert_eq!(ev.get("forced"), Some(&obs::Value::Bool(true)));
        assert_eq!(
            ev.get("discarded").and_then(|v| v.as_u64()),
            Some(1),
            "the delivered-then-discarded ingress value must be counted"
        );
    }

    #[test]
    fn forced_finalize_with_no_partial_values_discards_nothing() {
        let mut obs = two_device_observer();
        let mut sink = obs::sinks::RingSink::new(16);
        obs.begin_snapshot_traced(&mut sink, 0).unwrap();
        obs.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        obs.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        obs.force_finalize_traced(1, &mut sink, 50).unwrap();
        let ev = sink.events().find(|e| e.name == "obs.finalize").unwrap();
        assert_eq!(ev.get("discarded").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    #[should_panic(expected = "epoch counter overflow")]
    fn epoch_counter_overflow_panics_with_context() {
        let mut obs = two_device_observer();
        obs.next_epoch = u64::MAX;
        // Issuing the final representable epoch must not wrap the counter
        // to 0 (which would alias wrapped snapshot IDs); it panics with
        // context instead.
        obs.begin_snapshot();
    }

    #[test]
    fn checked_consistent_total_matches_when_in_range() {
        let snap = GlobalSnapshot {
            epoch: 1,
            devices: BTreeSet::from([0]),
            excluded: BTreeSet::new(),
            units: BTreeMap::from([
                (
                    UnitId::ingress(0, 0),
                    UnitOutcome::Value {
                        local: 10,
                        channel: 2,
                    },
                ),
                (UnitId::egress(0, 0), UnitOutcome::Inconsistent),
            ]),
        };
        assert_eq!(snap.consistent_total(), 12);
        assert_eq!(snap.checked_consistent_total(), Some(12));
    }
}
