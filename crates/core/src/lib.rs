//! # speedlight-core — the Synchronized Network Snapshot protocol
//!
//! This crate implements the protocol contribution of *"Synchronized Network
//! Snapshots"* (Yaseen, Sonchack, Liu — SIGCOMM 2018), independent of any
//! particular switch substrate:
//!
//! * [`id`] — wrapped snapshot IDs with rollover (§5.3) and the monotone
//!   unwrapping rules that make them safe under the paper's no-lapping
//!   assumption.
//! * [`unit`](mod@unit) — the per-port, per-direction **data-plane processing unit**
//!   (Figs. 4–5): a state machine with exactly the capabilities of a Tofino
//!   match-action pipeline — single-slot register updates, no loops over
//!   intermediate snapshot IDs, bounded register arrays — that emits
//!   notifications to its control plane.
//! * [`control`] — the per-device **control plane** (Fig. 7): completion and
//!   inconsistency detection, value reads, recovery from dropped
//!   notifications, re-initiation for liveness (§6).
//! * [`observer`] — the network-wide **snapshot observer** (§3, §6):
//!   schedules snapshots, assembles per-unit reports into global snapshots,
//!   retries, and excludes failed devices.
//! * [`pipeline`] — the staged snapshot-assembly pipeline (collect →
//!   validate → assemble → finalize → persist-hook): bounded inter-stage
//!   queues, a backpressure signal for the embedding driver, and
//!   per-arriving-report consistency checks. Differential-tested against
//!   the monolithic [`observer`] reference.
//! * [`ideal`] — the idealized algorithm of Fig. 3 (unbounded IDs, full
//!   intermediate-slot updates), used as an oracle and for ablations.
//! * [`chandy_lamport`] — a classic textbook Chandy-Lamport implementation
//!   used as a second correctness oracle in the property tests.
//! * [`consistency`] — an omniscient event-log checker that validates causal
//!   consistency and flow conservation of completed snapshots.
//!
//! The crate is pure logic: no clocks, no queues, no I/O. The `fabric` crate
//! embeds these state machines into a simulated network, and the `emulation`
//! crate embeds them into a threaded live runtime. That split mirrors the
//! paper's central design point — the data plane obeys Chandy-Lamport-style
//! assumptions while the control plane patches over its hardware limits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chandy_lamport;
pub mod consistency;
pub mod control;
pub mod id;
pub mod ideal;
pub mod observer;
pub mod pipeline;
pub mod types;
pub mod unit;

pub use control::{ControlPlane, Registers, Report, ReportValue};
pub use id::{Epoch, WrappedId};
pub use observer::{GlobalSnapshot, Observer, ObserverConfig, UnitOutcome};
pub use pipeline::{AnyObserver, PipelineConfig, PipelineObserver, PipelineStats};
pub use types::{ChannelId, Direction, Notification, PacketVerdict, UnitId};
pub use unit::{DataPlaneUnit, UnitConfig};
