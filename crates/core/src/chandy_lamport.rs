//! A classic Chandy-Lamport distributed snapshot (the paper's intellectual
//! ancestor, §2/§4), implemented textbook-style with explicit marker
//! messages over reliable FIFO channels.
//!
//! Speedlight's protocol differs (multi-initiator, piggybacked epochs,
//! bipartite data/control split), but both must produce *causally
//! consistent cuts*. The property tests use this implementation as an
//! independent oracle: on the same token-passing system, both protocols
//! must conserve the token total (local states + channel states = initial
//! tokens).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Node identifier in the classic snapshot system.
pub type NodeId = usize;

/// A message on a channel: application tokens or a snapshot marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Application payload carrying `tokens` units of conserved state.
    Tokens(u64),
    /// The Chandy-Lamport marker.
    Marker,
}

/// One node of the token-passing system.
#[derive(Debug, Clone)]
struct Node {
    /// Conserved local token count.
    tokens: u64,
    /// Recorded local state (set when the node snapshots).
    recorded: Option<u64>,
    /// Channels (by upstream node) currently being recorded.
    recording: BTreeSet<NodeId>,
    /// Recorded in-transit tokens per upstream channel.
    channel_state: BTreeMap<NodeId, u64>,
    /// Upstream neighbors (incoming channels).
    upstream: Vec<NodeId>,
    /// Downstream neighbors (outgoing channels).
    downstream: Vec<NodeId>,
}

/// A strongly-connected system of token-passing nodes with FIFO channels,
/// supporting classic Chandy-Lamport snapshots.
#[derive(Debug, Clone)]
pub struct ClassicSystem {
    nodes: Vec<Node>,
    /// FIFO channel queues keyed by (from, to).
    channels: BTreeMap<(NodeId, NodeId), VecDeque<Message>>,
    snapshot_started: bool,
}

impl ClassicSystem {
    /// Build a system from a directed edge list; every node starts with
    /// `initial_tokens`.
    pub fn new(num_nodes: usize, edges: &[(NodeId, NodeId)], initial_tokens: u64) -> Self {
        let mut nodes: Vec<Node> = (0..num_nodes)
            .map(|_| Node {
                tokens: initial_tokens,
                recorded: None,
                recording: BTreeSet::new(),
                channel_state: BTreeMap::new(),
                upstream: Vec::new(),
                downstream: Vec::new(),
            })
            .collect();
        let mut channels = BTreeMap::new();
        for &(from, to) in edges {
            assert!(from != to, "self-channels are not modeled");
            nodes[from].downstream.push(to);
            nodes[to].upstream.push(from);
            channels.insert((from, to), VecDeque::new());
        }
        ClassicSystem {
            nodes,
            channels,
            snapshot_started: false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total tokens currently held by nodes and channels (ground truth).
    pub fn total_tokens(&self) -> u64 {
        let at_nodes: u64 = self.nodes.iter().map(|n| n.tokens).sum();
        let in_flight: u64 = self
            .channels
            .values()
            .flat_map(|q| q.iter())
            .map(|m| match m {
                Message::Tokens(t) => *t,
                Message::Marker => 0,
            })
            .sum();
        at_nodes + in_flight
    }

    /// Send `amount` tokens from `from` along its `out_idx`-th outgoing
    /// channel (application event). No-op if the node lacks tokens.
    pub fn send_tokens(&mut self, from: NodeId, out_idx: usize, amount: u64) {
        if self.nodes[from].downstream.is_empty() {
            return;
        }
        let to = self.nodes[from].downstream[out_idx % self.nodes[from].downstream.len()];
        let amount = amount.min(self.nodes[from].tokens);
        if amount == 0 {
            return;
        }
        self.nodes[from].tokens -= amount;
        self.channels
            .get_mut(&(from, to))
            .expect("edge exists")
            .push_back(Message::Tokens(amount));
    }

    /// Deliver the oldest message on channel `(from, to)` (scheduler event).
    /// Returns `false` if the channel was empty.
    pub fn deliver(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some(queue) = self.channels.get_mut(&(from, to)) else {
            return false;
        };
        let Some(msg) = queue.pop_front() else {
            return false;
        };
        match msg {
            Message::Tokens(t) => {
                // If the receiver is recording this channel, the tokens are
                // part of the channel's snapshot state.
                if self.nodes[to].recording.contains(&from) {
                    *self.nodes[to].channel_state.entry(from).or_insert(0) += t;
                }
                self.nodes[to].tokens += t;
            }
            Message::Marker => self.on_marker(from, to),
        }
        true
    }

    /// Initiate the snapshot at `node` (can be called at several nodes —
    /// the multi-initiator variant of Spezialetti-Kearns that Speedlight
    /// adopts; concurrent initiations merge into one snapshot here because
    /// there is a single snapshot instance).
    pub fn initiate(&mut self, node: NodeId) {
        self.snapshot_started = true;
        self.record_local(node);
    }

    fn record_local(&mut self, node: NodeId) {
        if self.nodes[node].recorded.is_some() {
            return;
        }
        self.nodes[node].recorded = Some(self.nodes[node].tokens);
        // Start recording every incoming channel…
        let upstream: Vec<NodeId> = self.nodes[node].upstream.clone();
        for up in upstream {
            self.nodes[node].recording.insert(up);
            self.nodes[node].channel_state.entry(up).or_insert(0);
        }
        // …and send a marker on every outgoing channel.
        let downstream: Vec<NodeId> = self.nodes[node].downstream.clone();
        for down in downstream {
            self.channels
                .get_mut(&(node, down))
                .expect("edge")
                .push_back(Message::Marker);
        }
    }

    fn on_marker(&mut self, from: NodeId, to: NodeId) {
        if self.nodes[to].recorded.is_none() {
            // First marker: record local state; the channel it arrived on
            // is empty (recorded as such).
            self.record_local(to);
        }
        // Marker closes the (from → to) channel's recording.
        self.nodes[to].recording.remove(&from);
    }

    /// Whether every node has recorded and every channel recording closed.
    pub fn snapshot_complete(&self) -> bool {
        self.snapshot_started
            && self
                .nodes
                .iter()
                .all(|n| n.recorded.is_some() && n.recording.is_empty())
    }

    /// The recorded global state: (per-node states, per-channel states).
    /// Meaningful once [`ClassicSystem::snapshot_complete`] holds.
    pub fn recorded_snapshot(&self) -> (Vec<u64>, BTreeMap<(NodeId, NodeId), u64>) {
        let nodes = self.nodes.iter().map(|n| n.recorded.unwrap_or(0)).collect();
        let mut chans = BTreeMap::new();
        for (to, node) in self.nodes.iter().enumerate() {
            for (&from, &tokens) in &node.channel_state {
                chans.insert((from, to), tokens);
            }
        }
        (nodes, chans)
    }

    /// Recorded total (node states + channel states): must equal the system
    /// token total for a consistent cut.
    pub fn recorded_total(&self) -> u64 {
        let (nodes, chans) = self.recorded_snapshot();
        nodes.iter().sum::<u64>() + chans.values().sum::<u64>()
    }

    /// Channels that still hold undelivered messages.
    pub fn busy_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(k, _)| *k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fully drain all channels, round-robin.
    fn drain(sys: &mut ClassicSystem) {
        loop {
            let busy = sys.busy_channels();
            if busy.is_empty() {
                break;
            }
            for (from, to) in busy {
                sys.deliver(from, to);
            }
        }
    }

    fn ring(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect()
    }

    #[test]
    fn quiescent_snapshot_records_exact_state() {
        let mut sys = ClassicSystem::new(3, &ring(3), 100);
        sys.initiate(0);
        drain(&mut sys);
        assert!(sys.snapshot_complete());
        assert_eq!(sys.recorded_total(), 300);
        let (nodes, chans) = sys.recorded_snapshot();
        assert_eq!(nodes, vec![100, 100, 100]);
        assert!(chans.values().all(|&t| t == 0));
    }

    #[test]
    fn in_flight_tokens_are_captured_as_channel_state() {
        let mut sys = ClassicSystem::new(2, &[(0, 1), (1, 0)], 50);
        // 0 sends 20 tokens, then we snapshot at 0 before delivery.
        sys.send_tokens(0, 0, 20);
        sys.initiate(0);
        drain(&mut sys);
        assert!(sys.snapshot_complete());
        assert_eq!(sys.total_tokens(), 100);
        assert_eq!(sys.recorded_total(), 100);
        let (nodes, _) = sys.recorded_snapshot();
        assert_eq!(nodes[0], 30, "sender recorded post-send state");
    }

    #[test]
    fn tokens_sent_after_marker_are_excluded() {
        let mut sys = ClassicSystem::new(2, &[(0, 1), (1, 0)], 50);
        sys.initiate(0);
        // Send after the marker is queued: FIFO puts tokens behind it.
        sys.send_tokens(0, 0, 10);
        drain(&mut sys);
        assert!(sys.snapshot_complete());
        // The cut: node 0 recorded 50 (pre-send); node 1's recording of
        // channel 0→1 closed at the marker, before the tokens arrived.
        assert_eq!(sys.recorded_total(), 100);
        let (nodes, chans) = sys.recorded_snapshot();
        assert_eq!(nodes[0], 50);
        assert_eq!(chans[&(0, 1)], 0);
    }

    #[test]
    fn concurrent_initiators_still_conserve() {
        let mut sys = ClassicSystem::new(4, &ring(4), 25);
        sys.send_tokens(0, 0, 5);
        sys.send_tokens(2, 1, 7);
        sys.initiate(0);
        sys.initiate(2);
        sys.send_tokens(1, 0, 3);
        drain(&mut sys);
        assert!(sys.snapshot_complete());
        assert_eq!(sys.recorded_total(), 100);
        assert_eq!(sys.total_tokens(), 100);
    }

    #[test]
    fn randomized_schedules_conserve_tokens() {
        use rand::{Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..6);
            // Dense random strongly-connected graph: ring + extra edges.
            let mut edges = ring(n);
            for _ in 0..rng.gen_range(0..6) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && !edges.contains(&(a, b)) {
                    edges.push((a, b));
                }
            }
            let mut sys = ClassicSystem::new(n, &edges, 100);
            let initiator = rng.gen_range(0..n);
            let total = sys.total_tokens();
            for step in 0..200 {
                match rng.gen_range(0..3) {
                    0 => {
                        let from = rng.gen_range(0..n);
                        let idx = rng.gen_range(0..8);
                        sys.send_tokens(from, idx, rng.gen_range(1..10));
                    }
                    _ => {
                        let busy = sys.busy_channels();
                        if !busy.is_empty() {
                            let (f, t) = busy[rng.gen_range(0..busy.len())];
                            sys.deliver(f, t);
                        }
                    }
                }
                if step == 50 {
                    sys.initiate(initiator);
                }
            }
            drain(&mut sys);
            assert!(sys.snapshot_complete(), "seed {seed}");
            assert_eq!(sys.recorded_total(), total, "seed {seed}");
            assert_eq!(sys.total_tokens(), total, "seed {seed}");
        }
    }
}
