//! Snapshot epochs and wrapped snapshot IDs.
//!
//! The data plane stores snapshot IDs in small registers, so IDs roll over
//! to 0 after reaching `modulus - 1` (§5.3). Correctness rests on the
//! paper's **no-lapping assumption**: the difference between any two live
//! snapshot IDs in the system never exceeds `modulus - 1` (enforced
//! out-of-band by the observer, which caps outstanding epochs).
//!
//! Two facts make rollover tractable:
//!
//! 1. every ID stream we compare against is **monotone non-decreasing**
//!    (a unit's own ID, the last-seen ID per FIFO channel, the control
//!    plane's view of either), and
//! 2. no-lapping bounds how far ahead a newly observed ID can be.
//!
//! So unwrapping is always "smallest epoch ≥ reference congruent to the
//! wrapped value", implemented by [`WrappedId::unwrap_from`].

/// An unbounded snapshot epoch (the control plane / observer view).
///
/// Epoch 0 is the pre-snapshot era every unit boots into; the first real
/// snapshot is epoch 1.
pub type Epoch = u64;

/// A snapshot ID as stored in data-plane registers: a value in
/// `[0, modulus)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrappedId {
    value: u16,
    modulus: u16,
}

impl WrappedId {
    /// Wrap an epoch into ID space.
    pub fn wrap(epoch: Epoch, modulus: u16) -> WrappedId {
        assert!(modulus >= 2, "snapshot ID modulus must be at least 2");
        WrappedId {
            value: (epoch % Epoch::from(modulus)) as u16,
            modulus,
        }
    }

    /// Construct from a raw register value.
    pub fn from_raw(value: u16, modulus: u16) -> WrappedId {
        assert!(modulus >= 2, "snapshot ID modulus must be at least 2");
        assert!(
            value < modulus,
            "wrapped ID {value} out of range (mod {modulus})"
        );
        WrappedId { value, modulus }
    }

    /// The raw register value.
    pub fn raw(self) -> u16 {
        self.value
    }

    /// The ID-space modulus ("max snapshot id" in the paper).
    pub fn modulus(self) -> u16 {
        self.modulus
    }

    /// Number of steps forward from `reference` to this ID, in `[0, modulus)`.
    ///
    /// This is the *true* epoch difference whenever the true difference is
    /// known to be in `[0, modulus - 1]` — exactly what monotonicity plus
    /// no-lapping guarantee.
    pub fn forward_distance(self, reference: WrappedId) -> u16 {
        debug_assert_eq!(self.modulus, reference.modulus);
        let m = self.modulus;
        ((self.value + m) - reference.value) % m
    }

    /// Recover the full epoch of this ID given a full-epoch reference that
    /// is known to be ≤ the true epoch and within `modulus - 1` of it.
    pub fn unwrap_from(self, reference: Epoch) -> Epoch {
        let m = Epoch::from(self.modulus);
        let ref_wrapped = reference % m;
        let delta = (Epoch::from(self.value) + m - ref_wrapped) % m;
        reference + delta
    }

    /// The ID `steps` epochs after this one.
    pub fn step(self, steps: u16) -> WrappedId {
        WrappedId {
            value: ((u32::from(self.value) + u32::from(steps)) % u32::from(self.modulus)) as u16,
            modulus: self.modulus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_reduces_modulo() {
        assert_eq!(WrappedId::wrap(0, 8).raw(), 0);
        assert_eq!(WrappedId::wrap(7, 8).raw(), 7);
        assert_eq!(WrappedId::wrap(8, 8).raw(), 0);
        assert_eq!(WrappedId::wrap(23, 8).raw(), 7);
    }

    #[test]
    fn forward_distance_handles_rollover() {
        let m = 8;
        let a = WrappedId::from_raw(1, m);
        let b = WrappedId::from_raw(6, m);
        assert_eq!(a.forward_distance(b), 3); // 6 -> 7 -> 0 -> 1
        assert_eq!(b.forward_distance(a), 5);
        assert_eq!(a.forward_distance(a), 0);
    }

    #[test]
    fn unwrap_recovers_epochs_within_window() {
        let m: u16 = 8;
        for reference in 0..100u64 {
            for delta in 0..u64::from(m) {
                let epoch = reference + delta;
                let w = WrappedId::wrap(epoch, m);
                assert_eq!(
                    w.unwrap_from(reference),
                    epoch,
                    "epoch={epoch} ref={reference}"
                );
            }
        }
    }

    #[test]
    fn unwrap_is_identity_at_reference() {
        let w = WrappedId::wrap(42, 16);
        assert_eq!(w.unwrap_from(42), 42);
    }

    #[test]
    fn step_wraps() {
        let w = WrappedId::from_raw(6, 8);
        assert_eq!(w.step(1).raw(), 7);
        assert_eq!(w.step(2).raw(), 0);
        assert_eq!(w.step(8).raw(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_validates() {
        WrappedId::from_raw(8, 8);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn modulus_must_allow_progress() {
        WrappedId::wrap(0, 1);
    }
}
