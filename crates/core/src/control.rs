//! The per-device control plane (Fig. 7, §6).
//!
//! The control plane complements the hardware-constrained data plane: it
//! consumes the notification stream, detects when snapshots **complete**
//! (all considered upstream channels have advanced), detects when hardware
//! limits made an epoch **inconsistent** (the unit's ID skipped ahead while
//! some channel lagged more than one epoch), reads finished values out of
//! the register file, and recovers from dropped notifications both
//! conservatively (skipped epochs are marked inconsistent) and proactively
//! (register polling).
//!
//! All arithmetic here is on unbounded [`Epoch`]s: the control plane
//! unwraps the data plane's rolled-over IDs against its own monotone view,
//! which is sound under the no-lapping assumption (§5.3, see [`crate::id`]).
//!
//! ## Ordering inside one notification
//!
//! A single packet can change both a Last Seen entry and the snapshot ID.
//! The data plane updates Last Seen with the packet, so the control plane
//! must apply the Last Seen update *before* computing the inconsistency
//! range for the ID change; doing it in the other order falsely marks
//! epochs that were already complete. (With the Fig. 7 pseudocode's
//! exclusive upper bound this is exactly `done+1 ..= new_sid-1`.)

use crate::id::{Epoch, WrappedId};
use crate::types::{ChannelId, Notification, UnitId, CPU_CHANNEL};
use crate::unit::SnapSlot;
use std::collections::{BTreeMap, BTreeSet};

/// Abstract register-file access from control plane to its data plane
/// (PCIe reads in the real system). Implemented by the simulator's switch
/// and by the threaded emulation.
pub trait Registers {
    /// Read the unit's current snapshot ID register.
    fn read_sid(&mut self, unit: UnitId) -> WrappedId;
    /// Read one Last Seen register.
    fn read_last_seen(&mut self, unit: UnitId, channel: ChannelId) -> WrappedId;
    /// Read and clear one snapshot value slot (`None` if uninitialized).
    fn take_slot(&mut self, unit: UnitId, id: WrappedId) -> Option<SnapSlot>;
}

/// The value reported for `(unit, epoch)` once the epoch is finished there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportValue {
    /// A directly read, consistent value.
    Value {
        /// The snapshotted local state.
        local: u64,
        /// Accumulated channel state (0 when channel state is disabled).
        channel: u64,
    },
    /// No-channel-state mode: the unit's ID skipped this epoch, so the value
    /// was inferred from the next written slot (Fig. 7 ll. 19–21).
    Inferred {
        /// The inferred local state.
        local: u64,
    },
    /// Hardware limits (or conservative handling of dropped notifications)
    /// made this epoch's value unreliable at this unit.
    Inconsistent,
    /// The slot could not be read at all (lost to drops); conservatively
    /// unusable.
    Missing,
}

impl ReportValue {
    /// Stable trace label for this outcome (`cp.report` events).
    pub fn label(&self) -> &'static str {
        match self {
            ReportValue::Value { .. } => "value",
            ReportValue::Inferred { .. } => "inferred",
            ReportValue::Inconsistent => "inconsistent",
            ReportValue::Missing => "missing",
        }
    }
}

/// A finished `(unit, epoch)` measurement, shipped to the snapshot observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// The reporting unit.
    pub unit: UnitId,
    /// The finished epoch.
    pub epoch: Epoch,
    /// The measurement (or why it is unusable).
    pub value: ReportValue,
}

/// Per-unit tracking state (the `ctrl*` arrays of Fig. 7).
#[derive(Debug, Clone)]
struct UnitTracking {
    /// `lastRead[unit]`: newest epoch whose value has been read/reported.
    last_read: Epoch,
    /// `ctrlSnapID[unit]`: controller's view of the unit's current epoch.
    ctrl_sid: Epoch,
    /// `ctrlLastSeen[unit][*]`: controller's view of each channel.
    ctrl_last_seen: Vec<Epoch>,
    /// Channels counted toward completion. Structurally silent channels can
    /// be removed by the operator (§6 "Ensuring liveness").
    considered: Vec<bool>,
    /// Epochs marked inconsistent and not yet reported.
    inconsistent: BTreeSet<Epoch>,
}

impl UnitTracking {
    fn min_considered_ls(&self) -> Epoch {
        self.ctrl_last_seen
            .iter()
            .zip(&self.considered)
            .filter(|(_, c)| **c)
            .map(|(e, _)| *e)
            .min()
            // With no considered channels, completion degenerates to the
            // unit's own progress (same as the no-channel-state mode).
            .unwrap_or(self.ctrl_sid)
    }
}

/// Statistics counters for introspection and the scalability experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Notifications processed (after dedup).
    pub notifications: u64,
    /// Duplicate/no-op notifications dropped.
    pub duplicates: u64,
    /// Register slots read.
    pub slot_reads: u64,
    /// Epochs marked inconsistent.
    pub inconsistent_epochs: u64,
}

/// A device's snapshot control plane.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    device: u16,
    modulus: u16,
    channel_state: bool,
    units: BTreeMap<UnitId, UnitTracking>,
    stats: ControlPlaneStats,
}

impl ControlPlane {
    /// Create the control plane for `device`.
    ///
    /// `channel_state` must match the data-plane build (the two variants
    /// process notifications differently, Fig. 7).
    pub fn new(device: u16, modulus: u16, channel_state: bool) -> ControlPlane {
        ControlPlane {
            device,
            modulus,
            channel_state,
            units: BTreeMap::new(),
            stats: ControlPlaneStats::default(),
        }
    }

    /// The device this control plane serves.
    pub fn device(&self) -> u16 {
        self.device
    }

    /// Whether this control plane runs the channel-state variant.
    pub fn channel_state(&self) -> bool {
        self.channel_state
    }

    /// Processing statistics.
    pub fn stats(&self) -> ControlPlaneStats {
        self.stats
    }

    /// Register a local processing unit with `num_channels` upstream
    /// channels; `considered[i] == false` excludes channel `i` from
    /// completion (host-facing or structurally unused channels, §6).
    pub fn register_unit(&mut self, unit: UnitId, num_channels: u16, considered: Vec<bool>) {
        assert_eq!(considered.len(), usize::from(num_channels));
        self.units.insert(
            unit,
            UnitTracking {
                last_read: 0,
                ctrl_sid: 0,
                ctrl_last_seen: vec![0; usize::from(num_channels)],
                considered,
                inconsistent: BTreeSet::new(),
            },
        );
    }

    /// All registered units.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.units.keys().copied()
    }

    /// The controller's view of a unit's current epoch.
    pub fn unit_epoch(&self, unit: UnitId) -> Option<Epoch> {
        self.units.get(&unit).map(|t| t.ctrl_sid)
    }

    /// Newest epoch fully read/reported for `unit`.
    pub fn unit_last_read(&self, unit: UnitId) -> Option<Epoch> {
        self.units.get(&unit).map(|t| t.last_read)
    }

    /// Whether every local unit has finished (read out) `epoch`.
    pub fn device_complete(&self, epoch: Epoch) -> bool {
        self.units.values().all(|t| t.last_read >= epoch)
    }

    /// Units that have not yet finished `epoch` (re-initiation targets, §6).
    pub fn unfinished_units(&self, epoch: Epoch) -> Vec<UnitId> {
        self.units
            .iter()
            .filter(|(_, t)| t.last_read < epoch)
            .map(|(u, _)| *u)
            .collect()
    }

    /// Channels that stall completion of `epoch` at some unit: considered
    /// channels whose controller-view Last Seen is still below `epoch`.
    /// The fabric uses this to drive broadcast injection (§6).
    pub fn stalled_channels(&self, epoch: Epoch) -> Vec<(UnitId, ChannelId)> {
        let mut out = Vec::new();
        for (unit, t) in &self.units {
            if t.last_read >= epoch {
                continue;
            }
            for (i, (&ls, &cons)) in t.ctrl_last_seen.iter().zip(&t.considered).enumerate() {
                if cons && ls < epoch {
                    out.push((*unit, ChannelId(i as u16)));
                }
            }
        }
        out
    }

    /// Operator reconfiguration: stop counting `channel` toward completion
    /// at `unit` (§6, lack of traffic due to network structure). May
    /// immediately finish epochs; returns the resulting reports.
    pub fn remove_neighbor_consideration(
        &mut self,
        unit: UnitId,
        channel: ChannelId,
        regs: &mut dyn Registers,
    ) -> Vec<Report> {
        let Some(t) = self.units.get_mut(&unit) else {
            return Vec::new();
        };
        let idx = usize::from(channel.0);
        if idx < t.considered.len() {
            t.considered[idx] = false;
        }
        self.drain_completions(unit, regs, &mut obs::NoopSink, 0)
    }

    /// Handle one data-plane notification (Fig. 7). Returns the reports for
    /// every epoch that this notification finished.
    pub fn on_notification(&mut self, n: &Notification, regs: &mut dyn Registers) -> Vec<Report> {
        self.on_notification_traced(n, regs, &mut obs::NoopSink, 0)
    }

    /// [`ControlPlane::on_notification`] with trace emission: `cp.report`
    /// for every epoch the notification finishes and `cp.inconsistent` when
    /// hardware limits condemn an epoch. `on_notification` delegates here
    /// with [`obs::NoopSink`], which folds the instrumentation away.
    pub fn on_notification_traced<S: obs::Sink>(
        &mut self,
        n: &Notification,
        regs: &mut dyn Registers,
        sink: &mut S,
        t_ns: u64,
    ) -> Vec<Report> {
        // Unknown units (e.g., pre-registration traffic) fall out of the
        // handlers' own lookups — both are total over any notification.
        if self.channel_state {
            self.on_notify_cs(n, regs, sink, t_ns)
        } else {
            self.on_notify_no_cs(n, regs, sink, t_ns)
        }
    }

    /// Fig. 7 `OnNotifyCS`.
    fn on_notify_cs<S: obs::Sink>(
        &mut self,
        n: &Notification,
        regs: &mut dyn Registers,
        sink: &mut S,
        t_ns: u64,
    ) -> Vec<Report> {
        let Some(t) = self.units.get_mut(&n.unit) else {
            return Vec::new(); // unknown unit
        };
        let mut changed = false;

        // 1. Last Seen update *first* (see module docs on ordering). A
        //    channel index beyond what was provisioned at registration is
        //    ignored like an unknown unit — total path, no panic.
        if let Some(ch) = n.channel {
            if ch != CPU_CHANNEL {
                if let Some(slot) = t.ctrl_last_seen.get_mut(usize::from(ch.0)) {
                    let new_ls = n.new_last_seen.unwrap_from(*slot);
                    if new_ls != *slot {
                        *slot = new_ls;
                        changed = true;
                    }
                }
            }
        }

        // 2. Snapshot ID change: mark the epochs that can no longer be
        //    correct (Fig. 7 ll. 2–7). Two failure classes meet here:
        //    epochs whose channel state is truncated because a considered
        //    channel lags (everything above `min(lastSeen)`), and epochs
        //    whose local save was skipped by a >1 ID jump (everything above
        //    the unit's *previous* ID). The boundary is the min of the two —
        //    taking only `min(lastSeen)` would miss skipped saves whenever
        //    the very notification that reports the jump also fast-forwards
        //    the lagging channel (single-channel units always do).
        let new_sid = n.new_sid.unwrap_from(t.ctrl_sid);
        if new_sid != t.ctrl_sid {
            let old_sid = n.old_sid.unwrap_from(t.ctrl_sid);
            let done = t.min_considered_ls().min(old_sid);
            for epoch in (done + 1)..new_sid {
                if epoch > t.last_read && t.inconsistent.insert(epoch) {
                    self.stats.inconsistent_epochs += 1;
                    obs::event!(
                        sink,
                        t_ns,
                        "cp.inconsistent",
                        dev = self.device,
                        epoch = epoch,
                    );
                }
            }
            t.ctrl_sid = new_sid;
            changed = true;
        }

        if !changed {
            self.stats.duplicates += 1;
            return Vec::new();
        }
        self.stats.notifications += 1;
        self.drain_completions(n.unit, regs, sink, t_ns)
    }

    /// Read out every epoch of `unit` that is now complete (channel-state
    /// mode; Fig. 7 ll. 11–15).
    fn drain_completions<S: obs::Sink>(
        &mut self,
        unit: UnitId,
        regs: &mut dyn Registers,
        sink: &mut S,
        t_ns: u64,
    ) -> Vec<Report> {
        let modulus = self.modulus;
        let Some(t) = self.units.get_mut(&unit) else {
            return Vec::new(); // unknown unit
        };
        let to_read = t.min_considered_ls().min(t.ctrl_sid);
        let mut reports = Vec::new();
        for epoch in (t.last_read + 1)..=to_read {
            let wrapped = WrappedId::wrap(epoch, modulus);
            let value = if t.inconsistent.remove(&epoch) {
                // Clear the slot so a later epoch mapping here never reads
                // stale data after a dropped save-notification.
                let _ = regs.take_slot(unit, wrapped);
                ReportValue::Inconsistent
            } else {
                self.stats.slot_reads += 1;
                match regs.take_slot(unit, wrapped) {
                    Some(SnapSlot { value, channel, .. }) => ReportValue::Value {
                        local: value,
                        channel,
                    },
                    None => ReportValue::Missing,
                }
            };
            obs::event!(
                sink,
                t_ns,
                "cp.report",
                dev = unit.device,
                port = unit.port,
                epoch = epoch,
                outcome = value.label(),
            );
            reports.push(Report { unit, epoch, value });
        }
        if to_read > t.last_read {
            t.last_read = to_read;
        }
        reports
    }

    /// Fig. 7 `OnNotifyNoCS`: completion is immediate on ID advance; skipped
    /// epochs inherit the value of the next written slot (ll. 16–22).
    fn on_notify_no_cs<S: obs::Sink>(
        &mut self,
        n: &Notification,
        regs: &mut dyn Registers,
        sink: &mut S,
        t_ns: u64,
    ) -> Vec<Report> {
        let modulus = self.modulus;
        let Some(t) = self.units.get_mut(&n.unit) else {
            return Vec::new(); // unknown unit
        };
        let new_sid = n.new_sid.unwrap_from(t.ctrl_sid);
        if new_sid <= t.last_read {
            self.stats.duplicates += 1;
            return Vec::new();
        }
        self.stats.notifications += 1;
        t.ctrl_sid = t.ctrl_sid.max(new_sid);

        let mut reports = Vec::new();
        let mut valid_value: Option<u64> = None;
        // Descend from the newest epoch so skipped slots inherit the value
        // saved by the jump that skipped them (the state was unchanged in
        // between — that is precisely why the data plane could skip).
        for epoch in ((t.last_read + 1)..=new_sid).rev() {
            self.stats.slot_reads += 1;
            let value = match regs.take_slot(n.unit, WrappedId::wrap(epoch, modulus)) {
                Some(slot) => {
                    valid_value = Some(slot.value);
                    ReportValue::Value {
                        local: slot.value,
                        channel: 0,
                    }
                }
                None => match valid_value {
                    Some(v) => ReportValue::Inferred { local: v },
                    None => ReportValue::Missing,
                },
            };
            obs::event!(
                sink,
                t_ns,
                "cp.report",
                dev = n.unit.device,
                port = n.unit.port,
                epoch = epoch,
                outcome = value.label(),
            );
            reports.push(Report {
                unit: n.unit,
                epoch,
                value,
            });
        }
        t.last_read = new_sid;
        reports.reverse(); // report in ascending epoch order
        reports
    }

    /// Proactive register polling (§6): re-synchronize the controller view
    /// of `unit` straight from the registers, recovering from dropped
    /// notifications. Returns reports for any epochs this completes.
    pub fn poll_unit(&mut self, unit: UnitId, regs: &mut dyn Registers) -> Vec<Report> {
        let Some(t) = self.units.get(&unit) else {
            return Vec::new();
        };
        let num_channels = t.ctrl_last_seen.len();
        // A poll cannot know the unit's true previous ID (that history is
        // exactly what the dropped notifications carried), so it passes the
        // controller's stale view as `old_sid` — conservatively marking any
        // missed epochs inconsistent rather than risking stale reads.
        let stale_sid = WrappedId::wrap(t.ctrl_sid, self.modulus);
        let sid = regs.read_sid(unit);
        let mut reports = Vec::new();
        if self.channel_state {
            for i in 0..num_channels {
                let ch = ChannelId(i as u16);
                let ls = regs.read_last_seen(unit, ch);
                let synth = Notification {
                    unit,
                    old_sid: stale_sid,
                    new_sid: sid,
                    channel: Some(ch),
                    old_last_seen: ls,
                    new_last_seen: ls,
                };
                reports.extend(self.on_notify_cs(&synth, regs, &mut obs::NoopSink, 0));
            }
        }
        let synth = Notification {
            unit,
            old_sid: stale_sid,
            new_sid: sid,
            channel: None,
            old_last_seen: sid,
            new_last_seen: sid,
        };
        reports.extend(if self.channel_state {
            self.on_notify_cs(&synth, regs, &mut obs::NoopSink, 0)
        } else {
            self.on_notify_no_cs(&synth, regs, &mut obs::NoopSink, 0)
        });
        reports
    }

    /// Crash-recovery resynchronization: fast-forward every unit's tracking
    /// state to `epoch`, the observer's newest issued snapshot.
    ///
    /// A restarted control plane has lost its `ctrl*` arrays and — because
    /// snapshot IDs are wrapped (§5.2) — cannot safely unwrap register
    /// contents against a zeroed reference. The recovery protocol instead
    /// asks the observer for the newest issued epoch and declares everything
    /// up to it read: epochs in flight during the outage are abandoned
    /// locally (the observer's timeout excludes this device from them) and
    /// reporting resumes cleanly from `epoch + 1`.
    pub fn resync_to(&mut self, epoch: Epoch) {
        for t in self.units.values_mut() {
            t.last_read = t.last_read.max(epoch);
            t.ctrl_sid = t.ctrl_sid.max(epoch);
            for ls in &mut t.ctrl_last_seen {
                *ls = (*ls).max(epoch);
            }
            t.inconsistent.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{DataPlaneUnit, UnitConfig};

    /// A register file backed by real `DataPlaneUnit`s, as the fabric will
    /// provide.
    struct TestRegs {
        units: BTreeMap<UnitId, DataPlaneUnit>,
    }

    impl Registers for TestRegs {
        fn read_sid(&mut self, unit: UnitId) -> WrappedId {
            self.units[&unit].sid()
        }
        fn read_last_seen(&mut self, unit: UnitId, channel: ChannelId) -> WrappedId {
            self.units[&unit].last_seen(channel)
        }
        fn take_slot(&mut self, unit: UnitId, id: WrappedId) -> Option<SnapSlot> {
            self.units.get_mut(&unit)?.take_slot(id)
        }
    }

    const M: u16 = 8;

    fn setup(channel_state: bool, num_channels: u16) -> (ControlPlane, TestRegs, UnitId) {
        let uid = UnitId::ingress(0, 0);
        let mut cp = ControlPlane::new(0, M, channel_state);
        cp.register_unit(uid, num_channels, vec![true; usize::from(num_channels)]);
        let mut units = BTreeMap::new();
        units.insert(
            uid,
            DataPlaneUnit::new(UnitConfig {
                unit: uid,
                modulus: M,
                channel_state,
                num_channels,
            }),
        );
        (cp, TestRegs { units }, uid)
    }

    /// Drive a packet through the DP unit and feed any notification to the CP.
    fn drive(
        cp: &mut ControlPlane,
        regs: &mut TestRegs,
        uid: UnitId,
        ch: u16,
        epoch: Epoch,
        state: u64,
        contrib: u64,
    ) -> Vec<Report> {
        let w = WrappedId::wrap(epoch, M);
        let Some(u) = regs.units.get_mut(&uid) else {
            panic!("drive: unit {uid:?} not in the test register file");
        };
        let out = u.on_packet(ChannelId(ch), w, state, contrib, false);
        match out.notification {
            Some(n) => cp.on_notification(&n, regs),
            None => Vec::new(),
        }
    }

    #[test]
    fn steady_advance_with_channel_state_completes_when_all_channels_catch_up() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        // Channel 0 advances to epoch 1; channel 1 lags — no completion yet.
        let r = drive(&mut cp, &mut regs, uid, 0, 1, 42, 1);
        assert!(r.is_empty());
        // Channel 1 sends an in-flight epoch-0 packet (contributes 5): no
        // last-seen change (0 -> 0), no notification, no completion.
        let r = drive(&mut cp, &mut regs, uid, 1, 0, 43, 5);
        assert!(r.is_empty());
        // Channel 1 catches up to epoch 1: epoch 1 completes.
        let r = drive(&mut cp, &mut regs, uid, 1, 1, 44, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].epoch, 1);
        assert_eq!(
            r[0].value,
            ReportValue::Value {
                local: 42,
                channel: 5
            }
        );
        assert!(cp.device_complete(1));
        assert!(!cp.device_complete(2));
    }

    #[test]
    fn lagging_channel_beyond_one_epoch_marks_inconsistent() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        // Channel 0 advances through epochs 1 and 2 while channel 1 is
        // silent: epoch 1's channel state can no longer accumulate.
        drive(&mut cp, &mut regs, uid, 0, 1, 10, 1);
        drive(&mut cp, &mut regs, uid, 0, 2, 20, 1);
        // Channel 1 catches straight up to 2: epochs 1 and 2 both finish;
        // 1 is inconsistent, 2 is good.
        let r = drive(&mut cp, &mut regs, uid, 1, 2, 21, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].epoch, 1);
        assert_eq!(r[0].value, ReportValue::Inconsistent);
        assert_eq!(r[1].epoch, 2);
        assert_eq!(
            r[1].value,
            ReportValue::Value {
                local: 20,
                channel: 0
            }
        );
        assert_eq!(cp.stats().inconsistent_epochs, 1);
    }

    #[test]
    fn steady_lockstep_never_marks_inconsistent() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        let mut reports = Vec::new();
        for epoch in 1..=20u64 {
            reports.extend(drive(&mut cp, &mut regs, uid, 0, epoch, epoch * 10, 1));
            reports.extend(drive(&mut cp, &mut regs, uid, 1, epoch, epoch * 10 + 1, 1));
        }
        assert_eq!(reports.len(), 20, "one report per epoch");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, i as Epoch + 1);
            assert!(
                matches!(r.value, ReportValue::Value { .. }),
                "epoch {} got {:?}",
                r.epoch,
                r.value
            );
        }
        assert_eq!(cp.stats().inconsistent_epochs, 0);
    }

    #[test]
    fn rollover_is_transparent_to_the_control_plane() {
        let (mut cp, mut regs, uid) = setup(true, 1);
        // March through 3 full wraps of the ID space.
        for epoch in 1..=(3 * u64::from(M)) {
            let r = drive(&mut cp, &mut regs, uid, 0, epoch, epoch, 1);
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].epoch, epoch);
            assert_eq!(
                r[0].value,
                ReportValue::Value {
                    local: epoch,
                    channel: 0
                }
            );
        }
    }

    #[test]
    fn no_cs_mode_completes_immediately_and_infers_skipped_epochs() {
        let (mut cp, mut regs, uid) = setup(false, 1);
        let r = drive(&mut cp, &mut regs, uid, 0, 1, 10, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r[0].value,
            ReportValue::Value {
                local: 10,
                channel: 0
            }
        );
        // Jump 1 -> 4: epochs 2 and 3 skipped; their value is inferred from
        // epoch 4's slot (the state saved at the jump).
        let r = drive(&mut cp, &mut regs, uid, 0, 4, 40, 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].epoch, 2);
        assert_eq!(r[0].value, ReportValue::Inferred { local: 40 });
        assert_eq!(r[1].epoch, 3);
        assert_eq!(r[1].value, ReportValue::Inferred { local: 40 });
        assert_eq!(r[2].epoch, 4);
        assert_eq!(
            r[2].value,
            ReportValue::Value {
                local: 40,
                channel: 0
            }
        );
    }

    #[test]
    fn duplicate_notifications_are_noops() {
        let (mut cp, mut regs, uid) = setup(true, 1);
        let w1 = WrappedId::wrap(1, M);
        let Some(u) = regs.units.get_mut(&uid) else {
            panic!("unit {uid:?} not in the test register file");
        };
        let out = u.on_packet(ChannelId(0), w1, 5, 1, false);
        let Some(n) = out.notification else {
            panic!("first packet past the epoch boundary must notify");
        };
        let r1 = cp.on_notification(&n, &mut regs);
        assert_eq!(r1.len(), 1);
        // Replay the same notification: dropped as duplicate, no reports.
        let r2 = cp.on_notification(&n, &mut regs);
        assert!(r2.is_empty());
        assert_eq!(cp.stats().duplicates, 1);
    }

    #[test]
    fn dropped_notification_recovers_via_polling() {
        let (mut cp, mut regs, uid) = setup(false, 1);
        // The DP advances to epoch 2 but the notification is "dropped"
        // (never delivered to the CP).
        let w2 = WrappedId::wrap(2, M);
        let Some(u) = regs.units.get_mut(&uid) else {
            panic!("unit {uid:?} not in the test register file");
        };
        u.on_packet(ChannelId(0), w2, 22, 1, false);
        assert!(cp.device_complete(0) && !cp.device_complete(2));
        // Proactive poll recovers epochs 1 (inferred) and 2 (read).
        let r = cp.poll_unit(uid, &mut regs);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].epoch, 1);
        assert_eq!(r[0].value, ReportValue::Inferred { local: 22 });
        assert_eq!(r[1].epoch, 2);
        assert_eq!(
            r[1].value,
            ReportValue::Value {
                local: 22,
                channel: 0
            }
        );
        assert!(cp.device_complete(2));
    }

    #[test]
    fn polling_recovers_channel_state_mode_too() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        // Both channels advance to epoch 1, but all notifications dropped.
        let w1 = WrappedId::wrap(1, M);
        let Some(u) = regs.units.get_mut(&uid) else {
            panic!("unit {uid:?} not in the test register file");
        };
        u.on_packet(ChannelId(0), w1, 7, 1, false);
        u.on_packet(ChannelId(1), w1, 8, 1, false);
        let r = cp.poll_unit(uid, &mut regs);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].epoch, 1);
        assert_eq!(
            r[0].value,
            ReportValue::Value {
                local: 7,
                channel: 0
            }
        );
    }

    #[test]
    fn unconsidered_channels_do_not_gate_completion() {
        let uid = UnitId::ingress(0, 0);
        let mut cp = ControlPlane::new(0, M, true);
        // Channel 1 is host-facing: excluded from consideration up front.
        cp.register_unit(uid, 2, vec![true, false]);
        let mut units = BTreeMap::new();
        units.insert(
            uid,
            DataPlaneUnit::new(UnitConfig {
                unit: uid,
                modulus: M,
                channel_state: true,
                num_channels: 2,
            }),
        );
        let mut regs = TestRegs { units };
        let r = drive(&mut cp, &mut regs, uid, 0, 1, 11, 1);
        assert_eq!(r.len(), 1, "completes without channel 1 ever advancing");
        assert_eq!(r[0].epoch, 1);
    }

    #[test]
    fn removing_a_stalled_neighbor_releases_epochs() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        drive(&mut cp, &mut regs, uid, 0, 1, 11, 1);
        assert!(!cp.device_complete(1));
        assert_eq!(cp.stalled_channels(1), vec![(uid, ChannelId(1))]);
        let r = cp.remove_neighbor_consideration(uid, ChannelId(1), &mut regs);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].epoch, 1);
        assert!(cp.device_complete(1));
        assert!(cp.stalled_channels(1).is_empty());
    }

    #[test]
    fn unfinished_units_lists_laggards() {
        let (mut cp, mut regs, uid) = setup(true, 1);
        let other = UnitId::egress(0, 1);
        cp.register_unit(other, 1, vec![true]);
        regs.units.insert(
            other,
            DataPlaneUnit::new(UnitConfig {
                unit: other,
                modulus: M,
                channel_state: true,
                num_channels: 1,
            }),
        );
        drive(&mut cp, &mut regs, uid, 0, 1, 1, 1);
        assert_eq!(cp.unfinished_units(1), vec![other]);
        assert!(!cp.device_complete(1));
    }

    #[test]
    fn unknown_unit_notifications_are_ignored() {
        let (mut cp, mut regs, _) = setup(true, 1);
        let ghost = UnitId::egress(9, 9);
        let n = Notification {
            unit: ghost,
            old_sid: WrappedId::wrap(0, M),
            new_sid: WrappedId::wrap(1, M),
            channel: Some(ChannelId(0)),
            old_last_seen: WrappedId::wrap(0, M),
            new_last_seen: WrappedId::wrap(1, M),
        };
        assert!(cp.on_notification(&n, &mut regs).is_empty());
    }

    #[test]
    fn inconsistent_epoch_slot_is_cleared_for_reuse() {
        let (mut cp, mut regs, uid) = setup(true, 2);
        drive(&mut cp, &mut regs, uid, 0, 1, 10, 1);
        drive(&mut cp, &mut regs, uid, 0, 2, 20, 1);
        let r = drive(&mut cp, &mut regs, uid, 1, 2, 21, 1);
        assert_eq!(r[0].value, ReportValue::Inconsistent);
        // Epoch 1's slot must have been cleared even though it was skipped.
        assert!(!regs.units[&uid].peek_slot(WrappedId::wrap(1, M)).written);
    }
}
