//! Omniscient consistency checking for snapshots.
//!
//! The simulator (unlike real hardware) can observe every packet with
//! global knowledge, which lets the test suite verify the paper's central
//! guarantee — **causal consistency** — exactly, via flow conservation of a
//! counting metric:
//!
//! For every unit `u` whose snapshotted register counts *receive events*
//! (weighted by an arbitrary per-packet contribution) and every epoch `e`:
//!
//! ```text
//!   reported_local(u, e)  =  Σ packets delivered to u whose processing
//!                             left u's epoch < e   (pre-cut receives)
//!   reported_channel(u,e) =  Σ packets delivered to u tagged with a send
//!                             epoch < e but processed at local epoch ≥ e
//!                             (in-flight for e)
//! ```
//!
//! The right-hand sides are exactly "effects of sends that happened before
//! the cut" — if a snapshot matched them, no effect was recorded without
//! its cause. The checker accumulates the RHS from a feed of per-delivery
//! records and then audits reported snapshots (all epochs of the ideal
//! protocol; epochs reported `Value{..}` by the hardware-constrained one).

use crate::id::Epoch;
use crate::types::{ChannelId, UnitId};
use std::collections::BTreeMap;

/// One packet delivery, as observed by the omniscient test harness.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// The receiving unit.
    pub unit: UnitId,
    /// The epoch tagged on the packet (the sender's epoch at send time).
    pub tag: Epoch,
    /// The receiving unit's epoch *after* processing the packet.
    pub local_after: Epoch,
    /// The packet's metric contribution (1 for packet counts, bytes for
    /// byte counts, …).
    pub contrib: u64,
}

/// One delivery as seen by a substrate's instrumentation tap, with enough
/// detail to *replay* the run through [`crate::ideal::IdealUnit`].
///
/// Where [`Delivery`] is a post-hoc conservation record (it stores the
/// receiver's epoch after processing), `DeliveryEvent` captures the inputs
/// the receiving unit was given — unwrapped tag epoch, pre-update metric
/// value, contribution, initiation flag — so an oracle can feed the exact
/// same sequence to the idealized protocol and diff the resulting
/// snapshots against what the substrate reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryEvent {
    /// The receiving unit.
    pub unit: UnitId,
    /// The channel the packet arrived on (`CPU_CHANNEL` for initiations).
    pub channel: ChannelId,
    /// The *unwrapped* epoch tagged on the packet.
    pub tag: Epoch,
    /// The receiver's metric value *before* this packet's update.
    pub local_state: u64,
    /// The packet's metric contribution.
    pub contrib: u64,
    /// Whether this was a snapshot initiation rather than a data packet.
    pub init: bool,
}

/// Expected values for one `(unit, epoch)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Expected {
    /// Pre-cut receive total (what the local register should have held).
    pub local: u64,
    /// In-flight total (what the channel state should hold).
    pub channel: u64,
}

/// A mismatch found by the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The offending unit.
    pub unit: UnitId,
    /// The offending epoch.
    pub epoch: Epoch,
    /// What the omniscient log implies.
    pub expected: Expected,
    /// What the snapshot reported.
    pub reported: Expected,
}

/// Conservation/causality checker. Feed it every delivery, then audit.
#[derive(Debug, Default, Clone)]
pub struct ConservationChecker {
    /// Per unit: deliveries as (tag, local_after, contrib).
    log: BTreeMap<UnitId, Vec<(Epoch, Epoch, u64)>>,
}

impl ConservationChecker {
    /// Create an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivery.
    pub fn record(&mut self, d: Delivery) {
        debug_assert!(
            d.tag <= d.local_after,
            "a receive cannot observe an epoch newer than the local epoch \
             after processing (tag={}, after={})",
            d.tag,
            d.local_after
        );
        self.log
            .entry(d.unit)
            .or_default()
            .push((d.tag, d.local_after, d.contrib));
    }

    /// Compute the expected snapshot values for `(unit, epoch)`.
    pub fn expected(&self, unit: UnitId, epoch: Epoch) -> Expected {
        let mut exp = Expected::default();
        if let Some(entries) = self.log.get(&unit) {
            for &(tag, after, contrib) in entries {
                if after < epoch {
                    exp.local += contrib;
                } else if tag < epoch {
                    exp.channel += contrib;
                }
            }
        }
        exp
    }

    /// Audit a batch of reported values; returns all violations.
    ///
    /// `reports` yields `(unit, epoch, local, channel)`. Pass `None` as
    /// `channel` for no-channel-state snapshots — then only the local value
    /// is audited.
    pub fn audit<'a>(
        &self,
        reports: impl IntoIterator<Item = (UnitId, Epoch, u64, Option<u64>)> + 'a,
    ) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (unit, epoch, local, channel) in reports {
            let expected = self.expected(unit, epoch);
            let ok = local == expected.local
                && match channel {
                    Some(c) => c == expected.channel,
                    None => true,
                };
            if !ok {
                violations.push(Violation {
                    unit,
                    epoch,
                    expected,
                    reported: Expected {
                        local,
                        channel: channel.unwrap_or(0),
                    },
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> UnitId {
        UnitId::ingress(0, 0)
    }

    #[test]
    fn pre_cut_receives_count_toward_local() {
        let mut c = ConservationChecker::new();
        // Two packets processed while still in epoch 0, then the advance.
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 0,
            contrib: 3,
        });
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 0,
            contrib: 4,
        });
        // The packet that carries the new epoch: post-cut for epoch 1.
        c.record(Delivery {
            unit: u(),
            tag: 1,
            local_after: 1,
            contrib: 5,
        });
        assert_eq!(
            c.expected(u(), 1),
            Expected {
                local: 7,
                channel: 0
            }
        );
    }

    #[test]
    fn in_flight_counts_toward_channel() {
        let mut c = ConservationChecker::new();
        c.record(Delivery {
            unit: u(),
            tag: 1,
            local_after: 1,
            contrib: 1,
        });
        // Tagged pre-1 but processed at epoch 1: in flight for epoch 1.
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 1,
            contrib: 9,
        });
        assert_eq!(
            c.expected(u(), 1),
            Expected {
                local: 0,
                channel: 9
            }
        );
        // For epoch 2, both deliveries are pre-cut.
        assert_eq!(
            c.expected(u(), 2),
            Expected {
                local: 10,
                channel: 0
            }
        );
    }

    #[test]
    fn audit_flags_mismatches_only() {
        let mut c = ConservationChecker::new();
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 0,
            contrib: 2,
        });
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 1,
            contrib: 3,
        });
        let ok = c.audit([(u(), 1, 2, Some(3))]);
        assert!(ok.is_empty());
        let bad = c.audit([(u(), 1, 2, Some(0))]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].expected.channel, 3);
        assert_eq!(bad[0].reported.channel, 0);
    }

    #[test]
    fn no_cs_audit_ignores_channel() {
        let mut c = ConservationChecker::new();
        c.record(Delivery {
            unit: u(),
            tag: 0,
            local_after: 1,
            contrib: 3,
        });
        // local expected 0; channel expected 3 but not audited.
        assert!(c.audit([(u(), 1, 0, None)]).is_empty());
        assert_eq!(c.audit([(u(), 1, 1, None)]).len(), 1);
    }

    #[test]
    fn unknown_unit_expects_zero() {
        let c = ConservationChecker::new();
        assert_eq!(c.expected(u(), 5), Expected::default());
    }
}
