//! The idealized network snapshot protocol of Fig. 3.
//!
//! This is the algorithm as specified *before* hardware constraints are
//! applied (§4): snapshot IDs are unbounded, a jump of `k` epochs saves the
//! current state into **all** `k` intermediate slots, and an in-flight
//! packet credits the channel state of **every** epoch in
//! `(pkt.sid, sid]`. No epoch is ever inconsistent.
//!
//! It serves three purposes here:
//!
//! 1. an executable specification to property-test the hardware-constrained
//!    [`crate::unit::DataPlaneUnit`] against (consistent epochs must agree),
//! 2. the reference for the conservation/causality checker, and
//! 3. the "no hardware limits" arm of the ablation benchmarks.

use crate::id::Epoch;
use crate::types::{ChannelId, PacketVerdict, UnitId, CPU_CHANNEL};
use std::collections::BTreeMap;

/// A saved snapshot at an ideal unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealSnap {
    /// Saved local state.
    pub value: u64,
    /// Accumulated channel state.
    pub channel: u64,
}

/// Outcome of processing one packet at an [`IdealUnit`].
#[derive(Debug, Clone)]
pub struct IdealOutcome {
    /// Relation of the packet's epoch to the local epoch.
    pub verdict: PacketVerdict,
    /// Epoch to stamp on the forwarded packet.
    pub out_epoch: Epoch,
    /// Epochs that became complete at this unit due to this packet
    /// (channel-state mode: all epochs up to `min(lastSeen)`; without
    /// channel state: all epochs up to the new local ID).
    pub newly_complete: Vec<Epoch>,
}

/// A processing unit running the idealized Fig. 3 algorithm.
#[derive(Debug, Clone)]
pub struct IdealUnit {
    unit: UnitId,
    channel_state: bool,
    sid: Epoch,
    snaps: BTreeMap<Epoch, IdealSnap>,
    last_seen: Vec<Epoch>,
    cpu_last_seen: Epoch,
    complete_up_to: Epoch,
}

impl IdealUnit {
    /// Create an ideal unit with `num_channels` upstream channels.
    pub fn new(unit: UnitId, num_channels: u16, channel_state: bool) -> IdealUnit {
        IdealUnit {
            unit,
            channel_state,
            sid: 0,
            snaps: BTreeMap::new(),
            last_seen: vec![0; usize::from(num_channels)],
            cpu_last_seen: 0,
            complete_up_to: 0,
        }
    }

    /// The unit's identity.
    pub fn id(&self) -> UnitId {
        self.unit
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.sid
    }

    /// Latest epoch complete at this unit.
    pub fn complete_up_to(&self) -> Epoch {
        self.complete_up_to
    }

    fn last_seen_mut(&mut self, channel: ChannelId) -> &mut Epoch {
        if channel == CPU_CHANNEL {
            &mut self.cpu_last_seen
        } else {
            let Some(slot) = self.last_seen.get_mut(usize::from(channel.0)) else {
                panic!("channel {} outside this unit's channel space", channel.0)
            };
            slot
        }
    }

    /// Fig. 3 `onReceiveCS` / `onReceiveNoCS`, selected by construction.
    ///
    /// Arguments mirror [`crate::unit::DataPlaneUnit::on_packet`].
    pub fn on_packet(
        &mut self,
        channel: ChannelId,
        pkt_epoch: Epoch,
        local_state: u64,
        contrib: u64,
        is_initiation: bool,
    ) -> IdealOutcome {
        let verdict = if pkt_epoch > self.sid {
            // New snapshot: save state into every skipped epoch (l. 4–6).
            let adv = pkt_epoch - self.sid;
            for e in (self.sid + 1)..=pkt_epoch {
                self.snaps.insert(
                    e,
                    IdealSnap {
                        value: local_state,
                        channel: 0,
                    },
                );
            }
            self.sid = pkt_epoch;
            PacketVerdict::Advanced(u16::try_from(adv).unwrap_or(u16::MAX))
        } else if pkt_epoch < self.sid {
            // In-flight: credit every epoch in (pkt_epoch, sid] (l. 9–10).
            if self.channel_state && !is_initiation {
                for e in (pkt_epoch + 1)..=self.sid {
                    self.snaps.entry(e).or_default().channel += contrib;
                }
            }
            PacketVerdict::InFlight(u16::try_from(self.sid - pkt_epoch).unwrap_or(u16::MAX))
        } else {
            PacketVerdict::Current
        };

        // Last Seen update; CPU entry never gates completion (§6).
        *self.last_seen_mut(channel) = (*self.last_seen_mut(channel)).max(pkt_epoch);

        // Completion (l. 12 / l. 19).
        let new_complete = if self.channel_state {
            self.last_seen.iter().copied().min().unwrap_or(self.sid)
        } else {
            self.sid
        };
        let mut newly_complete = Vec::new();
        if new_complete > self.complete_up_to {
            newly_complete.extend((self.complete_up_to + 1)..=new_complete);
            self.complete_up_to = new_complete;
        }

        IdealOutcome {
            verdict,
            out_epoch: self.sid,
            newly_complete,
        }
    }

    /// Read the snapshot for `epoch` (available from the moment the local
    /// state was saved; channel state keeps accumulating until the epoch is
    /// complete).
    pub fn snapshot(&self, epoch: Epoch) -> Option<IdealSnap> {
        self.snaps.get(&epoch).copied()
    }

    /// Drop snapshots at or below `epoch` (storage reclamation after the
    /// observer has collected them).
    pub fn prune(&mut self, epoch: Epoch) {
        self.snaps = self.snaps.split_off(&(epoch + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(channel_state: bool, channels: u16) -> IdealUnit {
        IdealUnit::new(UnitId::ingress(0, 0), channels, channel_state)
    }

    #[test]
    fn jump_fills_every_intermediate_slot() {
        let mut u = unit(true, 1);
        u.on_packet(ChannelId(0), 5, 77, 1, false);
        for e in 1..=5 {
            assert_eq!(
                u.snapshot(e),
                Some(IdealSnap {
                    value: 77,
                    channel: 0
                }),
                "epoch {e}"
            );
        }
        assert_eq!(u.epoch(), 5);
    }

    #[test]
    fn in_flight_credits_every_spanned_epoch() {
        let mut u = unit(true, 2);
        u.on_packet(ChannelId(0), 3, 10, 1, false);
        // Channel 1 epoch-0 packet: in flight for epochs 1..=3.
        let out = u.on_packet(ChannelId(1), 0, 11, 4, false);
        assert_eq!(out.verdict, PacketVerdict::InFlight(3));
        for e in 1..=3 {
            assert_eq!(u.snapshot(e).unwrap().channel, 4, "epoch {e}");
        }
    }

    #[test]
    fn completion_tracks_min_last_seen_with_cs() {
        let mut u = unit(true, 2);
        let out = u.on_packet(ChannelId(0), 2, 1, 1, false);
        assert!(out.newly_complete.is_empty());
        let out = u.on_packet(ChannelId(1), 1, 2, 1, false);
        assert_eq!(out.newly_complete, vec![1]);
        let out = u.on_packet(ChannelId(1), 2, 3, 1, false);
        assert_eq!(out.newly_complete, vec![2]);
        assert_eq!(u.complete_up_to(), 2);
    }

    #[test]
    fn completion_is_immediate_without_cs() {
        let mut u = unit(false, 2);
        let out = u.on_packet(ChannelId(0), 3, 9, 1, false);
        assert_eq!(out.newly_complete, vec![1, 2, 3]);
        // And no channel credits accumulate.
        u.on_packet(ChannelId(1), 0, 9, 100, false);
        assert_eq!(u.snapshot(3).unwrap().channel, 0);
    }

    #[test]
    fn initiations_never_credit_channel_state() {
        let mut u = unit(true, 1);
        u.on_packet(ChannelId(0), 2, 5, 1, false);
        let out = u.on_packet(CPU_CHANNEL, 1, 5, 9, true);
        assert_eq!(out.verdict, PacketVerdict::InFlight(1));
        assert_eq!(u.snapshot(2).unwrap().channel, 0);
    }

    #[test]
    fn cpu_channel_does_not_gate_completion() {
        let mut u = unit(true, 1);
        // CPU initiation advances to epoch 1; real channel catches up.
        u.on_packet(CPU_CHANNEL, 1, 0, 0, true);
        let out = u.on_packet(ChannelId(0), 1, 0, 1, false);
        assert_eq!(out.newly_complete, vec![1]);
    }

    #[test]
    fn forwarded_epoch_is_local_epoch() {
        let mut u = unit(true, 1);
        let out = u.on_packet(ChannelId(0), 4, 0, 1, false);
        assert_eq!(out.out_epoch, 4);
        let out = u.on_packet(ChannelId(0), 2, 0, 1, false);
        assert_eq!(out.out_epoch, 4, "in-flight packets get re-stamped");
    }

    #[test]
    fn prune_reclaims_storage() {
        let mut u = unit(true, 1);
        u.on_packet(ChannelId(0), 5, 1, 1, false);
        u.prune(3);
        assert!(u.snapshot(3).is_none());
        assert!(u.snapshot(4).is_some());
    }
}
