//! Staged snapshot-assembly pipeline (ROADMAP item 4).
//!
//! [`Observer`](crate::observer::Observer) assembles each epoch in one
//! monolithic step: every report mutates a per-epoch map cloned from the
//! full registration state, and all validation happens implicitly through
//! map lookups. That shape hits a scaling wall at million-channel fabrics
//! — per-epoch clones of the expected-unit set are O(all units), and there
//! is no way to shed load when reports arrive faster than they can be
//! folded.
//!
//! [`PipelineObserver`] decomposes assembly into five explicit stages with
//! bounded inter-stage queues:
//!
//! ```text
//!            offer_report()                      take_finalized()
//!                 │                                     ▲
//!                 ▼                                     │ 5. persist-hook
//!   ┌─────────┐  pop   ┌──────────┐  pop   ┌──────────┐│   (sealed queue)
//!   │ collect ├───────►│ validate ├───────►│ assemble ├┤
//!   └─────────┘        └──────────┘        └────┬─────┘│
//!    bounded:           attribution,            │ epoch │
//!    backpressure       epoch-window,           ▼ done  │
//!    signal to the      membership &      ┌──────────┐ │
//!    fabric driver      duplicate checks  │ finalize ├─┘
//!                                         └──────────┘
//!                                          seals GlobalSnapshot,
//!                                          emits obs.finalize
//! ```
//!
//! * **collect** — the bounded ingress queue. [`PipelineObserver::offer_report`]
//!   refuses when full; [`PipelineObserver::backpressured`] surfaces the
//!   signal so the embedding driver can defer snapshot (re-)initiations
//!   instead of piling more reports onto a saturated observer.
//! * **validate** — per-arriving-report consistency checks: attribution
//!   (the delivering device must own the reported unit), the no-lapping
//!   epoch window (a report more than `modulus` epochs behind the newest
//!   issued epoch can alias a wrapped ID), future epochs (never issued),
//!   epoch liveness, membership, and exclusion. Every rejection is counted
//!   by [`DropReason`]; attribution and lapping violations are traced.
//! * **assemble** — folds validated reports into the per-epoch assembly:
//!   first value wins (duplicates counted), a running wraparound-checked
//!   total is maintained per epoch, and a completed epoch is queued for
//!   finalization. Membership (device set + expected units) is **shared**
//!   across epochs via [`std::sync::Arc`] and rebuilt only when
//!   registration changes, so per-epoch state is O(delivered values), not
//!   O(all units) — the reference observer clones both sets per epoch.
//! * **finalize** — seals [`GlobalSnapshot`]s and emits the `obs.finalize`
//!   event, identical byte-for-byte to the reference observer's.
//! * **persist-hook** — the bounded sealed queue, drained by the embedder
//!   via [`PipelineObserver::take_finalized`] (the hook point where the
//!   future snapshot store attaches). A full sealed queue stalls the
//!   finalize stage rather than dropping snapshots.
//!
//! **Equivalence contract:** driven synchronously (offer + pump per
//! report, as the fabric does), the pipeline is observably identical to
//! the reference `Observer` — same returned snapshots, same trace events,
//! same timing. The conformance suite pins this by running the full
//! scenario matrix under both implementations and comparing digests at
//! `SPEEDLIGHT_JOBS` 1/2/4; a proptest shuffles/duplicates/misattributes
//! report streams against both. [`AnyObserver`] lets embedders switch.

use crate::control::Report;
use crate::id::Epoch;
use crate::observer::{GlobalSnapshot, Observer, ObserverConfig, UnitOutcome};
use crate::types::UnitId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Configuration for the staged pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The underlying observer protocol parameters (modulus, outstanding
    /// cap) — shared with the reference implementation.
    pub observer: ObserverConfig,
    /// Capacity of the collect (ingress) queue. When full,
    /// [`PipelineObserver::offer_report`] refuses and
    /// [`PipelineObserver::backpressured`] turns on.
    pub collect_capacity: usize,
    /// Capacity of the validated queue between validate and assemble.
    pub validated_capacity: usize,
    /// Capacity of the sealed (persist-hook) queue. A full queue stalls
    /// the finalize stage; snapshots are never dropped.
    pub sealed_capacity: usize,
}

impl PipelineConfig {
    /// Defaults for a given modulus: generous queues sized for the fabric
    /// driver's synchronous pump (which never lets them fill).
    pub fn for_modulus(modulus: u16) -> PipelineConfig {
        PipelineConfig {
            observer: ObserverConfig::for_modulus(modulus),
            collect_capacity: 1024,
            validated_capacity: 1024,
            sealed_capacity: 64,
        }
    }
}

/// Why the validate (or assemble) stage refused a report. Counted in
/// [`PipelineStats`]; the exceptional reasons are also traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The delivering device does not own the reported unit.
    Misattributed,
    /// The epoch was never issued (greater than the newest issued epoch).
    FutureEpoch,
    /// The epoch is at least `modulus` behind the newest issued epoch —
    /// its wrapped ID could alias a live epoch (no-lapping violation).
    Lapped,
    /// The epoch is inside the window but no longer (or never) pending —
    /// a straggler for an already-finalized epoch.
    StaleEpoch,
    /// The device was not registered when the epoch was initiated.
    ForeignDevice,
    /// The device was already excluded from this epoch by timeout.
    ExcludedDevice,
    /// The unit is not in the epoch's expected set.
    UnexpectedUnit,
    /// The unit already has a value for this epoch (first value wins).
    Duplicate,
}

/// Stage-occupancy peaks over one seal-to-seal interval, sampled when an
/// epoch seals. The series is the profile artifact's time axis: it shows
/// *when* a stage backed up, not just that it eventually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// The epoch whose seal closed this interval.
    pub epoch: Epoch,
    /// Peak collect-queue depth in the interval.
    pub collect: u64,
    /// Peak validated-queue depth in the interval.
    pub validated: u64,
    /// Peak ready-queue depth in the interval.
    pub ready: u64,
    /// Peak sealed-queue depth in the interval.
    pub sealed: u64,
    /// Peak pending-value count in the interval.
    pub pending_values: u64,
}

/// Cap on the stage series length: long soaks keep the profile bounded;
/// samples past the cap are counted, not stored.
pub const STAGE_SERIES_CAP: usize = 4096;

/// Pipeline counters and high-water marks, exported as metrics by the
/// fabric and asserted on by the bounded-memory tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Reports accepted into the collect queue.
    pub offered: u64,
    /// Reports refused at the collect queue (backpressure).
    pub backpressure_rejects: u64,
    /// Reports that passed every check and contributed a value.
    pub accepted: u64,
    /// Drops by reason — see [`DropReason`].
    pub misattributed: u64,
    /// Reports for epochs newer than anything issued.
    pub future_epoch: u64,
    /// Reports violating the no-lapping window.
    pub lapped: u64,
    /// Stragglers for finalized epochs.
    pub stale_epoch: u64,
    /// Reports from devices outside the epoch's device set.
    pub foreign_device: u64,
    /// Reports from devices excluded by timeout.
    pub excluded_device: u64,
    /// Duplicate per-unit reports (first value wins).
    pub duplicate: u64,
    /// Reports whose unit is outside the epoch's expected set.
    pub unexpected_unit: u64,
    /// Epochs whose running consistent-total overflowed u64 (the sealed
    /// snapshot's total saturates, per the reference overflow policy).
    pub total_overflow: u64,
    /// Delivered values overwritten by `DeviceExcluded` during forced
    /// finalization (mirrors the `discarded` finalize-event field).
    pub discarded_values: u64,
    /// High-water mark of the collect queue.
    pub peak_collect_depth: usize,
    /// High-water mark of the validated queue.
    pub peak_validated_depth: usize,
    /// High-water mark of the ready (completed-epoch) queue.
    pub peak_ready_depth: usize,
    /// High-water mark of the sealed (persist-hook) queue.
    pub peak_sealed_depth: usize,
    /// High-water mark of values buffered across all pending epochs — the
    /// bounded-memory claim: O(outstanding epochs × delivered units), with
    /// membership shared, never cloned per epoch.
    pub peak_pending_values: usize,
    /// Per-seal interval peaks (the profile artifact's stage series),
    /// capped at [`STAGE_SERIES_CAP`].
    pub stage_series: Vec<StageSample>,
    /// Seal samples discarded after the series cap was reached.
    pub stage_series_dropped: u64,
    /// Interval (since-last-seal) peaks, re-armed at each sample. These
    /// feed [`StageSample`]; whole-run peaks are the `peak_*` fields.
    ivl_collect: usize,
    ivl_validated: usize,
    ivl_ready: usize,
    ivl_sealed: usize,
    ivl_pending_values: usize,
}

impl PipelineStats {
    fn bump_collect(&mut self, depth: usize) {
        self.peak_collect_depth = self.peak_collect_depth.max(depth);
        self.ivl_collect = self.ivl_collect.max(depth);
    }

    fn bump_validated(&mut self, depth: usize) {
        self.peak_validated_depth = self.peak_validated_depth.max(depth);
        self.ivl_validated = self.ivl_validated.max(depth);
    }

    fn bump_ready(&mut self, depth: usize) {
        self.peak_ready_depth = self.peak_ready_depth.max(depth);
        self.ivl_ready = self.ivl_ready.max(depth);
    }

    fn bump_sealed(&mut self, depth: usize) {
        self.peak_sealed_depth = self.peak_sealed_depth.max(depth);
        self.ivl_sealed = self.ivl_sealed.max(depth);
    }

    fn bump_pending(&mut self, depth: usize) {
        self.peak_pending_values = self.peak_pending_values.max(depth);
        self.ivl_pending_values = self.ivl_pending_values.max(depth);
    }

    /// Close the current seal interval: push one [`StageSample`] (or
    /// count it once the series is full) and re-arm the interval peaks.
    fn note_seal(&mut self, epoch: Epoch) {
        let sample = StageSample {
            epoch,
            collect: self.ivl_collect as u64,
            validated: self.ivl_validated as u64,
            ready: self.ivl_ready as u64,
            sealed: self.ivl_sealed as u64,
            pending_values: self.ivl_pending_values as u64,
        };
        if self.stage_series.len() < STAGE_SERIES_CAP {
            self.stage_series.push(sample);
        } else {
            self.stage_series_dropped += 1;
        }
        self.ivl_collect = 0;
        self.ivl_validated = 0;
        self.ivl_ready = 0;
        self.ivl_sealed = 0;
        self.ivl_pending_values = 0;
    }

    /// Render this run's stats as the profile artifact's pipeline section.
    pub fn profile_section(&self) -> obs::profile::PipelineSection {
        obs::profile::PipelineSection {
            offered: self.offered,
            backpressure_rejects: self.backpressure_rejects,
            accepted: self.accepted,
            peak_collect: self.peak_collect_depth as u64,
            peak_validated: self.peak_validated_depth as u64,
            peak_ready: self.peak_ready_depth as u64,
            peak_sealed: self.peak_sealed_depth as u64,
            peak_pending_values: self.peak_pending_values as u64,
            stages: self
                .stage_series
                .iter()
                .map(|s| obs::profile::StageRow {
                    epoch: s.epoch,
                    collect: s.collect,
                    validated: s.validated,
                    ready: s.ready,
                    sealed: s.sealed,
                    pending_values: s.pending_values,
                })
                .collect(),
            stages_dropped: self.stage_series_dropped,
        }
    }

    fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::Misattributed => self.misattributed += 1,
            DropReason::FutureEpoch => self.future_epoch += 1,
            DropReason::Lapped => self.lapped += 1,
            DropReason::StaleEpoch => self.stale_epoch += 1,
            DropReason::ForeignDevice => self.foreign_device += 1,
            DropReason::ExcludedDevice => self.excluded_device += 1,
            DropReason::UnexpectedUnit => self.unexpected_unit += 1,
            DropReason::Duplicate => self.duplicate += 1,
        }
    }
}

/// One device's expected units plus a direct slot index. Slots are the
/// hot-path currency: a slot plus the shared `units` Vec stand in for the
/// unit everywhere below, so per-epoch state never needs a unit-keyed
/// search structure at all — and the slot lookup itself is one table
/// probe, not a search (a binary search over a fabric-sized unit space
/// costs ~10 scattered cache lines per report; this costs one).
#[derive(Debug)]
struct DeviceGroup {
    /// The device's expected units, sorted (slot → unit).
    units: Vec<UnitId>,
    /// `(direction, port) → slot + 1`, 0 meaning "not expected".
    index: Vec<u32>,
    /// Ports per direction row of `index` (max expected port + 1).
    ports_span: usize,
}

impl DeviceGroup {
    fn new(units: Vec<UnitId>) -> DeviceGroup {
        let ports_span = units
            .iter()
            .map(|u| usize::from(u.port) + 1)
            .max()
            .unwrap_or(0);
        let mut index = vec![0u32; 2 * ports_span];
        for (slot, u) in units.iter().enumerate() {
            let pos = Self::pos(u, ports_span);
            if let Some(cell) = index.get_mut(pos) {
                *cell = slot as u32 + 1;
            }
        }
        DeviceGroup {
            units,
            index,
            ports_span,
        }
    }

    fn pos(unit: &UnitId, ports_span: usize) -> usize {
        let dir = match unit.direction {
            crate::types::Direction::Ingress => 0,
            crate::types::Direction::Egress => 1,
        };
        dir * ports_span + usize::from(unit.port)
    }

    /// The slot of `unit`, if expected.
    fn slot_of(&self, unit: &UnitId) -> Option<u32> {
        match self.index.get(Self::pos(unit, self.ports_span)) {
            Some(&s) if s != 0 => Some(s - 1),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.units.len()
    }
}

/// Membership captured at epoch initiation: shared across every epoch
/// issued under the same registration state (the memory win over the
/// reference observer's per-epoch clones).
#[derive(Debug)]
struct Membership {
    device_set: BTreeSet<u16>,
    /// Expected units grouped by owning device.
    expected: BTreeMap<u16, DeviceGroup>,
    /// Total expected units across all groups (the completion target).
    expected_total: usize,
}

/// One device's delivered state within an epoch: a slot bitmap (the
/// duplicate check is a bit test) plus the accepted outcomes in arrival
/// order. Everything here is contiguous memory sized by what actually
/// arrived — no per-epoch clone of the expected set, and no descent of a
/// fabric-sized map on the per-report path.
#[derive(Debug, Clone)]
struct DeviceAssembly {
    /// Bit `i` set ⇔ slot `i` of the device's expected group delivered.
    seen: Vec<u64>,
    /// `(slot, outcome)` in arrival order; slots unique (bitmap-guarded).
    values: Vec<(u32, UnitOutcome)>,
}

impl DeviceAssembly {
    fn new(group_len: usize) -> DeviceAssembly {
        DeviceAssembly {
            seen: vec![0; group_len.div_ceil(64)],
            values: Vec::new(),
        }
    }

    /// Mark `slot` delivered; `false` if it already was (a duplicate).
    fn mark(&mut self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot % 64);
        let Some(w) = self.seen.get_mut(word) else {
            panic!("slot {slot} outside the device's expected group");
        };
        let mask = 1u64 << bit;
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        true
    }

    /// True when `slot` has a delivered value.
    fn is_set(&self, slot: u32) -> bool {
        self.seen
            .get(slot as usize / 64)
            .is_some_and(|w| w & (1u64 << (slot % 64)) != 0)
    }
}

/// Per-epoch assembly state: only what this epoch has actually seen.
#[derive(Debug, Clone)]
struct EpochAssembly {
    membership: Arc<Membership>,
    excluded: BTreeSet<u16>,
    /// Per-device delivered state, created on a device's first accepted
    /// report. An excluded device's group is synthesized as
    /// `DeviceExcluded` at seal time rather than materialized here.
    devices: BTreeMap<u16, DeviceAssembly>,
    /// Unique values delivered across all devices (completion counter).
    delivered: usize,
    /// Values this epoch holds in pipeline memory (delivered plus any
    /// forced-exclusion fills) — returned to `pending_values` at seal.
    stored: usize,
    /// Running consistent-total, checked per arriving report; `None` once
    /// it has overflowed u64 (the wraparound-totals consistency check).
    running_total: Option<u64>,
}

impl EpochAssembly {
    fn complete(&self) -> bool {
        self.delivered == self.membership.expected_total
    }

    /// Unique values delivered by `device` so far.
    fn delivered_by(&self, device: u16) -> usize {
        self.devices.get(&device).map_or(0, |d| d.values.len())
    }
}

/// A report that survived the validate stage.
#[derive(Debug, Clone, Copy)]
struct Validated {
    device: u16,
    /// The unit's slot in its device's expected group, computed during
    /// validation (membership is per-epoch immutable, so it stays valid
    /// while the report sits in the queue).
    slot: u32,
    /// The device's expected-group length, captured alongside the slot
    /// so the assemble stage never re-walks the membership map.
    group_len: u32,
    report: Report,
}

/// The staged snapshot observer. See the module docs for the stage
/// diagram and the equivalence contract with the reference
/// [`Observer`](crate::observer::Observer).
#[derive(Debug, Clone)]
pub struct PipelineObserver {
    cfg: PipelineConfig,
    devices: BTreeMap<u16, Vec<UnitId>>,
    membership: Option<Arc<Membership>>,
    next_epoch: Epoch,
    assemblies: BTreeMap<Epoch, EpochAssembly>,
    collect: VecDeque<(u16, Report)>,
    validated: VecDeque<Validated>,
    ready: VecDeque<Epoch>,
    sealed: VecDeque<GlobalSnapshot>,
    pending_values: usize,
    finalized: u64,
    stats: PipelineStats,
}

impl PipelineObserver {
    /// Create a pipeline observer with no registered devices.
    pub fn new(cfg: PipelineConfig) -> PipelineObserver {
        assert!(cfg.observer.max_outstanding >= 1);
        assert!(
            cfg.observer.max_outstanding < cfg.observer.modulus,
            "outstanding epochs must stay below the modulus (no-lapping)"
        );
        assert!(cfg.collect_capacity >= 1);
        assert!(cfg.validated_capacity >= 1);
        assert!(cfg.sealed_capacity >= 1);
        PipelineObserver {
            cfg,
            devices: BTreeMap::new(),
            membership: None,
            next_epoch: 1,
            assemblies: BTreeMap::new(),
            collect: VecDeque::new(),
            validated: VecDeque::new(),
            ready: VecDeque::new(),
            sealed: VecDeque::new(),
            pending_values: 0,
            finalized: 0,
            stats: PipelineStats::default(),
        }
    }

    /// Register a device and its expected units (§6 "Node attachment").
    /// Participates starting with the next initiated snapshot.
    pub fn register_device(&mut self, device: u16, units: Vec<UnitId>) {
        self.devices.insert(device, units);
        self.membership = None;
    }

    /// Remove a device. Pending epochs that expected it only finish via
    /// [`PipelineObserver::force_finalize`].
    pub fn detach_device(&mut self, device: u16) {
        self.devices.remove(&device);
        self.membership = None;
    }

    /// Registered device IDs.
    pub fn device_ids(&self) -> impl Iterator<Item = u16> + '_ {
        self.devices.keys().copied()
    }

    /// Epochs issued but not yet finalized.
    pub fn outstanding(&self) -> usize {
        self.assemblies.len()
    }

    /// Epochs currently pending, oldest first.
    pub fn pending_epochs(&self) -> impl Iterator<Item = Epoch> + '_ {
        self.assemblies.keys().copied()
    }

    /// Number of snapshots finalized so far.
    pub fn finalized_count(&self) -> u64 {
        self.finalized
    }

    /// Reports rejected for misattribution (parity with the reference
    /// observer's counter).
    pub fn misattributed_count(&self) -> u64 {
        self.stats.misattributed
    }

    /// Pipeline counters and high-water marks.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// True when the collect queue is full: the embedding driver should
    /// defer snapshot (re-)initiations until the pipeline drains.
    pub fn backpressured(&self) -> bool {
        self.collect.len() >= self.cfg.collect_capacity
    }

    fn membership_arc(&mut self) -> Arc<Membership> {
        if let Some(m) = &self.membership {
            return Arc::clone(m);
        }
        let mut grouped: BTreeMap<u16, Vec<UnitId>> = BTreeMap::new();
        for &u in self.devices.values().flatten() {
            grouped.entry(u.device).or_default().push(u);
        }
        let mut expected_total = 0;
        let expected: BTreeMap<u16, DeviceGroup> = grouped
            .into_iter()
            .map(|(device, mut units)| {
                units.sort_unstable();
                units.dedup();
                expected_total += units.len();
                (device, DeviceGroup::new(units))
            })
            .collect();
        let m = Arc::new(Membership {
            device_set: self.devices.keys().copied().collect(),
            expected,
            expected_total,
        });
        self.membership = Some(Arc::clone(&m));
        m
    }

    /// Issue the next snapshot epoch, or `None` at the no-lapping cap or
    /// with no registered devices. Mirrors
    /// [`Observer::begin_snapshot`](crate::observer::Observer::begin_snapshot).
    pub fn begin_snapshot(&mut self) -> Option<Epoch> {
        self.begin_snapshot_traced(&mut obs::NoopSink, 0)
    }

    /// [`PipelineObserver::begin_snapshot`] with trace emission
    /// (`snap.initiate`, identical to the reference observer's).
    pub fn begin_snapshot_traced<S: obs::Sink>(
        &mut self,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<Epoch> {
        if self.assemblies.len() >= usize::from(self.cfg.observer.max_outstanding) {
            return None;
        }
        if self.devices.is_empty() {
            return None;
        }
        let epoch = self.next_epoch;
        // Checked-arithmetic policy (same as the reference observer): a
        // wrapped epoch counter would alias wrapped snapshot IDs.
        self.next_epoch = epoch.checked_add(1).unwrap_or_else(|| {
            panic!("observer epoch counter overflow: next_epoch would exceed u64::MAX")
        });
        let membership = self.membership_arc();
        obs::event!(
            sink,
            t_ns,
            "snap.initiate",
            epoch = epoch,
            devices = membership.device_set.len(),
            units = membership.expected_total,
        );
        self.assemblies.insert(
            epoch,
            EpochAssembly {
                membership,
                excluded: BTreeSet::new(),
                devices: BTreeMap::new(),
                delivered: 0,
                stored: 0,
                running_total: Some(0),
            },
        );
        Some(epoch)
    }

    /// Stage 1 (collect): enqueue one report. Returns `false` without
    /// enqueueing when the collect queue is full — the backpressure
    /// signal. The report is *not* validated here; that happens when the
    /// validate stage pops it.
    pub fn offer_report(&mut self, device: u16, report: Report) -> bool {
        if self.collect.len() >= self.cfg.collect_capacity {
            self.stats.backpressure_rejects += 1;
            return false;
        }
        self.collect.push_back((device, report));
        self.stats.offered += 1;
        let depth = self.collect.len();
        self.stats.bump_collect(depth);
        true
    }

    /// Stage 2 (validate): move reports from collect to the validated
    /// queue, applying the per-arriving-report consistency checks.
    /// Returns how many reports were popped.
    pub fn pump_validate_traced<S: obs::Sink>(&mut self, sink: &mut S, t_ns: u64) -> usize {
        let mut moved = 0;
        while self.validated.len() < self.cfg.validated_capacity {
            let Some((device, report)) = self.collect.pop_front() else {
                break;
            };
            moved += 1;
            match self.validate(device, &report) {
                Ok((slot, group_len)) => {
                    self.validated.push_back(Validated {
                        device,
                        slot,
                        group_len,
                        report,
                    });
                    let depth = self.validated.len();
                    self.stats.bump_validated(depth);
                }
                Err(reason) => self.reject(reason, device, &report, sink, t_ns),
            }
        }
        moved
    }

    /// All per-arriving-report checks; returns the unit's slot in its
    /// device's expected group (and the group's length) on success.
    fn validate(&self, device: u16, report: &Report) -> Result<(u32, u32), DropReason> {
        // Attribution: the delivering device must own the unit. Checked
        // before anything else — a spoofed report is rejected regardless
        // of epoch validity (mirrors the reference observer's fix).
        if report.unit.device != device {
            return Err(DropReason::Misattributed);
        }
        // No-lapping window: newest issued epoch is next_epoch - 1. A
        // report at or beyond the modulus behind it could alias a wrapped
        // ID; one beyond next_epoch was never issued at all.
        let newest_issued = self.next_epoch.saturating_sub(1);
        if report.epoch > newest_issued {
            return Err(DropReason::FutureEpoch);
        }
        if newest_issued - report.epoch >= u64::from(self.cfg.observer.modulus) {
            return Err(DropReason::Lapped);
        }
        let Some(assembly) = self.assemblies.get(&report.epoch) else {
            return Err(DropReason::StaleEpoch);
        };
        if !assembly.membership.device_set.contains(&device) {
            return Err(DropReason::ForeignDevice);
        }
        if assembly.excluded.contains(&device) {
            return Err(DropReason::ExcludedDevice);
        }
        let Some(group) = assembly.membership.expected.get(&device) else {
            return Err(DropReason::UnexpectedUnit);
        };
        match group.slot_of(&report.unit) {
            Some(slot) => Ok((slot, group.len() as u32)),
            None => Err(DropReason::UnexpectedUnit),
        }
    }

    fn reject<S: obs::Sink>(
        &mut self,
        reason: DropReason,
        device: u16,
        report: &Report,
        sink: &mut S,
        t_ns: u64,
    ) {
        self.stats.record_drop(reason);
        match reason {
            DropReason::Misattributed => {
                obs::event!(
                    sink,
                    t_ns,
                    "report.misattributed",
                    dev = device,
                    unit_dev = report.unit.device,
                    epoch = report.epoch,
                );
            }
            DropReason::Lapped => {
                obs::event!(
                    sink,
                    t_ns,
                    "report.lapped",
                    dev = device,
                    epoch = report.epoch,
                );
            }
            _ => {}
        }
    }

    /// Stage 3 (assemble): fold validated reports into their epoch
    /// assemblies; completed epochs move to the ready queue. Returns how
    /// many reports were folded.
    pub fn pump_assemble(&mut self) -> usize {
        let mut moved = 0;
        while let Some(Validated {
            device,
            slot,
            group_len,
            report,
        }) = self.validated.pop_front()
        {
            moved += 1;
            self.fold(device, slot, group_len, report);
        }
        moved
    }

    /// Fold one validated report into its epoch assembly. Liveness and
    /// exclusion are re-checked here — the epoch may have been
    /// force-finalized (or the device excluded) between validation and
    /// folding when the report transited the validated queue.
    ///
    /// The entire fold works in slot space: a small-map walk to the
    /// device's assembly, one bit test-and-set (the first-value-wins
    /// duplicate check), and an append. No structure sized by the fabric
    /// is touched until seal time.
    fn fold(&mut self, device: u16, slot: u32, group_len: u32, report: Report) {
        let Some(assembly) = self.assemblies.get_mut(&report.epoch) else {
            self.stats.record_drop(DropReason::StaleEpoch);
            return;
        };
        if assembly.excluded.contains(&device) {
            self.stats.record_drop(DropReason::ExcludedDevice);
            return;
        }
        let dev = assembly
            .devices
            .entry(device)
            .or_insert_with(|| DeviceAssembly::new(group_len as usize));
        if !dev.mark(slot) {
            self.stats.record_drop(DropReason::Duplicate);
            return;
        }
        let outcome: UnitOutcome = report.value.into();
        dev.values.push((slot, outcome));
        // Wraparound-totals consistency check: maintain the running
        // consistent-total per epoch, flagging u64 overflow the moment
        // the offending report arrives (the sealed snapshot's total
        // then saturates, matching the reference overflow policy).
        if let Some(total) = assembly.running_total {
            let next = match outcome {
                UnitOutcome::Value { local, channel } => total
                    .checked_add(local)
                    .and_then(|t| t.checked_add(channel)),
                UnitOutcome::Inferred { local } => total.checked_add(local),
                _ => Some(total),
            };
            if next.is_none() {
                self.stats.total_overflow += 1;
            }
            assembly.running_total = next;
        }
        assembly.delivered += 1;
        assembly.stored += 1;
        self.pending_values += 1;
        let pending = self.pending_values;
        self.stats.bump_pending(pending);
        self.stats.accepted += 1;
        if assembly.complete() {
            self.ready.push_back(report.epoch);
            let depth = self.ready.len();
            self.stats.bump_ready(depth);
        }
    }

    /// Fused validate+assemble fast path: drain the whole collect queue in
    /// one chunk, folding each surviving report straight into its epoch
    /// assembly without the validated-queue hop. Observably identical to
    /// `pump_validate_traced` followed by `pump_assemble` (same checks,
    /// same counters, same trace events, same collect order) — it only
    /// skips the intermediate enqueue/dequeue, which is pure overhead when
    /// both stages run back-to-back anyway. The per-stage pumps stay for
    /// staged embedders; this is what [`PipelineObserver::pump`] uses.
    fn pump_fused_traced<S: obs::Sink>(&mut self, sink: &mut S, t_ns: u64) -> usize {
        let mut moved = 0;
        while let Some((device, report)) = self.collect.pop_front() {
            moved += 1;
            match self.validate(device, &report) {
                Ok((slot, group_len)) => self.fold(device, slot, group_len, report),
                Err(reason) => self.reject(reason, device, &report, sink, t_ns),
            }
        }
        moved
    }

    /// Stage 4 (finalize): seal completed epochs into the persist-hook
    /// queue, emitting `obs.finalize`. Stalls (returns early) when the
    /// sealed queue is full — snapshots are never dropped. Returns how
    /// many snapshots were sealed.
    pub fn pump_finalize_traced<S: obs::Sink>(&mut self, sink: &mut S, t_ns: u64) -> usize {
        let mut sealed = 0;
        while self.sealed.len() < self.cfg.sealed_capacity {
            let Some(epoch) = self.ready.pop_front() else {
                break;
            };
            let Some(snap) = self.seal(epoch) else {
                continue; // force-finalized while queued
            };
            obs::event!(
                sink,
                t_ns,
                "obs.finalize",
                epoch = snap.epoch,
                units = snap.units.len(),
                excluded = snap.excluded.len(),
                forced = false,
            );
            self.sealed.push_back(snap);
            let depth = self.sealed.len();
            self.stats.bump_sealed(depth);
            sealed += 1;
        }
        sealed
    }

    /// Stage 5 (persist-hook): pop the oldest sealed snapshot. The
    /// embedder's store — fabric instrumentation today, the snapshot
    /// store subsystem later — attaches here.
    pub fn take_finalized(&mut self) -> Option<GlobalSnapshot> {
        self.sealed.pop_front()
    }

    /// Run every stage to quiescence. The synchronous embedding calls
    /// this after each offer; staged embedders (the bench harness) drive
    /// the per-stage pumps directly.
    pub fn pump(&mut self) {
        self.pump_traced(&mut obs::NoopSink, 0);
    }

    /// [`PipelineObserver::pump`] with trace emission. Anything a staged
    /// embedder left in the validated queue is folded first (preserving
    /// report order), then collect drains through the fused fast path.
    pub fn pump_traced<S: obs::Sink>(&mut self, sink: &mut S, t_ns: u64) {
        loop {
            let mut progress = 0;
            progress += self.pump_finalize_traced(sink, t_ns);
            progress += self.pump_assemble();
            progress += self.pump_fused_traced(sink, t_ns);
            if progress == 0 {
                break;
            }
        }
    }

    fn seal(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        let a = self.assemblies.remove(&epoch)?;
        self.stats.note_seal(epoch);
        self.finalized += 1;
        self.pending_values -= a.stored.min(self.pending_values);
        // Build the unit-keyed outcome map once, here, from slot space:
        // groups iterate in device order and each group is sorted, so the
        // stream below is globally sorted and the BTreeMap bulk-builds
        // from it instead of being searched per report.
        let mut units: Vec<(UnitId, UnitOutcome)> = Vec::with_capacity(a.stored);
        let mut slots: Vec<(u32, UnitOutcome)> = Vec::new();
        for (device, group) in &a.membership.expected {
            if a.excluded.contains(device) {
                units.extend(
                    group
                        .units
                        .iter()
                        .map(|&u| (u, UnitOutcome::DeviceExcluded)),
                );
            } else if let Some(dev) = a.devices.get(device) {
                slots.clear();
                slots.extend_from_slice(&dev.values);
                slots.sort_unstable_by_key(|&(slot, _)| slot);
                for &(slot, outcome) in &slots {
                    let Some(&unit) = group.units.get(slot as usize) else {
                        panic!("delivered slot {slot} outside device {device}'s group");
                    };
                    units.push((unit, outcome));
                }
            }
        }
        Some(GlobalSnapshot {
            epoch,
            devices: &a.membership.device_set - &a.excluded,
            excluded: a.excluded,
            units: units.into_iter().collect(),
        })
    }

    /// Synchronous convenience mirroring
    /// [`Observer::on_report`](crate::observer::Observer::on_report):
    /// offer, pump to quiescence, and return the completed snapshot if
    /// this report finished its epoch.
    pub fn on_report(&mut self, device: u16, report: Report) -> Option<GlobalSnapshot> {
        self.on_report_traced(device, report, &mut obs::NoopSink, 0)
    }

    /// [`PipelineObserver::on_report`] with trace emission.
    pub fn on_report_traced<S: obs::Sink>(
        &mut self,
        device: u16,
        report: Report,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        if !self.offer_report(device, report) {
            // Total fallback: drain and retry rather than silently losing
            // the report (the synchronous embedding never gets here — it
            // pumps after every offer).
            self.pump_traced(sink, t_ns);
            if !self.offer_report(device, report) {
                return None;
            }
        }
        self.pump_traced(sink, t_ns);
        self.take_finalized()
    }

    /// Units still missing for `epoch` (retry planning). Matches the
    /// reference observer.
    pub fn missing_units(&self, epoch: Epoch) -> Vec<UnitId> {
        let Some(a) = self.assemblies.get(&epoch) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (device, group) in &a.membership.expected {
            match a.devices.get(device) {
                None => out.extend_from_slice(&group.units),
                Some(d) if d.values.len() == group.len() => {}
                Some(d) => {
                    for (slot, &unit) in group.units.iter().enumerate() {
                        if !d.is_set(slot as u32) {
                            out.push(unit);
                        }
                    }
                }
            }
        }
        out
    }

    /// Devices with at least one missing unit for `epoch`.
    pub fn lagging_devices(&self, epoch: Epoch) -> BTreeSet<u16> {
        self.missing_units(epoch).iter().map(|u| u.device).collect()
    }

    /// Timeout path, mirroring
    /// [`Observer::force_finalize`](crate::observer::Observer::force_finalize):
    /// exclude lagging devices and seal with what arrived.
    pub fn force_finalize(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        self.force_finalize_traced(epoch, &mut obs::NoopSink, 0)
    }

    /// [`PipelineObserver::force_finalize`] with trace emission: one
    /// `snap.exclude` per timed-out device, then `obs.finalize` marked
    /// `forced` and carrying the `discarded` delivered-value count.
    ///
    /// Forced finalization deliberately bypasses the ready/sealed queues:
    /// a timeout decision must not itself be subject to persist
    /// backpressure. Queued reports are pumped first so anything already
    /// delivered is credited before the exclusion cut.
    pub fn force_finalize_traced<S: obs::Sink>(
        &mut self,
        epoch: Epoch,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        // Pump validate + assemble only: anything already delivered is
        // credited, but a concurrently-completed epoch stays in the ready
        // queue (not the persist queue) so the forced path below can still
        // claim it — sealing it forced with zero exclusions, which is the
        // honest record of "the timeout fired after everything arrived".
        loop {
            let progress = self.pump_validate_traced(sink, t_ns) + self.pump_assemble();
            if progress == 0 {
                break;
            }
        }
        let assembly = self.assemblies.get_mut(&epoch)?;
        // A device lags when any of its expected group is undelivered.
        let lagging: BTreeSet<u16> = assembly
            .membership
            .expected
            .iter()
            .filter(|(d, group)| assembly.delivered_by(**d) < group.len())
            .map(|(&d, _)| d)
            .collect();
        for dev in &lagging {
            assembly.excluded.insert(*dev);
            obs::event!(sink, t_ns, "snap.exclude", epoch = epoch, dev = *dev);
        }
        // Exclusion policy (§6): an excluded device contributes nothing —
        // values it did deliver are overwritten with DeviceExcluded (seal
        // synthesizes the whole group), and the overwrite count is
        // surfaced as `discarded` (never silent). The undelivered rest of
        // each group now also occupies pipeline memory until seal.
        let mut discarded: u64 = 0;
        for dev in &lagging {
            let group_len = assembly
                .membership
                .expected
                .get(dev)
                .map_or(0, DeviceGroup::len);
            let delivered = assembly.delivered_by(*dev);
            discarded += delivered as u64;
            let newly = group_len - delivered;
            assembly.stored += newly;
            self.pending_values += newly;
        }
        self.stats.discarded_values += discarded;
        let pending = self.pending_values;
        self.stats.bump_pending(pending);
        // Drop the epoch from the ready queue if it completed concurrently
        // (total: seal() below would return None for the second taker).
        self.ready.retain(|e| *e != epoch);
        let snap = self.seal(epoch)?;
        obs::event!(
            sink,
            t_ns,
            "obs.finalize",
            epoch = snap.epoch,
            units = snap.units.len(),
            excluded = snap.excluded.len(),
            forced = true,
            discarded = discarded,
        );
        Some(snap)
    }

    /// Fold pipeline counters and high-water marks into a metrics
    /// registry (gauges, so re-folding is idempotent).
    pub fn fold_metrics(&self, m: &mut obs::metrics::Metrics) {
        let s = &self.stats;
        m.gauge_set("observer.pipeline.offered", s.offered);
        m.gauge_set("observer.pipeline.accepted", s.accepted);
        m.gauge_set(
            "observer.pipeline.backpressure_rejects",
            s.backpressure_rejects,
        );
        m.gauge_set("observer.pipeline.misattributed", s.misattributed);
        m.gauge_set("observer.pipeline.duplicate", s.duplicate);
        m.gauge_set("observer.pipeline.stale_epoch", s.stale_epoch);
        m.gauge_set("observer.pipeline.discarded_values", s.discarded_values);
        m.gauge_set(
            "observer.pipeline.peak_collect_depth",
            s.peak_collect_depth as u64,
        );
        m.gauge_set(
            "observer.pipeline.peak_pending_values",
            s.peak_pending_values as u64,
        );
    }
}

/// Either observer implementation behind one embedding-facing API. The
/// fabric and the threaded emulation are generic over this so the
/// conformance suite can run the same scenario under both and compare
/// digests byte-for-byte.
#[derive(Debug, Clone)]
pub enum AnyObserver {
    /// The monolithic reference implementation.
    Reference(Observer),
    /// The staged pipeline (boxed: its queues and stats make it an order
    /// of magnitude larger than the reference variant).
    Pipeline(Box<PipelineObserver>),
}

impl AnyObserver {
    /// A reference observer.
    pub fn reference(cfg: ObserverConfig) -> AnyObserver {
        AnyObserver::Reference(Observer::new(cfg))
    }

    /// A pipeline observer with default queue capacities.
    pub fn pipeline(cfg: PipelineConfig) -> AnyObserver {
        AnyObserver::Pipeline(Box::new(PipelineObserver::new(cfg)))
    }

    /// True for the pipeline variant.
    pub fn is_pipeline(&self) -> bool {
        matches!(self, AnyObserver::Pipeline(_))
    }

    /// Register a device and its expected units.
    pub fn register_device(&mut self, device: u16, units: Vec<UnitId>) {
        match self {
            AnyObserver::Reference(o) => o.register_device(device, units),
            AnyObserver::Pipeline(p) => p.register_device(device, units),
        }
    }

    /// Remove a device (failure handling): it stops being expected in
    /// future epochs; in-flight epochs still list it as lagging until
    /// forced finalization excludes it.
    pub fn detach_device(&mut self, device: u16) {
        match self {
            AnyObserver::Reference(o) => o.detach_device(device),
            AnyObserver::Pipeline(p) => p.detach_device(device),
        }
    }

    /// Registered device IDs.
    pub fn device_ids(&self) -> Vec<u16> {
        match self {
            AnyObserver::Reference(o) => o.device_ids().collect(),
            AnyObserver::Pipeline(p) => p.device_ids().collect(),
        }
    }

    /// Epochs issued but not yet finalized.
    pub fn outstanding(&self) -> usize {
        match self {
            AnyObserver::Reference(o) => o.outstanding(),
            AnyObserver::Pipeline(p) => p.outstanding(),
        }
    }

    /// Epochs currently pending, oldest first.
    pub fn pending_epochs(&self) -> Vec<Epoch> {
        match self {
            AnyObserver::Reference(o) => o.pending_epochs().collect(),
            AnyObserver::Pipeline(p) => p.pending_epochs().collect(),
        }
    }

    /// Number of snapshots finalized so far.
    pub fn finalized_count(&self) -> u64 {
        match self {
            AnyObserver::Reference(o) => o.finalized_count(),
            AnyObserver::Pipeline(p) => p.finalized_count(),
        }
    }

    /// Reports rejected for misattribution.
    pub fn misattributed_count(&self) -> u64 {
        match self {
            AnyObserver::Reference(o) => o.misattributed_count(),
            AnyObserver::Pipeline(p) => p.misattributed_count(),
        }
    }

    /// Issue the next snapshot epoch.
    pub fn begin_snapshot(&mut self) -> Option<Epoch> {
        self.begin_snapshot_traced(&mut obs::NoopSink, 0)
    }

    /// [`AnyObserver::begin_snapshot`] with trace emission.
    pub fn begin_snapshot_traced<S: obs::Sink>(
        &mut self,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<Epoch> {
        match self {
            AnyObserver::Reference(o) => o.begin_snapshot_traced(sink, t_ns),
            AnyObserver::Pipeline(p) => p.begin_snapshot_traced(sink, t_ns),
        }
    }

    /// Deliver one control-plane report.
    pub fn on_report(&mut self, device: u16, report: Report) -> Option<GlobalSnapshot> {
        self.on_report_traced(device, report, &mut obs::NoopSink, 0)
    }

    /// [`AnyObserver::on_report`] with trace emission.
    pub fn on_report_traced<S: obs::Sink>(
        &mut self,
        device: u16,
        report: Report,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        match self {
            AnyObserver::Reference(o) => o.on_report_traced(device, report, sink, t_ns),
            AnyObserver::Pipeline(p) => p.on_report_traced(device, report, sink, t_ns),
        }
    }

    /// Units still missing for `epoch`.
    pub fn missing_units(&self, epoch: Epoch) -> Vec<UnitId> {
        match self {
            AnyObserver::Reference(o) => o.missing_units(epoch),
            AnyObserver::Pipeline(p) => p.missing_units(epoch),
        }
    }

    /// Devices with at least one missing unit for `epoch`.
    pub fn lagging_devices(&self, epoch: Epoch) -> BTreeSet<u16> {
        match self {
            AnyObserver::Reference(o) => o.lagging_devices(epoch),
            AnyObserver::Pipeline(p) => p.lagging_devices(epoch),
        }
    }

    /// Timeout path: exclude lagging devices and finalize.
    pub fn force_finalize(&mut self, epoch: Epoch) -> Option<GlobalSnapshot> {
        self.force_finalize_traced(epoch, &mut obs::NoopSink, 0)
    }

    /// [`AnyObserver::force_finalize`] with trace emission.
    pub fn force_finalize_traced<S: obs::Sink>(
        &mut self,
        epoch: Epoch,
        sink: &mut S,
        t_ns: u64,
    ) -> Option<GlobalSnapshot> {
        match self {
            AnyObserver::Reference(o) => o.force_finalize_traced(epoch, sink, t_ns),
            AnyObserver::Pipeline(p) => p.force_finalize_traced(epoch, sink, t_ns),
        }
    }

    /// Backpressure signal: `true` when the pipeline's collect queue is
    /// full. The reference observer never backpressures.
    pub fn backpressured(&self) -> bool {
        match self {
            AnyObserver::Reference(_) => false,
            AnyObserver::Pipeline(p) => p.backpressured(),
        }
    }

    /// Run pipeline stages to quiescence (no-op for the reference).
    pub fn pump_traced<S: obs::Sink>(&mut self, sink: &mut S, t_ns: u64) {
        if let AnyObserver::Pipeline(p) = self {
            p.pump_traced(sink, t_ns);
        }
    }

    /// Pipeline stats when running the pipeline variant.
    pub fn pipeline_stats(&self) -> Option<&PipelineStats> {
        match self {
            AnyObserver::Reference(_) => None,
            AnyObserver::Pipeline(p) => Some(p.stats()),
        }
    }

    /// Fold implementation-specific metrics into a registry.
    pub fn fold_metrics(&self, m: &mut obs::metrics::Metrics) {
        if let AnyObserver::Pipeline(p) = self {
            p.fold_metrics(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ReportValue;

    fn report(unit: UnitId, epoch: Epoch, local: u64) -> Report {
        Report {
            unit,
            epoch,
            value: ReportValue::Value { local, channel: 0 },
        }
    }

    fn two_device_pipeline() -> PipelineObserver {
        let mut p = PipelineObserver::new(PipelineConfig::for_modulus(8));
        p.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        p.register_device(1, vec![UnitId::ingress(1, 0), UnitId::egress(1, 0)]);
        p
    }

    #[test]
    fn synchronous_embedding_matches_reference_behavior() {
        let mut p = two_device_pipeline();
        assert_eq!(p.begin_snapshot(), Some(1));
        assert!(p
            .on_report(0, report(UnitId::ingress(0, 0), 1, 10))
            .is_none());
        assert!(p
            .on_report(0, report(UnitId::egress(0, 0), 1, 11))
            .is_none());
        assert!(p
            .on_report(1, report(UnitId::ingress(1, 0), 1, 12))
            .is_none());
        let snap = p
            .on_report(1, report(UnitId::egress(1, 0), 1, 13))
            .expect("final report completes the snapshot");
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.consistent_total(), 46);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.finalized_count(), 1);
        assert_eq!(p.stats().accepted, 4);
        assert_eq!(p.stats().peak_pending_values, 4);
    }

    #[test]
    fn backpressure_refuses_at_collect_capacity() {
        let mut cfg = PipelineConfig::for_modulus(8);
        cfg.collect_capacity = 2;
        let mut p = PipelineObserver::new(cfg);
        p.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        p.begin_snapshot().unwrap();
        assert!(!p.backpressured());
        assert!(p.offer_report(0, report(UnitId::ingress(0, 0), 1, 1)));
        assert!(p.offer_report(0, report(UnitId::egress(0, 0), 1, 2)));
        assert!(p.backpressured(), "collect at capacity");
        assert!(
            !p.offer_report(0, report(UnitId::ingress(0, 0), 1, 3)),
            "offer refused at capacity"
        );
        assert_eq!(p.stats().backpressure_rejects, 1);
        p.pump();
        assert!(!p.backpressured(), "pump drains the queue");
        assert_eq!(p.take_finalized().map(|s| s.epoch), Some(1));
    }

    #[test]
    fn staged_pumps_move_work_one_stage_at_a_time() {
        let mut p = two_device_pipeline();
        p.begin_snapshot().unwrap();
        for (dev, unit) in [
            (0, UnitId::ingress(0, 0)),
            (0, UnitId::egress(0, 0)),
            (1, UnitId::ingress(1, 0)),
            (1, UnitId::egress(1, 0)),
        ] {
            assert!(p.offer_report(dev, report(unit, 1, 5)));
        }
        assert_eq!(p.stats().peak_collect_depth, 4);
        assert_eq!(p.pump_validate_traced(&mut obs::NoopSink, 0), 4);
        assert_eq!(p.pump_assemble(), 4);
        assert_eq!(p.pump_finalize_traced(&mut obs::NoopSink, 0), 1);
        let snap = p.take_finalized().expect("sealed snapshot available");
        assert_eq!(snap.epoch, 1);
        assert!(p.take_finalized().is_none());
    }

    #[test]
    fn validate_rejects_misattributed_and_windows() {
        let mut p = two_device_pipeline();
        let mut sink = obs::sinks::RingSink::new(16);
        p.begin_snapshot_traced(&mut sink, 0).unwrap();
        // Misattributed: device 0 delivering device 1's unit.
        assert!(p
            .on_report_traced(0, report(UnitId::ingress(1, 0), 1, 9), &mut sink, 1)
            .is_none());
        assert_eq!(p.stats().misattributed, 1);
        assert!(sink.events().any(|e| e.name == "report.misattributed"));
        // Future epoch: never issued.
        assert!(p
            .on_report(0, report(UnitId::ingress(0, 0), 7, 9))
            .is_none());
        assert_eq!(p.stats().future_epoch, 1);
        // Unexpected unit.
        assert!(p
            .on_report(0, report(UnitId::ingress(0, 9), 1, 9))
            .is_none());
        assert_eq!(p.stats().unexpected_unit, 1);
        // The epoch still completes with the legitimate reports.
        p.on_report(0, report(UnitId::ingress(0, 0), 1, 1));
        p.on_report(0, report(UnitId::egress(0, 0), 1, 2));
        p.on_report(1, report(UnitId::ingress(1, 0), 1, 3));
        assert!(p.on_report(1, report(UnitId::egress(1, 0), 1, 4)).is_some());
    }

    #[test]
    fn lapped_reports_are_rejected_and_traced() {
        let mut cfg = PipelineConfig::for_modulus(4);
        cfg.observer.max_outstanding = 1;
        let mut p = PipelineObserver::new(cfg);
        p.register_device(0, vec![UnitId::ingress(0, 0)]);
        let mut sink = obs::sinks::RingSink::new(64);
        for e in 1..=6u64 {
            p.begin_snapshot_traced(&mut sink, 0).unwrap();
            p.on_report(0, report(UnitId::ingress(0, 0), e, 1)).unwrap();
        }
        // Newest issued is 6; epoch 1 is 5 >= modulus(4) behind: lapped.
        assert!(p
            .on_report_traced(0, report(UnitId::ingress(0, 0), 1, 1), &mut sink, 9)
            .is_none());
        assert_eq!(p.stats().lapped, 1);
        assert!(sink.events().any(|e| e.name == "report.lapped"));
        // Epoch 4 is inside the window but finalized: a stale straggler.
        assert!(p
            .on_report(0, report(UnitId::ingress(0, 0), 4, 1))
            .is_none());
        assert_eq!(p.stats().stale_epoch, 1);
    }

    #[test]
    fn duplicates_keep_first_value_and_are_counted() {
        let mut p = PipelineObserver::new(PipelineConfig::for_modulus(8));
        p.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        p.begin_snapshot().unwrap();
        p.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        assert!(p
            .on_report(0, report(UnitId::ingress(0, 0), 1, 99))
            .is_none());
        assert_eq!(p.stats().duplicate, 1);
        let snap = p.on_report(0, report(UnitId::egress(0, 0), 1, 11)).unwrap();
        assert_eq!(
            snap.units[&UnitId::ingress(0, 0)],
            UnitOutcome::Value {
                local: 10,
                channel: 0
            }
        );
    }

    #[test]
    fn forced_finalize_counts_discarded_and_traces_exclusions() {
        let mut p = two_device_pipeline();
        let mut sink = obs::sinks::RingSink::new(16);
        p.begin_snapshot_traced(&mut sink, 0).unwrap();
        p.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        p.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        p.on_report(1, report(UnitId::ingress(1, 0), 1, 12));
        let snap = p.force_finalize_traced(1, &mut sink, 50).unwrap();
        assert_eq!(snap.excluded, BTreeSet::from([1]));
        assert_eq!(
            snap.units[&UnitId::ingress(1, 0)],
            UnitOutcome::DeviceExcluded
        );
        assert_eq!(p.stats().discarded_values, 1);
        let ev = sink.events().find(|e| e.name == "obs.finalize").unwrap();
        assert_eq!(ev.get("forced"), Some(&obs::Value::Bool(true)));
        assert_eq!(ev.get("discarded").and_then(|v| v.as_u64()), Some(1));
        assert!(sink.events().any(|e| e.name == "snap.exclude"));
    }

    #[test]
    fn forced_finalize_credits_queued_reports_first() {
        // A report sitting unprocessed in the collect queue when the
        // timeout fires must be credited before the exclusion cut.
        let mut p = two_device_pipeline();
        p.begin_snapshot().unwrap();
        p.on_report(0, report(UnitId::ingress(0, 0), 1, 10));
        p.on_report(0, report(UnitId::egress(0, 0), 1, 11));
        assert!(p.offer_report(1, report(UnitId::ingress(1, 0), 1, 12)));
        assert!(p.offer_report(1, report(UnitId::egress(1, 0), 1, 13)));
        // No pump: both of device 1's reports are still queued. The
        // forced path pumps first, so the epoch actually completes clean.
        let snap = p.force_finalize(1).expect("epoch seals");
        assert!(snap.excluded.is_empty(), "queued reports were credited");
        assert_eq!(snap.consistent_total(), 46);
        assert_eq!(p.stats().discarded_values, 0);
    }

    #[test]
    fn membership_is_shared_across_epochs_not_cloned() {
        let mut p = two_device_pipeline();
        let e1 = p.begin_snapshot().unwrap();
        let e2 = p.begin_snapshot().unwrap();
        let m1 = Arc::as_ptr(&p.assemblies[&e1].membership);
        let m2 = Arc::as_ptr(&p.assemblies[&e2].membership);
        assert_eq!(m1, m2, "same registration state ⇒ shared membership");
        // Registration change rebuilds membership for later epochs only.
        p.register_device(2, vec![UnitId::ingress(2, 0)]);
        let e3 = p.begin_snapshot().unwrap();
        let m3 = Arc::as_ptr(&p.assemblies[&e3].membership);
        assert_ne!(m1, m3);
    }

    #[test]
    fn running_total_overflow_is_flagged_per_report() {
        let mut p = PipelineObserver::new(PipelineConfig::for_modulus(8));
        p.register_device(0, vec![UnitId::ingress(0, 0), UnitId::egress(0, 0)]);
        p.begin_snapshot().unwrap();
        p.on_report(0, report(UnitId::ingress(0, 0), 1, u64::MAX - 1));
        assert_eq!(p.stats().total_overflow, 0);
        let snap = p.on_report(0, report(UnitId::egress(0, 0), 1, 5)).unwrap();
        assert_eq!(
            p.stats().total_overflow,
            1,
            "flagged on the offending report"
        );
        assert_eq!(snap.consistent_total(), u64::MAX, "sealed total saturates");
        assert_eq!(snap.checked_consistent_total(), None);
    }

    #[test]
    fn sealed_queue_stalls_finalize_without_dropping() {
        let mut cfg = PipelineConfig::for_modulus(8);
        cfg.sealed_capacity = 1;
        let mut p = PipelineObserver::new(cfg);
        p.register_device(0, vec![UnitId::ingress(0, 0)]);
        p.begin_snapshot().unwrap();
        p.begin_snapshot().unwrap();
        assert!(p.offer_report(0, report(UnitId::ingress(0, 0), 1, 1)));
        assert!(p.offer_report(0, report(UnitId::ingress(0, 0), 2, 2)));
        p.pump();
        // Only one snapshot fits the sealed queue; the other epoch waits.
        assert_eq!(p.stats().peak_sealed_depth, 1);
        assert_eq!(p.take_finalized().map(|s| s.epoch), Some(1));
        p.pump();
        assert_eq!(p.take_finalized().map(|s| s.epoch), Some(2));
        assert_eq!(p.finalized_count(), 2);
    }

    #[test]
    #[should_panic(expected = "epoch counter overflow")]
    fn epoch_counter_overflow_panics_with_context() {
        let mut p = two_device_pipeline();
        p.next_epoch = u64::MAX;
        p.begin_snapshot();
    }

    #[test]
    fn any_observer_delegates_to_both_variants() {
        for mut any in [
            AnyObserver::reference(ObserverConfig::for_modulus(8)),
            AnyObserver::pipeline(PipelineConfig::for_modulus(8)),
        ] {
            any.register_device(0, vec![UnitId::ingress(0, 0)]);
            assert_eq!(any.device_ids(), vec![0]);
            let epoch = any.begin_snapshot().unwrap();
            assert_eq!(any.pending_epochs(), vec![epoch]);
            assert_eq!(any.outstanding(), 1);
            assert_eq!(any.lagging_devices(epoch), BTreeSet::from([0]));
            let snap = any
                .on_report(0, report(UnitId::ingress(0, 0), epoch, 3))
                .unwrap();
            assert_eq!(snap.epoch, epoch);
            assert_eq!(any.finalized_count(), 1);
            assert!(!any.backpressured());
        }
    }
}
