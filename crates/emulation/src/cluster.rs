//! Cluster wiring, the observer loop, and graceful shutdown.
//!
//! A [`Cluster`] stands up a line topology of devices (thread each), a
//! traffic generator thread per host, and runs the observer inline:
//! schedule an epoch, broadcast `Initiate` at the wall-clock instant,
//! collect reports, repeat. Shutdown is graceful: generators stop first,
//! devices drain their inboxes, the observer drains reports, threads join.

use crate::device::{Device, DeviceConfig, PortTarget};
use crate::messages::{DeviceMsg, Frame, ObserverMsg};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::observer::{GlobalSnapshot, ObserverConfig};
use speedlight_core::pipeline::{AnyObserver, PipelineConfig};
use speedlight_core::Epoch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as WallDuration, Instant as WallInstant};
use wire::FlowKey;

/// Live-emulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of switches in the line.
    pub switches: u16,
    /// Snapshot ID modulus.
    pub modulus: u16,
    /// Channel-state variant?
    pub channel_state: bool,
    /// Snapshots to take.
    pub snapshots: usize,
    /// Wall-clock interval between snapshots.
    pub interval: WallDuration,
    /// Traffic rate per host generator (frames/s).
    pub host_rate: u64,
    /// Per-snapshot completion timeout.
    pub timeout: WallDuration,
    /// Record per-device replay logs for the conformance oracle.
    pub record_deliveries: bool,
    /// Fault schedule: `(device, k)` disables snapshot participation on
    /// `device` just before the `k`-th snapshot (0-based) is scheduled.
    pub fail_devices: Vec<(u16, usize)>,
    /// Run the monolithic reference observer instead of the staged
    /// pipeline (differential testing against the fabric's default).
    pub reference_observer: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            switches: 3,
            modulus: 64,
            channel_state: false,
            snapshots: 10,
            interval: WallDuration::from_millis(10),
            host_rate: 20_000,
            timeout: WallDuration::from_millis(500),
            record_deliveries: false,
            fail_devices: Vec::new(),
            reference_observer: false,
        }
    }
}

/// What a finished run produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Completed snapshots, in epoch order.
    pub snapshots: Vec<GlobalSnapshot>,
    /// Wall-clock sync spread per epoch (max − min progress stamp), µs.
    pub sync_spread_us: BTreeMap<Epoch, f64>,
    /// Frames generated per host.
    pub frames_sent: u64,
    /// Epochs that only finished via `force_finalize` (device timeout).
    pub forced_epochs: Vec<Epoch>,
    /// Per-device replay logs (empty unless recording was enabled).
    pub delivery_logs: BTreeMap<u16, Vec<DeliveryEvent>>,
}

/// A live cluster run.
pub struct Cluster {
    cfg: ClusterConfig,
}

impl Cluster {
    /// Prepare a cluster with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        Cluster { cfg }
    }

    /// Run to completion and report.
    ///
    /// Topology: a line of `switches` devices, one host at each end
    /// (host 0 on the left, host 1 on the right), traffic flowing both
    /// ways so snapshot IDs piggyback across every inter-switch link.
    pub fn run(self) -> ClusterReport {
        let cfg = self.cfg;
        let n = cfg.switches;
        assert!(n >= 1);
        let t0 = WallInstant::now();

        // Channels: one inbox per device.
        let (txs, rxs): (Vec<Sender<DeviceMsg>>, Vec<Receiver<DeviceMsg>>) =
            (0..n).map(|_| bounded::<DeviceMsg>(65_536)).unzip();
        let (obs_tx, obs_rx) = unbounded::<ObserverMsg>();

        // Build device configs for the line: port 0 = left, port 1 = right.
        let mut observer = if cfg.reference_observer {
            AnyObserver::reference(ObserverConfig::for_modulus(cfg.modulus))
        } else {
            AnyObserver::pipeline(PipelineConfig::for_modulus(cfg.modulus))
        };
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for d in 0..n {
            let left = if d == 0 {
                PortTarget::Host(0)
            } else {
                PortTarget::Device {
                    tx: txs[usize::from(d) - 1].clone(),
                    peer_port: 1,
                }
            };
            let right = if d == n - 1 {
                PortTarget::Host(1)
            } else {
                PortTarget::Device {
                    tx: txs[usize::from(d) + 1].clone(),
                    peer_port: 0,
                }
            };
            let dev_cfg = DeviceConfig {
                id: d,
                modulus: cfg.modulus,
                channel_state: cfg.channel_state,
                targets: vec![left, right],
                fib: BTreeMap::from([(0u32, 0u16), (1u32, 1u16)]),
                host_ports: vec![d == 0, d == n - 1],
                record_deliveries: cfg.record_deliveries,
            };
            observer.register_device(d, Device::unit_ids(&dev_cfg));
            let device = Device::new(dev_cfg, obs_tx.clone(), t0);
            let rx = rxs[usize::from(d)].clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("device-{d}"))
                    .spawn(move || device.run(rx))
                    .expect("spawn device"),
            );
        }

        // Host generators: host 0 sends rightwards into device 0 port 0;
        // host 1 sends leftwards into device n-1 port 1.
        let stop = Arc::new(AtomicBool::new(false));
        let frames_sent = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut gen_handles = Vec::new();
        let gen_specs = [
            (txs[0].clone(), 0u16, 0u32, 1u32),
            (txs[usize::from(n) - 1].clone(), 1u16, 1u32, 0u32),
        ];
        for (tx, port, src, dst) in gen_specs {
            let stop = Arc::clone(&stop);
            let sent = Arc::clone(&frames_sent);
            let gap = WallDuration::from_nanos(1_000_000_000 / cfg.host_rate.max(1));
            gen_handles.push(
                std::thread::Builder::new()
                    .name(format!("host-{src}"))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            let frame = Frame {
                                flow: FlowKey::tcp(src, dst, 10_000, 80),
                                dst_host: dst,
                                size: 700,
                                shim: None,
                            };
                            if tx.send(DeviceMsg::Frame { port, frame }).is_err() {
                                break;
                            }
                            // invariants: allow(relaxed-ordering) — pure frame statistic; no other memory depends on its order
                            sent.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(gap);
                        }
                    })
                    .expect("spawn host"),
            );
        }

        // Observer loop (inline on this thread).
        let mut snapshots = Vec::new();
        let mut forced_epochs = Vec::new();
        let mut sync: BTreeMap<Epoch, (u64, u64)> = BTreeMap::new();
        for k in 0..cfg.snapshots {
            for &(d, at) in &cfg.fail_devices {
                if at == k {
                    let _ =
                        txs[usize::from(d)].send(DeviceMsg::SetSnapshotEnabled { enabled: false });
                }
            }
            // `k as u32` would silently truncate a >4B snapshot count and
            // `Duration * u32` aborts opaquely on overflow — fail with a
            // diagnosable message for both.
            let reps = u32::try_from(k + 1).expect("snapshot count exceeds u32 schedule range");
            let fire_at = t0
                + cfg
                    .interval
                    .checked_mul(reps)
                    .expect("snapshot schedule overflows wall-clock Duration");
            // PTP-scheduled initiation: all devices told "now" when the
            // wall clock reaches the instant (the broadcast loop below is
            // the real-world jitter source we are measuring).
            while WallInstant::now() < fire_at {
                std::hint::spin_loop();
            }
            let Some(epoch) = observer.begin_snapshot() else {
                continue;
            };
            for tx in &txs {
                let _ = tx.send(DeviceMsg::Initiate { epoch });
            }
            // Collect until this epoch completes (newer reports are for
            // later epochs and are buffered by the observer itself).
            let deadline = WallInstant::now() + cfg.timeout;
            'collect: while WallInstant::now() < deadline {
                match obs_rx.recv_timeout(WallDuration::from_millis(5)) {
                    Ok(ObserverMsg::Report { device, report }) => {
                        if let Some(snap) = observer.on_report(device, report) {
                            snapshots.push(snap);
                            break 'collect;
                        }
                    }
                    Ok(ObserverMsg::Progress { epoch, at_nanos }) => {
                        let e = sync.entry(epoch).or_insert((at_nanos, at_nanos));
                        e.0 = e.0.min(at_nanos);
                        e.1 = e.1.max(at_nanos);
                    }
                    Ok(ObserverMsg::DeviceDone { .. }) => {}
                    Err(_) => {}
                }
            }
            if observer.pending_epochs().contains(&epoch) {
                if let Some(snap) = observer.force_finalize(epoch) {
                    forced_epochs.push(snap.epoch);
                    snapshots.push(snap);
                }
            }
        }

        // ---- Graceful shutdown ----
        stop.store(true, Ordering::Release);
        for h in gen_handles {
            let _ = h.join();
        }
        for tx in &txs {
            let _ = tx.send(DeviceMsg::Shutdown);
        }
        let mut done = 0;
        let mut delivery_logs = BTreeMap::new();
        let drain_deadline = WallInstant::now() + WallDuration::from_secs(5);
        while done < n && WallInstant::now() < drain_deadline {
            match obs_rx.recv_timeout(WallDuration::from_millis(20)) {
                Ok(ObserverMsg::DeviceDone { device, deliveries }) => {
                    if !deliveries.is_empty() {
                        delivery_logs.insert(device, deliveries);
                    }
                    done += 1;
                }
                Ok(ObserverMsg::Progress { epoch, at_nanos }) => {
                    let e = sync.entry(epoch).or_insert((at_nanos, at_nanos));
                    e.0 = e.0.min(at_nanos);
                    e.1 = e.1.max(at_nanos);
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
        for h in handles {
            let _ = h.join();
        }

        snapshots.sort_by_key(|s| s.epoch);
        ClusterReport {
            snapshots,
            sync_spread_us: sync
                .into_iter()
                .map(|(e, (lo, hi))| (e, (hi - lo) as f64 / 1e3))
                .collect(),
            // invariants: allow(relaxed-ordering) — read after every generator joined; join supplies the happens-before edge
            frames_sent: frames_sent.load(Ordering::Relaxed),
            forced_epochs,
            delivery_logs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedlight_core::observer::UnitOutcome;

    #[test]
    fn live_cluster_takes_consistent_snapshots() {
        let report = Cluster::new(ClusterConfig {
            switches: 3,
            snapshots: 6,
            interval: WallDuration::from_millis(8),
            host_rate: 30_000,
            ..ClusterConfig::default()
        })
        .run();
        assert!(
            report.snapshots.len() >= 5,
            "got {} snapshots",
            report.snapshots.len()
        );
        assert!(report.frames_sent > 100);
        // Every unit reported a usable value (no-CS mode: Value/Inferred).
        for snap in &report.snapshots {
            assert!(
                snap.fully_consistent(),
                "epoch {} outcomes: {:?}",
                snap.epoch,
                snap.units
                    .values()
                    .filter(|o| !matches!(
                        o,
                        UnitOutcome::Value { .. } | UnitOutcome::Inferred { .. }
                    ))
                    .collect::<Vec<_>>()
            );
        }
        // Counter totals are monotone across epochs (consistent cuts of a
        // monotone counter).
        let totals: Vec<u64> = report
            .snapshots
            .iter()
            .map(|s| s.consistent_total())
            .collect();
        for w in totals.windows(2) {
            assert!(w[1] >= w[0], "totals {totals:?}");
        }
    }

    #[test]
    fn live_sync_spread_is_measured() {
        let report = Cluster::new(ClusterConfig {
            switches: 2,
            snapshots: 4,
            ..ClusterConfig::default()
        })
        .run();
        assert!(!report.sync_spread_us.is_empty());
        for (&epoch, &spread) in &report.sync_spread_us {
            // Real OS jitter: spreads are positive and bounded by a sane
            // wall-clock budget (well under the 10 ms interval).
            assert!(spread >= 0.0, "epoch {epoch}");
            assert!(spread < 10_000.0, "epoch {epoch} spread {spread} us");
        }
    }

    #[test]
    fn channel_state_cluster_completes_with_traffic() {
        let report = Cluster::new(ClusterConfig {
            switches: 2,
            channel_state: true,
            snapshots: 4,
            interval: WallDuration::from_millis(15),
            host_rate: 50_000,
            timeout: WallDuration::from_millis(2_000),
            ..ClusterConfig::default()
        })
        .run();
        assert!(!report.snapshots.is_empty());
        let consistent = report
            .snapshots
            .iter()
            .filter(|s| s.fully_consistent())
            .count();
        assert!(
            consistent >= 1,
            "at least one fully consistent CS snapshot expected"
        );
    }
}
