//! The device actor: a switch's data plane and (colocated) control plane
//! running on one thread.
//!
//! The real system puts the Tofino and its CPU in one box with a PCIe
//! notification path; here both halves share a thread, with the
//! notification queue in between — the control plane drains it after each
//! frame, exactly the "data plane exports, CPU consumes" split of §5.3/§6.

use crate::messages::{DeviceMsg, Frame, ObserverMsg};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::control::ControlPlane;
use speedlight_core::types::{ChannelId, Direction, Notification, UnitId, CPU_CHANNEL};
use speedlight_core::unit::{DataPlaneUnit, UnitConfig};
use speedlight_core::{Epoch, WrappedId};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant as WallInstant;
use wire::SnapshotHeader;

/// Where a device port leads.
#[derive(Clone)]
pub enum PortTarget {
    /// Link to another device's port.
    Device {
        /// Peer's inbox.
        tx: Sender<DeviceMsg>,
        /// Peer's ingress port number.
        peer_port: u16,
    },
    /// A host sink (frames are counted and dropped).
    Host(u32),
    /// Unwired.
    Unused,
}

/// Static device configuration.
pub struct DeviceConfig {
    /// Device ID.
    pub id: u16,
    /// Snapshot ID modulus.
    pub modulus: u16,
    /// Channel-state variant?
    pub channel_state: bool,
    /// Per-port targets (defines the port count).
    pub targets: Vec<PortTarget>,
    /// FIB: destination host → egress port.
    pub fib: BTreeMap<u32, u16>,
    /// Host-facing ports (strip the shim on egress; ingress channel not
    /// considered for completion).
    pub host_ports: Vec<bool>,
    /// Record a per-delivery replay log for the conformance oracle.
    pub record_deliveries: bool,
}

/// The running state of a device actor.
pub struct Device {
    cfg: DeviceConfig,
    ingress: Vec<DataPlaneUnit>,
    egress: Vec<DataPlaneUnit>,
    /// Per-port receive counters (the snapshotted metric: packets seen at
    /// ingress / egress).
    ing_count: Vec<u64>,
    eg_count: Vec<u64>,
    cp: ControlPlane,
    notif_queue: VecDeque<Notification>,
    observer: Sender<ObserverMsg>,
    epoch_shadow: BTreeMap<UnitId, Epoch>,
    t0: WallInstant,
    /// Snapshot participation (fault injection flips this off).
    snapshot_enabled: bool,
    /// Replay log (when `cfg.record_deliveries`).
    delivery_log: Option<Vec<DeliveryEvent>>,
    /// Per-(unit, channel) monotone shadow of unwrapped tags, feeding the
    /// replay log only (never the protocol).
    ls_shadow: BTreeMap<(UnitId, u16), Epoch>,
}

struct Units<'a> {
    ingress: &'a mut [DataPlaneUnit],
    egress: &'a mut [DataPlaneUnit],
}

impl speedlight_core::control::Registers for Units<'_> {
    fn read_sid(&mut self, unit: UnitId) -> WrappedId {
        self.unit(unit).sid()
    }
    fn read_last_seen(&mut self, unit: UnitId, channel: ChannelId) -> WrappedId {
        self.unit(unit).last_seen(channel)
    }
    fn take_slot(
        &mut self,
        unit: UnitId,
        id: WrappedId,
    ) -> Option<speedlight_core::unit::SnapSlot> {
        self.unit_mut(unit).take_slot(id)
    }
}

impl Units<'_> {
    fn unit(&self, id: UnitId) -> &DataPlaneUnit {
        let bank = match id.direction {
            Direction::Ingress => &*self.ingress,
            Direction::Egress => &*self.egress,
        };
        let Some(unit) = bank.get(usize::from(id.port)) else {
            panic!("unit id {id:?} out of range");
        };
        unit
    }
    fn unit_mut(&mut self, id: UnitId) -> &mut DataPlaneUnit {
        let bank = match id.direction {
            Direction::Ingress => &mut *self.ingress,
            Direction::Egress => &mut *self.egress,
        };
        let Some(unit) = bank.get_mut(usize::from(id.port)) else {
            panic!("unit id {id:?} out of range");
        };
        unit
    }
}

impl Device {
    /// Build a device actor.
    pub fn new(cfg: DeviceConfig, observer: Sender<ObserverMsg>, t0: WallInstant) -> Device {
        let ports = cfg.targets.len() as u16;
        let mk = |unit, channels| {
            DataPlaneUnit::new(UnitConfig {
                unit,
                modulus: cfg.modulus,
                channel_state: cfg.channel_state,
                num_channels: channels,
            })
        };
        let ingress: Vec<_> = (0..ports)
            .map(|p| mk(UnitId::ingress(cfg.id, p), 1))
            .collect();
        let egress: Vec<_> = (0..ports)
            .map(|p| mk(UnitId::egress(cfg.id, p), ports))
            .collect();
        let mut cp = ControlPlane::new(cfg.id, cfg.modulus, cfg.channel_state);
        for p in 0..ports {
            // Ingress external channel considered only for switch peers.
            let considered = matches!(cfg.targets[usize::from(p)], PortTarget::Device { .. });
            cp.register_unit(UnitId::ingress(cfg.id, p), 1, vec![considered]);
            cp.register_unit(
                UnitId::egress(cfg.id, p),
                ports,
                vec![true; usize::from(ports)],
            );
        }
        let delivery_log = cfg.record_deliveries.then(Vec::new);
        Device {
            ingress,
            egress,
            ing_count: vec![0; usize::from(ports)],
            eg_count: vec![0; usize::from(ports)],
            cp,
            notif_queue: VecDeque::new(),
            observer,
            epoch_shadow: BTreeMap::new(),
            cfg,
            t0,
            snapshot_enabled: true,
            delivery_log,
            ls_shadow: BTreeMap::new(),
        }
    }

    /// Unit IDs of this device (observer registration).
    pub fn unit_ids(cfg: &DeviceConfig) -> Vec<UnitId> {
        (0..cfg.targets.len() as u16)
            .flat_map(|p| [UnitId::ingress(cfg.id, p), UnitId::egress(cfg.id, p)])
            .collect()
    }

    fn track(&mut self, n: &Notification) {
        let entry = self.epoch_shadow.entry(n.unit).or_insert(0);
        let new = n.new_sid.unwrap_from(*entry);
        if new > *entry {
            *entry = new;
            let at = WallInstant::now().duration_since(self.t0).as_nanos() as u64;
            let _ = self.observer.send(ObserverMsg::Progress {
                epoch: new,
                at_nanos: at,
            });
        }
    }

    fn push_notification(&mut self, n: Notification) {
        self.track(&n);
        self.notif_queue.push_back(n);
    }

    /// Drain the notification queue through the control plane.
    fn drain_cp(&mut self) {
        while let Some(n) = self.notif_queue.pop_front() {
            let mut units = Units {
                ingress: &mut self.ingress,
                egress: &mut self.egress,
            };
            for report in self.cp.on_notification(&n, &mut units) {
                let _ = self.observer.send(ObserverMsg::Report {
                    device: self.cfg.id,
                    report,
                });
            }
        }
    }

    /// Append one delivery to the replay log (no-op unless recording).
    ///
    /// `true_epoch` carries the known unwrapped epoch for CPU-channel
    /// initiations (their epoch stream is not monotone under retries);
    /// everything else unwraps against the per-channel monotone shadow.
    #[allow(clippy::too_many_arguments)]
    fn record_delivery(
        &mut self,
        unit: UnitId,
        channel: ChannelId,
        wrapped: WrappedId,
        true_epoch: Option<Epoch>,
        local_state: u64,
        contrib: u64,
        init: bool,
    ) {
        let Some(log) = self.delivery_log.as_mut() else {
            return;
        };
        let tag = match true_epoch {
            Some(e) => e,
            None => {
                let shadow = self.ls_shadow.entry((unit, channel.0)).or_insert(0);
                let t = wrapped.unwrap_from(*shadow);
                *shadow = t;
                t
            }
        };
        log.push(DeliveryEvent {
            unit,
            channel,
            tag,
            local_state,
            contrib,
            init,
        });
    }

    fn decode_shim(frame: &Frame) -> Option<SnapshotHeader> {
        frame
            .shim
            .as_ref()
            .and_then(|b| SnapshotHeader::decode(&mut b.as_ref()).ok())
    }

    /// Process a frame arriving on `port`; forwards it onward.
    pub fn on_frame(&mut self, port: u16, mut frame: Frame) {
        let modulus = self.cfg.modulus;
        if !self.snapshot_enabled {
            // A failed snapshot agent: forwarding (and the metric) keeps
            // working, shims pass through untouched, no unit processing.
            self.ing_count[usize::from(port)] += 1;
            let Some(&out_port) = self.cfg.fib.get(&frame.dst_host) else {
                return;
            };
            self.eg_count[usize::from(out_port)] += 1;
            if let PortTarget::Device { tx, peer_port } = &self.cfg.targets[usize::from(out_port)] {
                let _ = tx.send(DeviceMsg::Frame {
                    port: *peer_port,
                    frame,
                });
            }
            return;
        }
        // ---- Ingress unit ----
        let pre = self.ing_count[usize::from(port)];
        let in_sid = match Self::decode_shim(&frame) {
            Some(hdr) => {
                let wrapped = WrappedId::from_raw(hdr.snapshot_id % modulus, modulus);
                self.record_delivery(
                    UnitId::ingress(self.cfg.id, port),
                    ChannelId(0),
                    wrapped,
                    None,
                    pre,
                    1,
                    false,
                );
                let out =
                    self.ingress[usize::from(port)].on_packet(ChannelId(0), wrapped, pre, 1, false);
                if let Some(n) = out.notification {
                    self.push_notification(n);
                }
                out.out_sid
            }
            None => self.ingress[usize::from(port)].sid(),
        };
        self.ing_count[usize::from(port)] += 1;

        // ---- Forwarding ----
        let Some(&out_port) = self.cfg.fib.get(&frame.dst_host) else {
            self.drain_cp();
            return;
        };

        // ---- Egress unit (channel = ingress port) ----
        let pre = self.eg_count[usize::from(out_port)];
        self.record_delivery(
            UnitId::egress(self.cfg.id, out_port),
            ChannelId(port),
            in_sid,
            None,
            pre,
            1,
            false,
        );
        let out =
            self.egress[usize::from(out_port)].on_packet(ChannelId(port), in_sid, pre, 1, false);
        if let Some(n) = out.notification {
            self.push_notification(n);
        }
        self.eg_count[usize::from(out_port)] += 1;

        // ---- Transmit ----
        match &self.cfg.targets[usize::from(out_port)] {
            PortTarget::Device { tx, peer_port } => {
                let hdr = SnapshotHeader {
                    packet_type: wire::PacketType::Data,
                    snapshot_id: out.out_sid.raw(),
                    channel_id: port,
                };
                frame.shim = Some(Bytes::from(hdr.encode_to_vec()));
                let _ = tx.send(DeviceMsg::Frame {
                    port: *peer_port,
                    frame,
                });
            }
            PortTarget::Host(_) => { /* shim stripped; frame sunk */ }
            PortTarget::Unused => {}
        }
        self.drain_cp();
    }

    /// Control-plane initiation: CPU → every ingress → same-port egress
    /// (Fig. 6 path 3).
    pub fn on_initiate(&mut self, epoch: Epoch) {
        if !self.snapshot_enabled {
            return;
        }
        let wrapped = WrappedId::wrap(epoch, self.cfg.modulus);
        for p in 0..self.cfg.targets.len() as u16 {
            self.record_delivery(
                UnitId::ingress(self.cfg.id, p),
                CPU_CHANNEL,
                wrapped,
                Some(epoch),
                self.ing_count[usize::from(p)],
                0,
                true,
            );
            let out = self.ingress[usize::from(p)].on_packet(
                CPU_CHANNEL,
                wrapped,
                self.ing_count[usize::from(p)],
                0,
                true,
            );
            if let Some(n) = out.notification {
                self.push_notification(n);
            }
            // Same-port egress; dropped after processing.
            self.record_delivery(
                UnitId::egress(self.cfg.id, p),
                ChannelId(p),
                out.out_sid,
                None,
                self.eg_count[usize::from(p)],
                0,
                true,
            );
            let eg = self.egress[usize::from(p)].on_packet(
                ChannelId(p),
                out.out_sid,
                self.eg_count[usize::from(p)],
                0,
                true,
            );
            if let Some(n) = eg.notification {
                self.push_notification(n);
            }
        }
        self.drain_cp();
    }

    /// Run the actor loop until `Shutdown`.
    pub fn run(mut self, inbox: Receiver<DeviceMsg>) {
        for msg in inbox.iter() {
            match msg {
                DeviceMsg::Frame { port, frame } => self.on_frame(port, frame),
                DeviceMsg::Initiate { epoch } => self.on_initiate(epoch),
                DeviceMsg::SetSnapshotEnabled { enabled } => self.snapshot_enabled = enabled,
                DeviceMsg::Shutdown => break,
            }
        }
        let _ = self.observer.send(ObserverMsg::DeviceDone {
            device: self.cfg.id,
            deliveries: self.delivery_log.take().unwrap_or_default(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn two_port_device(observer: Sender<ObserverMsg>) -> Device {
        let cfg = DeviceConfig {
            id: 0,
            modulus: 8,
            channel_state: false,
            targets: vec![PortTarget::Host(0), PortTarget::Host(1)],
            fib: BTreeMap::from([(0, 0), (1, 1)]),
            host_ports: vec![true, true],
            record_deliveries: false,
        };
        Device::new(cfg, observer, WallInstant::now())
    }

    #[test]
    fn initiation_advances_all_units_and_reports() {
        let (tx, rx) = unbounded();
        let mut dev = two_port_device(tx);
        dev.on_initiate(1);
        // No channel state: completion is immediate → 4 unit reports.
        let mut reports = 0;
        while let Ok(msg) = rx.try_recv() {
            if let ObserverMsg::Report { report, .. } = msg {
                assert_eq!(report.epoch, 1);
                reports += 1;
            }
        }
        assert_eq!(reports, 4);
    }

    #[test]
    fn frames_flow_and_counters_snapshot() {
        let (tx, rx) = unbounded();
        let mut dev = two_port_device(tx);
        // 3 frames in port 0, out port 1 (dst host 1).
        for _ in 0..3 {
            dev.on_frame(
                0,
                Frame {
                    flow: wire::FlowKey::tcp(0, 1, 1, 1),
                    dst_host: 1,
                    size: 100,
                    shim: None,
                },
            );
        }
        dev.on_initiate(1);
        let mut values = BTreeMap::new();
        while let Ok(msg) = rx.try_recv() {
            if let ObserverMsg::Report { report, .. } = msg {
                if let speedlight_core::control::ReportValue::Value { local, .. } = report.value {
                    values.insert(report.unit, local);
                }
            }
        }
        assert_eq!(values[&UnitId::ingress(0, 0)], 3);
        assert_eq!(values[&UnitId::egress(0, 1)], 3);
        assert_eq!(values[&UnitId::ingress(0, 1)], 0);
    }

    #[test]
    fn shutdown_signals_done() {
        let (otx, orx) = unbounded();
        let (dtx, drx) = unbounded();
        let dev = two_port_device(otx);
        let handle = std::thread::spawn(move || dev.run(drx));
        dtx.send(DeviceMsg::Shutdown).unwrap();
        handle.join().unwrap();
        let done = orx
            .try_iter()
            .any(|m| matches!(m, ObserverMsg::DeviceDone { device: 0, .. }));
        assert!(done);
    }
}
