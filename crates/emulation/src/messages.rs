//! Channel message types of the live emulation.

use bytes::Bytes;
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::control::Report;
use speedlight_core::Epoch;
use wire::FlowKey;

/// A frame on a link: logical packet metadata plus the encoded snapshot
/// shim (present once a snapshot-enabled device inserted it).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Flow five-tuple.
    pub flow: FlowKey,
    /// Destination host.
    pub dst_host: u32,
    /// Payload size in bytes (accounting only).
    pub size: u32,
    /// Encoded snapshot header ([`wire::SnapshotHeader`]), if present.
    pub shim: Option<Bytes>,
}

/// Commands and frames delivered to a device actor.
#[derive(Debug)]
pub enum DeviceMsg {
    /// A frame arriving on `port`.
    Frame {
        /// Ingress port.
        port: u16,
        /// The frame.
        frame: Frame,
    },
    /// Control-plane command: initiate snapshot `epoch` now.
    Initiate {
        /// The epoch to initiate.
        epoch: Epoch,
    },
    /// Fault injection: enable/disable snapshot participation. A disabled
    /// device keeps forwarding frames (shim untouched) but skips all unit
    /// processing and ignores initiations, like a crashed snapshot agent.
    SetSnapshotEnabled {
        /// New participation state.
        enabled: bool,
    },
    /// Drain and terminate.
    Shutdown,
}

/// Messages from device control planes to the observer.
#[derive(Debug)]
pub enum ObserverMsg {
    /// A finished per-unit measurement.
    Report {
        /// Reporting device.
        device: u16,
        /// The report.
        report: Report,
    },
    /// Wall-clock progress stamp for the sync measurement: the device saw
    /// some unit advance to `epoch` at `at_nanos` (monotonic clock).
    Progress {
        /// The epoch.
        epoch: Epoch,
        /// Monotonic timestamp, nanoseconds.
        at_nanos: u64,
    },
    /// A device finished shutting down.
    DeviceDone {
        /// The device.
        device: u16,
        /// The device's replay log (empty unless recording was enabled).
        deliveries: Vec<DeliveryEvent>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::SnapshotHeader;

    #[test]
    fn frames_carry_encoded_shims() {
        let hdr = SnapshotHeader::data(5);
        let frame = Frame {
            flow: FlowKey::tcp(1, 2, 3, 4),
            dst_host: 2,
            size: 100,
            shim: Some(Bytes::from(hdr.encode_to_vec())),
        };
        let decoded = SnapshotHeader::decode(&mut frame.shim.as_ref().unwrap().as_ref()).unwrap();
        assert_eq!(decoded, hdr);
    }
}
