//! Threaded live emulation of a Speedlight deployment.
//!
//! Where the `fabric` crate *simulates* switches under a virtual clock,
//! this crate *runs* them: one OS thread per device (data plane + control
//! plane, like the switch ASIC + CPU sharing a box), crossbeam channels as
//! links (FIFO, like the wire), real host generator threads, and an
//! observer thread that schedules snapshots at wall-clock instants — so
//! the synchronization you measure here includes the machine's *actual*
//! scheduling jitter, the live analogue of Fig. 9.
//!
//! The module split:
//!
//! * [`messages`] — the frame/command types flowing over the channels
//!   (snapshot headers travel encoded, through the real `wire` codec);
//! * [`device`] — the device actor: ingress/egress units, forwarding,
//!   colocated control plane, notification handling;
//! * [`cluster`] — wiring, the observer loop, graceful shutdown, and the
//!   demo harness used by tests/examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod device;
pub mod messages;

pub use cluster::{Cluster, ClusterConfig, ClusterReport};
