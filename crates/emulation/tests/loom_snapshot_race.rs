//! Loom regression for the §6 register-polling race: two devices
//! exchanging a snapshot marker while the control plane polls their
//! snapshot-ID registers concurrently.
//!
//! Causality is the invariant. Device B only advances to epoch 1 after
//! receiving A's marker, and A stamps its own register before sending
//! the marker — so no poll may ever observe B at epoch 1 while A still
//! reads epoch 0. A controller trusting such a read would conclude "B
//! complete, A not yet initiated" and mis-time the §6 completion check.
//! The second test pins down why the order matters: stamping after the
//! send reintroduces the race, and the model must find it.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, ModelQueue};
use loom::thread;

/// How many times device B polls its inbox before giving up. try_recv is
/// a scheduling point, so a bounded retry keeps the state space finite;
/// executions where B gives up leave its register at 0, which satisfies
/// the invariant vacuously.
const RECV_RETRIES: usize = 3;

fn marker_exchange(stamp_before_send: bool) {
    let reg_a = Arc::new(AtomicU64::new(0));
    let reg_b = Arc::new(AtomicU64::new(0));
    let link: Arc<ModelQueue<u64>> = Arc::new(ModelQueue::new());

    // Device A: initiate epoch 1 and forward the in-band marker.
    let a = {
        let reg_a = Arc::clone(&reg_a);
        let link = Arc::clone(&link);
        thread::spawn(move || {
            if stamp_before_send {
                reg_a.store(1, Ordering::Release);
                link.send(1);
            } else {
                // BUG under test: marker leaves before the local stamp.
                link.send(1);
                reg_a.store(1, Ordering::Release);
            }
        })
    };

    // Device B: receive the marker, adopt its snapshot ID.
    let b = {
        let reg_b = Arc::clone(&reg_b);
        let link = Arc::clone(&link);
        thread::spawn(move || {
            for _ in 0..RECV_RETRIES {
                if let Some(sid) = link.try_recv() {
                    reg_b.store(sid, Ordering::Release);
                    return;
                }
                thread::yield_now();
            }
        })
    };

    // Control-plane poll, concurrent with both devices. Downstream (B)
    // is read first so the causal claim is checkable: if B has adopted
    // epoch 1, A's stamp happened strictly earlier and must be visible
    // to the later read.
    let b_seen = reg_b.load(Ordering::Acquire);
    let a_seen = reg_a.load(Ordering::Acquire);
    if b_seen == 1 {
        assert_eq!(
            a_seen, 1,
            "poll observed downstream register at epoch 1 while upstream still reads 0"
        );
    }

    a.join().unwrap();
    b.join().unwrap();
}

/// Stamp-then-send: the poll can never catch B ahead of A.
#[test]
fn poll_never_sees_downstream_ahead_of_upstream() {
    loom::model(|| marker_exchange(true));
}

/// Send-then-stamp is the race §6 warns about; the model must exhibit
/// the interleaving where B has adopted the marker's ID before A's own
/// register update lands.
#[test]
fn send_before_stamp_race_is_caught() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| marker_exchange(false));
    });
    assert!(
        result.is_err(),
        "model failed to find the send-before-stamp polling race"
    );
}
