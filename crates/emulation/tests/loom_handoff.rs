//! Loom model of the register-update / notification-export handoff.
//!
//! §5.3/§6 of the paper: the data plane bumps a unit's snapshot-ID
//! register and exports a notification over PCIe; the CPU's completion
//! check polls the register and consumes the notification queue. The
//! protocol is only sound if the notification is visible *no later than*
//! the register value it explains — a poll that observes `sid == S` but
//! finds no notification for `S` concludes the unit is mid-snapshot
//! forever (the stale-poll hazard the `relaxed-ordering` lint guards).
//!
//! The models here check the ordering contract exhaustively over every
//! interleaving (sequentially-consistent exploration; Relaxed-specific
//! reorderings are covered by the lint plus the CI TSan job instead).

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, ModelQueue};
use loom::thread;

/// Correct handoff: export the notification, then publish the register.
/// No interleaving lets the poll observe the register without the
/// notification already being available.
#[test]
fn notification_visible_when_register_observed() {
    loom::model(|| {
        let sid = Arc::new(AtomicU64::new(0));
        let notifs: Arc<ModelQueue<u64>> = Arc::new(ModelQueue::new());

        let dp = {
            let sid = Arc::clone(&sid);
            let notifs = Arc::clone(&notifs);
            thread::spawn(move || {
                // Data plane: notification export first...
                notifs.send(1);
                // ...then the register update that makes it discoverable.
                sid.store(1, Ordering::Release);
            })
        };

        // Control plane poll (§6 completion check).
        if sid.load(Ordering::Acquire) == 1 {
            assert!(
                notifs.try_recv().is_some(),
                "poll observed sid=1 but its notification was not yet exported"
            );
        }

        dp.join().unwrap();
    });
}

/// The inverted handoff (register before export) is a real race: loom
/// must find the interleaving where the poll sees the register but the
/// queue is still empty. This keeps the model honest — if the checker
/// stopped exploring, this test would fail first.
#[test]
fn inverted_handoff_is_caught() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let sid = Arc::new(AtomicU64::new(0));
            let notifs: Arc<ModelQueue<u64>> = Arc::new(ModelQueue::new());

            let dp = {
                let sid = Arc::clone(&sid);
                let notifs = Arc::clone(&notifs);
                thread::spawn(move || {
                    // BUG under test: register published before the export.
                    sid.store(1, Ordering::Release);
                    notifs.send(1);
                })
            };

            if sid.load(Ordering::Acquire) == 1 {
                assert!(notifs.try_recv().is_some());
            }

            dp.join().unwrap();
        });
    });
    let err = result.expect_err("model must find the register-before-export race");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("schedule:"),
        "failure report should carry the offending schedule, got: {msg}"
    );
}

/// The single-writer register is monotone across the handoff: a poller
/// that reads twice never observes the snapshot ID moving backwards,
/// even with the data plane racing ahead to the next epoch.
#[test]
fn register_never_regresses_under_poll() {
    loom::model(|| {
        let sid = Arc::new(AtomicU64::new(0));

        let dp = {
            let sid = Arc::clone(&sid);
            thread::spawn(move || {
                sid.store(1, Ordering::Release);
                sid.store(2, Ordering::Release);
            })
        };

        let first = sid.load(Ordering::Acquire);
        let second = sid.load(Ordering::Acquire);
        assert!(
            second >= first,
            "snapshot register regressed: {first} -> {second}"
        );

        dp.join().unwrap();
    });
}
