//! Profiling-off regression gate: with `SPEEDLIGHT_OBS=off` (NoopSink)
//! and no `--profile-out`, the full fig9 scenario must reproduce the
//! committed serial snapshot digest byte-for-byte and pass the
//! `--check` regression gate against the committed baseline. This is
//! the "no hot-path tax when disabled" contract: the profiler hooks
//! compile to a branch on a `None` option, and the digest pin proves
//! they never perturb the simulation.

use std::process::Command;

const PINNED_FIG9_DIGEST: &str = "94f4c88c10ba015f";

fn repo_file(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn fig9_serial_digest_and_check_gate_with_profiling_disabled() {
    let dir = std::env::temp_dir().join("speedlight-noop-profile-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = dir.join("bench-fig9.json");
    let metrics_out = dir.join("bench-fig9-metrics.json");

    // --threshold 0.95 keeps the *gate machinery* exercised while
    // tolerating debug-profile builds: the committed baseline was
    // measured in release, and this test also runs under `cargo test`
    // without optimizations. CI's bench-smoke job runs the tight
    // release-mode threshold.
    let status = Command::new(env!("CARGO_BIN_EXE_bench_netsim"))
        .args([
            "--scenario",
            "fig9",
            "--seed",
            "9",
            "--trials",
            "1",
            "--expect-digest",
            PINNED_FIG9_DIGEST,
            "--threshold",
            "0.95",
        ])
        .arg("--out")
        .arg(&out)
        .arg("--metrics-out")
        .arg(&metrics_out)
        .arg("--check")
        .arg(repo_file("BENCH_netsim.json"))
        .env("SPEEDLIGHT_OBS", "off")
        .status()
        .expect("run bench_netsim");
    assert!(
        status.success(),
        "bench_netsim digest pin or check gate failed (exit {status})"
    );

    let report = std::fs::read_to_string(&out).expect("read bench report");
    assert!(
        report.contains(PINNED_FIG9_DIGEST),
        "report must carry the pinned serial digest"
    );
    assert!(
        !report.contains("\"profile\""),
        "no profile section when --profile-out is absent"
    );
}
