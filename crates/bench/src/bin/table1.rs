//! Regenerate Table 1 (resource usage of the Speedlight data plane).
fn main() {
    println!("{}", experiments::table1::run().render());
}
