//! Regenerate Fig. 10 (max sustained snapshot rate vs port count).
use experiments::fig10::{run, Fig10Config};
fn main() {
    let fig = run(&Fig10Config::default());
    println!("{}", fig.render());
}
