//! End-to-end DES throughput harness with a machine-readable output.
//!
//! Runs a fig9-scale scenario (dense all-to-all Poisson traffic with
//! periodic channel-state snapshots) on a selectable topology and shard
//! count, and emits `BENCH_netsim.json`: events/sec, wall-clock, events
//! dispatched, seed, and a deterministic digest of the completed snapshots
//! so a queue/hot-path change can prove it altered nothing observable.
//!
//! ```text
//! cargo run --release -p bench --bin bench_netsim -- [options]
//!   --scenario fig9|smoke     scenario scale (default fig9)
//!   --topology <spec>         leaf_spine (the paper's 2x2x3 testbed,
//!                             default) or fat_tree:<k> (even k >= 2)
//!   --shards <usize>          simulation shard count (default 1: the
//!                             serial Testbed; >= 2 runs the sharded
//!                             runtime — the snapshot digest is
//!                             shard-count-invariant by construction)
//!   --seed <u64>              master seed (default 9)
//!   --trials <usize>          measured trials (default 1). One extra
//!                             warm-up trial always runs first and is
//!                             excluded from every timing statistic;
//!                             median/min/stddev cover measured trials
//!                             only. Every trial's digest must agree.
//!   --out <path>              output JSON (default BENCH_netsim.json)
//!   --baseline <path>         embed speedup vs a previous run's JSON
//!   --check <path>            validate <path>'s schema and fail if this
//!                             run regresses >threshold below it
//!   --threshold <f64>         regression threshold for --check (default 0.30)
//!   --expect-digest <hex>     fail unless the snapshot digest equals
//!                             this value (shard-equivalence gating)
//!   --metrics-out <path>      obs metrics JSON from the warm-up trial,
//!                             plus the measured throughput (and, when
//!                             sharded, shard.count/windows/messages)
//!                             as gauges (default BENCH_netsim_metrics.json)
//!   --profile-out <path>      write the deterministic `speedlight-profile/v1`
//!                             artifact (per-domain events, cross-domain
//!                             messages, barrier-stall sim-time, window
//!                             count, observer-pipeline occupancy). The
//!                             profiler rides the warm-up trial, and the
//!                             cross-trial digest assertion proves it
//!                             perturbed nothing. A human stall summary
//!                             (per shard when sharded) goes to stderr —
//!                             the artifact itself is jobs- and
//!                             shard-count-invariant.
//! ```
//!
//! With `SPEEDLIGHT_TRACE=<path>` in the environment, the warm-up trial
//! runs with the JSONL trace sink enabled and its trace is written to
//! `<path>` (inspect it with the `speedlight-trace` binary). Because
//! tracing rides the warm-up trial, it never perturbs a measured wall
//! clock.

use fabric::network::DriverConfig;
use fabric::shard::{PartitionHint, ShardedTestbed};
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::Topology;
use netsim::dist::Dist;
use netsim::time::{Duration, Instant};
use telemetry::MetricKind;
use workloads::PoissonSource;

use std::process::ExitCode;
use std::time::Instant as WallInstant;

/// Scenario scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Fig. 9 scale: the full testbed under dense traffic, ~40 ms of
    /// simulated time (hundreds of thousands of events).
    Fig9,
    /// CI smoke scale: same shape, ~8 ms of simulated time.
    Smoke,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Fig9 => "fig9",
            Scenario::Smoke => "smoke",
        }
    }

    fn sim_horizon(self) -> Duration {
        match self {
            Scenario::Fig9 => Duration::from_millis(40),
            Scenario::Smoke => Duration::from_millis(8),
        }
    }
}

/// Benchmark topology axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoChoice {
    /// The paper's 2x2 leaf-spine testbed with 3 hosts per leaf.
    LeafSpine,
    /// A k-ary fat tree (even k): 5k²/4 switches, k³/4 hosts.
    FatTree(u16),
}

impl TopoChoice {
    fn parse(spec: &str) -> TopoChoice {
        if spec == "leaf_spine" {
            return TopoChoice::LeafSpine;
        }
        if let Some(k) = spec.strip_prefix("fat_tree:") {
            let k: u16 = k
                .parse()
                .unwrap_or_else(|_| panic!("bad fat-tree arity in {spec:?}"));
            return TopoChoice::FatTree(k);
        }
        panic!("unknown topology {spec:?} (leaf_spine|fat_tree:<k>)");
    }

    fn name(self) -> String {
        match self {
            TopoChoice::LeafSpine => "leaf_spine".into(),
            TopoChoice::FatTree(k) => format!("fat_tree:{k}"),
        }
    }

    fn build(self) -> Topology {
        match self {
            TopoChoice::LeafSpine => Topology::leaf_spine(2, 2, 3),
            TopoChoice::FatTree(k) => Topology::fat_tree(k),
        }
    }

    fn hint(self) -> PartitionHint {
        match self {
            TopoChoice::LeafSpine => PartitionHint::LeafSpine { leaves: 2 },
            TopoChoice::FatTree(k) => PartitionHint::FatTree { k },
        }
    }

    /// Per-host offered load. The fat tree hosts many more sources than
    /// the 6-host leaf-spine, so each is driven more gently to keep the
    /// benchmark in the hundreds-of-thousands-of-events regime per
    /// simulated millisecond rather than the tens of millions.
    fn pps_per_host(self) -> f64 {
        match self {
            TopoChoice::LeafSpine => 600_000.0,
            TopoChoice::FatTree(_) => 100_000.0,
        }
    }
}

struct Measurement {
    scenario: Scenario,
    topology: TopoChoice,
    shards: usize,
    seed: u64,
    sim_time_s: f64,
    wall_clock_s: f64,
    events_dispatched: u64,
    events_per_sec: f64,
    snapshots_completed: usize,
    forced_snapshots: usize,
    host_packets_delivered: u64,
    snapshot_digest: u64,
    metrics: obs::metrics::Metrics,
    trace_lines: Vec<String>,
    profile: Option<obs::profile::Profile>,
}

fn config(seed: u64) -> TestbedConfig {
    let snapshot = SnapshotConfig {
        modulus: 512,
        channel_state: true,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    };
    let mut cfg = TestbedConfig::new(snapshot);
    cfg.seed = seed;
    cfg.driver = DriverConfig {
        snapshot_period: Some(Duration::from_millis(4)),
        ..DriverConfig::default()
    };
    cfg
}

fn source_for(host: u32, num_hosts: u32, pps: f64, seed: u64) -> Box<PoissonSource> {
    let dsts: Vec<u32> = (0..num_hosts).filter(|&d| d != host).collect();
    Box::new(
        PoissonSource::new(
            host,
            dsts,
            pps,
            Dist::constant(700.0),
            seed ^ u64::from(host),
        )
        .flows_per_dst(8),
    )
}

/// Either execution engine behind one surface: `--shards 1` is the serial
/// [`Testbed`] (the committed-baseline path), `--shards >= 2` the sharded
/// runtime. Both replay the identical scenario, and the digest below is
/// engine- and shard-count-invariant.
enum Bed {
    Serial(Box<Testbed>),
    Sharded(Box<ShardedTestbed>),
}

fn build(topology: TopoChoice, shards: usize, seed: u64) -> Bed {
    let topo = topology.build();
    let cfg = config(seed);
    let num_hosts = topo.num_hosts();
    let pps = topology.pps_per_host();
    if shards <= 1 {
        let mut tb = Testbed::new(topo, cfg);
        for h in 0..num_hosts {
            tb.set_source(h, Instant::ZERO, source_for(h, num_hosts, pps, seed));
        }
        Bed::Serial(Box::new(tb))
    } else {
        let mut tb = ShardedTestbed::new(topo, cfg, topology.hint(), shards);
        for h in 0..num_hosts {
            tb.set_source(h, Instant::ZERO, source_for(h, num_hosts, pps, seed));
        }
        Bed::Sharded(Box::new(tb))
    }
}

fn run(
    scenario: Scenario,
    topology: TopoChoice,
    shards: usize,
    seed: u64,
    trace: bool,
    profile: bool,
) -> Measurement {
    let mut bed = build(topology, shards, seed);
    if trace {
        match &mut bed {
            Bed::Serial(tb) => tb.enable_trace(),
            Bed::Sharded(tb) => tb.enable_trace(),
        }
    }
    if profile {
        match &mut bed {
            Bed::Serial(tb) => tb.enable_profiling(),
            Bed::Sharded(tb) => tb.enable_profiling(),
        }
    }
    let horizon = scenario.sim_horizon();
    let start = WallInstant::now();
    match &mut bed {
        Bed::Serial(tb) => {
            tb.run_until(Instant::ZERO + horizon);
        }
        Bed::Sharded(tb) => {
            tb.run_until(Instant::ZERO + horizon);
        }
    }
    let wall = start.elapsed();

    let mut h = parfan::digest::Fnv64::new();
    let (events, snapshots_completed, forced, host_rx, metrics, trace_lines) = match &mut bed {
        Bed::Serial(tb) => {
            for rec in tb.snapshots() {
                digest_record(&mut h, rec);
            }
            (
                tb.events_dispatched(),
                tb.snapshots().len(),
                tb.snapshots().iter().filter(|r| r.forced).count(),
                tb.network().instr.host_rx.iter().sum::<u64>(),
                tb.network_mut().take_metrics(),
                tb.take_trace_lines(),
            )
        }
        Bed::Sharded(tb) => {
            for rec in tb.snapshots() {
                digest_record(&mut h, rec);
            }
            let stats = tb.shard_stats();
            let mut metrics = tb.take_metrics();
            metrics.gauge_set("shard.count", tb.num_shards() as u64);
            metrics.gauge_set("shard.windows", stats.windows);
            metrics.gauge_set("shard.messages", stats.messages);
            (
                tb.events_dispatched(),
                tb.snapshots().len(),
                tb.snapshots().iter().filter(|r| r.forced).count(),
                tb.host_rx().iter().sum::<u64>(),
                metrics,
                tb.take_trace_lines(),
            )
        }
    };
    let profile = profile.then(|| match &mut bed {
        Bed::Serial(tb) => tb.take_profile(),
        Bed::Sharded(tb) => tb.take_profile(),
    });
    let digest = h.finish();
    let wall_s = wall.as_secs_f64();
    Measurement {
        scenario,
        topology,
        shards,
        seed,
        sim_time_s: horizon.as_secs_f64(),
        wall_clock_s: wall_s,
        events_dispatched: events,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        snapshots_completed,
        forced_snapshots: forced,
        host_packets_delivered: host_rx,
        snapshot_digest: digest,
        metrics,
        trace_lines,
        profile,
    }
}

fn digest_record(h: &mut parfan::digest::Fnv64, rec: &fabric::network::SnapshotRecord) {
    h.update(&rec.snapshot.epoch.to_le_bytes());
    h.update(&rec.snapshot.consistent_total().to_le_bytes());
    h.update(&[u8::from(rec.forced)]);
    h.write_u64(rec.snapshot.excluded.len() as u64);
    h.write_u64(rec.snapshot.units.len() as u64);
    h.write_u64(rec.completed_at.as_nanos());
}

/// Aggregate of `--trials` measured runs (plus one discarded warm-up).
struct Report {
    trials: usize,
    events_per_sec_min: f64,
    wall_clock_stddev_s: f64,
    /// Representative measurement: deterministic fields (and the warm-up
    /// trial's metrics/trace), wall clock and events/sec replaced by the
    /// across-measured-trial medians (so `events_per_sec` — the field
    /// `--check` gates on — is the median over measured trials only).
    m: Measurement,
}

fn run_trials(
    scenario: Scenario,
    topology: TopoChoice,
    shards: usize,
    seed: u64,
    trials: usize,
    trace: bool,
    profile: bool,
) -> Report {
    // Trial 0 is the warm-up: it pays the first-touch costs (page faults,
    // allocator growth, branch-predictor training) and is excluded from
    // every timing statistic. Tracing also rides it, so measured trials
    // never carry the sink overhead.
    let idx: Vec<usize> = (0..trials.max(1) + 1).collect();
    let mut ms = parfan::map_labeled(
        &idx,
        |_, &t| {
            let kind = if t == 0 { "warm-up" } else { "measured" };
            format!(
                "bench {kind} trial {t} scenario={} topology={} shards={shards} seed={seed}",
                scenario.name(),
                topology.name(),
            )
        },
        |_, &t| run(scenario, topology, shards, seed, trace && t == 0, profile && t == 0),
    );
    // Every trial (warm-up included) replays the same seeded scenario, so
    // digests and event counts must agree bit for bit; a disagreement is a
    // real determinism bug, not measurement noise.
    for (t, m) in ms.iter().enumerate() {
        assert_eq!(
            (m.snapshot_digest, m.events_dispatched),
            (ms[0].snapshot_digest, ms[0].events_dispatched),
            "trial {t} diverged from trial 0: the simulation is not deterministic"
        );
    }
    let eps: Vec<f64> = ms.iter().skip(1).map(|m| m.events_per_sec).collect();
    let walls: Vec<f64> = ms.iter().skip(1).map(|m| m.wall_clock_s).collect();
    let mut m = ms.swap_remove(0);
    m.events_per_sec = sim_stats::percentile(&eps, 0.5);
    m.wall_clock_s = sim_stats::percentile(&walls, 0.5);
    Report {
        trials: eps.len(),
        events_per_sec_min: eps.iter().copied().fold(f64::INFINITY, f64::min),
        wall_clock_stddev_s: if walls.len() > 1 {
            sim_stats::std_dev(&walls)
        } else {
            0.0
        },
        m,
    }
}

fn render_json(r: &Report, baseline_eps: Option<f64>) -> String {
    let m = &r.m;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"speedlight-bench-netsim/v1\",\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", m.scenario.name()));
    out.push_str(&format!("  \"topology\": \"{}\",\n", m.topology.name()));
    out.push_str(&format!("  \"shards\": {},\n", m.shards));
    out.push_str(&format!("  \"seed\": {},\n", m.seed));
    out.push_str(&format!("  \"sim_time_s\": {},\n", m.sim_time_s));
    out.push_str(&format!("  \"wall_clock_s\": {:.6},\n", m.wall_clock_s));
    out.push_str(&format!(
        "  \"events_dispatched\": {},\n",
        m.events_dispatched
    ));
    out.push_str(&format!("  \"events_per_sec\": {:.1},\n", m.events_per_sec));
    out.push_str(&format!("  \"trials\": {},\n", r.trials));
    out.push_str(&format!(
        "  \"events_per_sec_median\": {:.1},\n",
        m.events_per_sec
    ));
    out.push_str(&format!(
        "  \"events_per_sec_min\": {:.1},\n",
        r.events_per_sec_min
    ));
    out.push_str(&format!(
        "  \"wall_clock_stddev_s\": {:.6},\n",
        r.wall_clock_stddev_s
    ));
    out.push_str(&format!(
        "  \"snapshots_completed\": {},\n",
        m.snapshots_completed
    ));
    out.push_str(&format!(
        "  \"forced_snapshots\": {},\n",
        m.forced_snapshots
    ));
    out.push_str(&format!(
        "  \"host_packets_delivered\": {},\n",
        m.host_packets_delivered
    ));
    if let Some(base) = baseline_eps {
        out.push_str(&format!("  \"baseline_events_per_sec\": {base:.1},\n"));
        out.push_str(&format!(
            "  \"speedup_vs_baseline\": {:.3},\n",
            m.events_per_sec / base.max(1e-9)
        ));
    }
    out.push_str(&format!(
        "  \"snapshot_digest\": \"{:016x}\"\n",
        m.snapshot_digest
    ));
    out.push_str("}\n");
    out
}

/// Human-readable stall digest for stderr. When sharded, rows are
/// aggregated per shard by reconstructing the owner map from the public
/// partition — a shard-count-*dependent* view, which is exactly why it
/// goes to stderr and never into the (invariant) artifact. Serial runs
/// get the five most-stalled domains instead.
fn stall_summary(p: &obs::profile::Profile, topology: TopoChoice, shards: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} windows, lookahead {} ns, {} domains",
        p.windows,
        p.lookahead_ns,
        p.domains.len()
    );
    if shards >= 2 {
        let topo = topology.build();
        let ns = usize::from(topo.num_switches());
        let assign = fabric::shard::partition_devices(&topo, topology.hint(), shards);
        // Devices by partition, hosts co-located with their switch, the
        // control domain pinned to shard 0 — the `ShardedTestbed` rules.
        let owner = |id: usize| -> usize {
            if id < ns {
                assign.get(id).copied().unwrap_or(0)
            } else {
                topo.hosts
                    .get(id - ns)
                    .and_then(|&(sw, _)| assign.get(usize::from(sw)))
                    .copied()
                    .unwrap_or(0)
            }
        };
        let mut per = vec![(0u64, 0u64, 0u64); shards];
        for row in &p.domains {
            if let Some(s) = per.get_mut(owner(row.id as usize)) {
                s.0 += row.events;
                s.1 += row.msgs_out;
                s.2 += row.stall_ns;
            }
        }
        for (i, (events, msgs, stall)) in per.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i}: events={events} msgs_out={msgs} stall={stall} ns \
                 (avg {} ns/window)",
                stall / p.windows.max(1)
            );
        }
    } else {
        let mut rows: Vec<&obs::profile::DomainRow> = p.domains.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.stall_ns));
        for r in rows.iter().take(5) {
            let _ = writeln!(
                out,
                "  {} {}: events={} msgs_out={} stall={} ns",
                r.kind, r.id, r.events, r.msgs_out, r.stall_ns
            );
        }
    }
    out
}

/// Pull one scalar field out of a flat JSON object (the harness's own
/// schema — no nesting, no escapes in the values we read).
fn json_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = doc.find(&pat)?;
    let rest = doc[at + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate that `doc` carries the v1 schema with sane field types.
/// Returns the baseline events/sec on success. The `topology`/`shards`
/// fields are additive (absent in pre-axis baselines), so they are not
/// required here.
fn validate_schema(doc: &str) -> Result<f64, String> {
    let schema = json_field(doc, "schema").ok_or("missing \"schema\" field")?;
    if schema != "speedlight-bench-netsim/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    for key in ["scenario", "snapshot_digest"] {
        if json_field(doc, key).is_none() {
            return Err(format!("missing \"{key}\" field"));
        }
    }
    for key in ["seed", "events_dispatched", "snapshots_completed"] {
        let raw = json_field(doc, key).ok_or_else(|| format!("missing \"{key}\" field"))?;
        raw.parse::<u64>()
            .map_err(|_| format!("field \"{key}\" is not an integer: {raw:?}"))?;
    }
    for key in ["sim_time_s", "wall_clock_s", "events_per_sec"] {
        let raw = json_field(doc, key).ok_or_else(|| format!("missing \"{key}\" field"))?;
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("field \"{key}\" is not a number: {raw:?}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("field \"{key}\" must be positive, got {v}"));
        }
    }
    Ok(json_field(doc, "events_per_sec").unwrap().parse().unwrap())
}

fn main() -> ExitCode {
    let mut scenario = Scenario::Fig9;
    let mut topology = TopoChoice::LeafSpine;
    let mut shards: usize = 1;
    let mut seed: u64 = 9;
    let mut trials: usize = 1;
    let mut out_path = String::from("BENCH_netsim.json");
    let mut metrics_out_path = String::from("BENCH_netsim_metrics.json");
    let mut profile_out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut expect_digest: Option<u64> = None;
    let mut threshold: f64 = 0.30;
    let trace_path = std::env::var("SPEEDLIGHT_TRACE").ok();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => {
                scenario = match value("--scenario").as_str() {
                    "fig9" => Scenario::Fig9,
                    "smoke" => Scenario::Smoke,
                    other => panic!("unknown scenario {other:?} (fig9|smoke)"),
                }
            }
            "--topology" => topology = TopoChoice::parse(&value("--topology")),
            "--shards" => {
                shards = value("--shards").parse().expect("--shards takes a usize");
                assert!(shards >= 1, "--shards must be at least 1");
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a u64"),
            "--trials" => {
                trials = value("--trials").parse().expect("--trials takes a usize");
                assert!(trials >= 1, "--trials must be at least 1");
            }
            "--out" => out_path = value("--out"),
            "--metrics-out" => metrics_out_path = value("--metrics-out"),
            "--profile-out" => profile_out_path = Some(value("--profile-out")),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--check" => check_path = Some(value("--check")),
            "--expect-digest" => {
                let raw = value("--expect-digest");
                expect_digest = Some(u64::from_str_radix(&raw, 16).unwrap_or_else(|_| {
                    panic!("--expect-digest takes 16 hex digits, got {raw:?}")
                }));
            }
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .expect("--threshold takes a f64")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let r = run_trials(
        scenario,
        topology,
        shards,
        seed,
        trials,
        trace_path.is_some(),
        profile_out_path.is_some(),
    );
    let m = &r.m;
    eprintln!(
        "scenario={} topology={} shards={} seed={} trials={} (+1 warm-up) events={} \
         wall={:.3}s (stddev {:.3}s) throughput={:.0} events/s (median; min {:.0}) \
         snapshots={} (forced {}) digest={:016x}",
        m.scenario.name(),
        m.topology.name(),
        m.shards,
        m.seed,
        r.trials,
        m.events_dispatched,
        m.wall_clock_s,
        r.wall_clock_stddev_s,
        m.events_per_sec,
        r.events_per_sec_min,
        m.snapshots_completed,
        m.forced_snapshots,
        m.snapshot_digest,
    );

    if let Some(want) = expect_digest {
        if m.snapshot_digest != want {
            eprintln!(
                "digest check FAILED: got {:016x}, expected {want:016x} \
                 (shard-equivalence violation)",
                m.snapshot_digest
            );
            return ExitCode::FAILURE;
        }
        eprintln!("digest check ok: {want:016x}");
    }

    let baseline_eps = baseline_path.map(|p| {
        let doc =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        validate_schema(&doc).unwrap_or_else(|e| panic!("bad baseline {p}: {e}"))
    });

    std::fs::write(&out_path, render_json(&r, baseline_eps))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // The warm-up trial's obs metrics, with the measured throughput folded
    // in as a gauge (truncated to u64: the registry is float-free by
    // design). Shard gauges (count/windows/messages) ride along when the
    // sharded engine ran.
    let mut metrics = r.m.metrics.clone();
    metrics.gauge_set("bench.events_per_sec", m.events_per_sec as u64);
    metrics.gauge_set("bench.events_dispatched", m.events_dispatched);
    std::fs::write(&metrics_out_path, metrics.to_json())
        .unwrap_or_else(|e| panic!("cannot write {metrics_out_path}: {e}"));
    eprintln!("wrote {metrics_out_path}");

    if let Some(p) = &trace_path {
        let mut doc = r.m.trace_lines.join("\n");
        doc.push('\n');
        std::fs::write(p, doc).unwrap_or_else(|e| panic!("cannot write trace {p}: {e}"));
        eprintln!("wrote trace {p} ({} events)", r.m.trace_lines.len());
    }

    if let Some(p) = &profile_out_path {
        let Some(profile) = &r.m.profile else {
            unreachable!("--profile-out always profiles the warm-up trial");
        };
        let doc = profile.to_json();
        std::fs::write(p, &doc).unwrap_or_else(|e| panic!("cannot write profile {p}: {e}"));
        eprintln!(
            "wrote profile {p} (digest {})",
            obs::profile::extract_digest(&doc).unwrap_or_default()
        );
        eprint!("{}", stall_summary(profile, topology, shards));
    }

    if let Some(p) = check_path {
        let doc = match std::fs::read_to_string(&p) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("check FAILED: cannot read committed baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed_eps = match validate_schema(&doc) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("check FAILED: committed baseline {p} invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        let floor = committed_eps * (1.0 - threshold);
        if m.events_per_sec < floor {
            eprintln!(
                "check FAILED: {:.0} events/s is below the regression floor {:.0} \
                 ({}% under committed baseline {:.0})",
                m.events_per_sec,
                floor,
                (threshold * 100.0) as u32,
                committed_eps,
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: {:.0} events/s vs committed {:.0} (floor {:.0})",
            m.events_per_sec, committed_eps, floor
        );
    }
    ExitCode::SUCCESS
}
