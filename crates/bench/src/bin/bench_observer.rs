//! Observer ingest throughput harness with a machine-readable output.
//!
//! Feeds a synthetic report storm — up to 10⁶ channels across several
//! epochs, delivered in a seeded stride order — through the staged
//! pipeline observer ([`speedlight_core::pipeline::PipelineObserver`],
//! driven stage-by-stage so the bounded queues and backpressure path are
//! on the hot path) and through the monolithic reference
//! [`speedlight_core::observer::Observer`], then emits
//! `BENCH_observer.json`: reports/sec for both implementations, per-run
//! pipeline stage statistics (peak queue depths, peak pending values,
//! backpressure rejects), and a deterministic digest of the sealed
//! snapshots. The two implementations must agree on that digest — the
//! bench doubles as a differential test at a scale the unit suites never
//! reach.
//!
//! ```text
//! cargo run --release -p bench --bin bench_observer -- [options]
//!   --scenario full|smoke     10⁶ channels (default) or 10⁵ for CI
//!   --seed <u64>              delivery-order seed (default 9)
//!   --trials <usize>          measured trials (default 1). One extra
//!                             warm-up trial always runs first and is
//!                             excluded from every timing statistic;
//!                             reports/sec is the median over measured
//!                             trials only, and every trial's snapshot
//!                             digest must agree
//!   --out <path>              output JSON (default BENCH_observer.json)
//!   --baseline <path>         embed speedup vs a previous run's JSON
//!   --check <path>            validate <path>'s schema and fail if this
//!                             run regresses >threshold below it
//!   --threshold <f64>         regression threshold for --check (default 0.30)
//!   --metrics-out <path>      pipeline obs metrics JSON from trial 0
//!                             (default BENCH_observer_metrics.json)
//!   --profile-out <path>      write a `speedlight-profile/v1` artifact
//!                             carrying only the observer-pipeline section
//!                             (no DES ran: lookahead 0, no windows, no
//!                             domain rows) — per-epoch stage occupancy,
//!                             peaks, and backpressure counts from trial 0
//! ```

use speedlight_core::control::{Report, ReportValue};
use speedlight_core::observer::{GlobalSnapshot, Observer, ObserverConfig};
use speedlight_core::pipeline::{PipelineConfig, PipelineObserver, PipelineStats};
use speedlight_core::{Epoch, UnitId};

use std::process::ExitCode;
use std::time::Instant as WallInstant;

const MODULUS: u16 = 512;
const EPOCHS: u64 = 4;

/// Scenario scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// 10⁶ synthetic channels: 1000 devices × 1000 ports.
    Full,
    /// CI smoke scale, 10⁵ channels: 100 devices × 1000 ports.
    Smoke,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Full => "full",
            Scenario::Smoke => "smoke",
        }
    }

    fn devices(self) -> u16 {
        match self {
            Scenario::Full => 1000,
            Scenario::Smoke => 100,
        }
    }

    fn ports(self) -> u16 {
        1000
    }

    fn channels(self) -> u64 {
        u64::from(self.devices()) * u64::from(self.ports())
    }
}

/// The i-th report of an epoch, in the seeded delivery order: a stride
/// walk of the unit space. The stride ends in 7, so it is coprime to the
/// channel count (a product of 2s and 5s) and the walk covers every unit
/// exactly once per epoch — delivery is neither in-order nor duplicated,
/// and the order differs by seed and epoch.
fn delivery(scenario: Scenario, seed: u64, epoch: Epoch, i: u64) -> (u16, Report) {
    let n = scenario.channels();
    let mixed = seed
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        .wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let stride = ((mixed % (n / 10)) * 10 + 7) % n;
    let idx = (i % n).wrapping_mul(stride).wrapping_add(mixed >> 32) % n;
    let device = (idx / u64::from(scenario.ports())) as u16;
    let port = (idx % u64::from(scenario.ports())) as u16;
    let unit = UnitId::ingress(device, port);
    (
        device,
        Report {
            unit,
            epoch,
            value: ReportValue::Value {
                local: idx ^ epoch,
                channel: 0,
            },
        },
    )
}

struct Measurement {
    scenario: Scenario,
    seed: u64,
    reports_offered: u64,
    wall_clock_s: f64,
    reports_per_sec: f64,
    reference_wall_clock_s: f64,
    reference_reports_per_sec: f64,
    snapshots_sealed: u64,
    snapshot_digest: u64,
    stats: PipelineStats,
    metrics: obs::metrics::Metrics,
}

fn digest_snapshot(h: &mut parfan::digest::Fnv64, snap: &GlobalSnapshot) {
    h.update(&snap.epoch.to_le_bytes());
    h.write_u64(snap.devices.len() as u64);
    h.write_u64(snap.excluded.len() as u64);
    h.write_u64(snap.units.len() as u64);
    // Order-sensitive value hash without formatting (10⁶ entries/epoch).
    for (unit, outcome) in &snap.units {
        h.write_u64((u64::from(unit.device) << 16) | u64::from(unit.port));
        if let speedlight_core::observer::UnitOutcome::Value { local, channel } = outcome {
            h.write_u64(*local);
            h.write_u64(*channel);
        }
    }
}

/// Feed every epoch's report storm through the staged pipeline,
/// stage-driven: offer into the bounded collect queue until it refuses,
/// then pump — so queue handoff and the backpressure path are what is
/// being measured, not a degenerate always-empty fast path.
fn run_pipeline(
    scenario: Scenario,
    seed: u64,
) -> (f64, u64, u64, PipelineStats, u64, obs::metrics::Metrics) {
    let mut pipe = PipelineObserver::new(PipelineConfig::for_modulus(MODULUS));
    for d in 0..scenario.devices() {
        pipe.register_device(
            d,
            (0..scenario.ports())
                .map(|p| UnitId::ingress(d, p))
                .collect(),
        );
    }
    let n = scenario.channels();
    let mut sealed: Vec<GlobalSnapshot> = Vec::new();
    let mut offered = 0u64;
    let start = WallInstant::now();
    for _ in 0..EPOCHS {
        let epoch = pipe.begin_snapshot().expect("below the no-lapping cap");
        for i in 0..n {
            let (device, report) = delivery(scenario, seed, epoch, i);
            offered += 1;
            if !pipe.offer_report(device, report) {
                // Collect queue full: drain the stages, then re-offer.
                pipe.pump();
                while let Some(snap) = pipe.take_finalized() {
                    sealed.push(snap);
                }
                assert!(
                    pipe.offer_report(device, report),
                    "offer must succeed right after a pump drained the queues"
                );
            }
        }
        pipe.pump();
        while let Some(snap) = pipe.take_finalized() {
            sealed.push(snap);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut h = parfan::digest::Fnv64::new();
    for snap in &sealed {
        digest_snapshot(&mut h, snap);
    }
    let mut metrics = obs::metrics::Metrics::new();
    pipe.fold_metrics(&mut metrics);
    (
        wall,
        offered,
        sealed.len() as u64,
        pipe.stats().clone(),
        h.finish(),
        metrics,
    )
}

/// The same storm through the monolithic reference observer.
fn run_reference(scenario: Scenario, seed: u64) -> (f64, u64) {
    let mut obs = Observer::new(ObserverConfig::for_modulus(MODULUS));
    for d in 0..scenario.devices() {
        obs.register_device(
            d,
            (0..scenario.ports())
                .map(|p| UnitId::ingress(d, p))
                .collect(),
        );
    }
    let n = scenario.channels();
    let mut sealed: Vec<GlobalSnapshot> = Vec::new();
    let start = WallInstant::now();
    for _ in 0..EPOCHS {
        let epoch = obs.begin_snapshot().expect("below the no-lapping cap");
        for i in 0..n {
            let (device, report) = delivery(scenario, seed, epoch, i);
            sealed.extend(obs.on_report(device, report));
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let mut h = parfan::digest::Fnv64::new();
    for snap in &sealed {
        digest_snapshot(&mut h, snap);
    }
    (wall, h.finish())
}

fn run(scenario: Scenario, seed: u64) -> Measurement {
    let (wall, offered, sealed, stats, digest, metrics) = run_pipeline(scenario, seed);
    let (ref_wall, ref_digest) = run_reference(scenario, seed);
    assert_eq!(
        digest,
        ref_digest,
        "pipeline and reference observers sealed different snapshots \
         (scenario={} seed={seed})",
        scenario.name()
    );
    let reports = offered as f64;
    Measurement {
        scenario,
        seed,
        reports_offered: offered,
        wall_clock_s: wall,
        reports_per_sec: reports / wall.max(1e-9),
        reference_wall_clock_s: ref_wall,
        reference_reports_per_sec: reports / ref_wall.max(1e-9),
        snapshots_sealed: sealed,
        snapshot_digest: digest,
        stats,
        metrics,
    }
}

/// Aggregate of `--trials` measured runs (plus one discarded warm-up).
struct BenchReport {
    trials: usize,
    reports_per_sec_min: f64,
    wall_clock_stddev_s: f64,
    m: Measurement,
}

fn run_trials(scenario: Scenario, seed: u64, trials: usize) -> BenchReport {
    // Trial 0 is a warm-up: it pays the first-touch costs (page faults,
    // allocator growth, branch-predictor training) and is excluded from
    // every timing statistic — median/min/stddev cover measured trials
    // only. It still participates in the determinism check below.
    let idx: Vec<usize> = (0..trials.max(1) + 1).collect();
    let mut ms = parfan::map_labeled(
        &idx,
        |_, &t| {
            let kind = if t == 0 { "warm-up" } else { "measured" };
            format!(
                "bench_observer {kind} trial {t} scenario={} seed={seed}",
                scenario.name()
            )
        },
        |_, &t| {
            let _ = t;
            run(scenario, seed)
        },
    );
    for (t, m) in ms.iter().enumerate() {
        assert_eq!(
            (m.snapshot_digest, m.reports_offered),
            (ms[0].snapshot_digest, ms[0].reports_offered),
            "trial {t} diverged from trial 0: the observer is not deterministic"
        );
    }
    let rps: Vec<f64> = ms.iter().skip(1).map(|m| m.reports_per_sec).collect();
    let walls: Vec<f64> = ms.iter().skip(1).map(|m| m.wall_clock_s).collect();
    let mut m = ms.swap_remove(0);
    m.reports_per_sec = sim_stats::percentile(&rps, 0.5);
    m.wall_clock_s = sim_stats::percentile(&walls, 0.5);
    BenchReport {
        trials: rps.len(),
        reports_per_sec_min: rps.iter().copied().fold(f64::INFINITY, f64::min),
        wall_clock_stddev_s: if walls.len() > 1 {
            sim_stats::std_dev(&walls)
        } else {
            0.0
        },
        m,
    }
}

fn render_json(r: &BenchReport, baseline_rps: Option<f64>) -> String {
    let m = &r.m;
    let s = &m.stats;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"speedlight-bench-observer/v1\",\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", m.scenario.name()));
    out.push_str(&format!("  \"seed\": {},\n", m.seed));
    out.push_str(&format!("  \"channels\": {},\n", m.scenario.channels()));
    out.push_str(&format!("  \"epochs\": {EPOCHS},\n"));
    out.push_str(&format!("  \"reports_offered\": {},\n", m.reports_offered));
    out.push_str(&format!("  \"wall_clock_s\": {:.6},\n", m.wall_clock_s));
    out.push_str(&format!(
        "  \"reports_per_sec\": {:.1},\n",
        m.reports_per_sec
    ));
    out.push_str(&format!("  \"trials\": {},\n", r.trials));
    out.push_str(&format!(
        "  \"reports_per_sec_median\": {:.1},\n",
        m.reports_per_sec
    ));
    out.push_str(&format!(
        "  \"reports_per_sec_min\": {:.1},\n",
        r.reports_per_sec_min
    ));
    out.push_str(&format!(
        "  \"wall_clock_stddev_s\": {:.6},\n",
        r.wall_clock_stddev_s
    ));
    out.push_str(&format!(
        "  \"reference_wall_clock_s\": {:.6},\n",
        m.reference_wall_clock_s
    ));
    out.push_str(&format!(
        "  \"reference_reports_per_sec\": {:.1},\n",
        m.reference_reports_per_sec
    ));
    out.push_str(&format!(
        "  \"snapshots_sealed\": {},\n",
        m.snapshots_sealed
    ));
    out.push_str(&format!(
        "  \"backpressure_rejects\": {},\n",
        s.backpressure_rejects
    ));
    out.push_str(&format!(
        "  \"peak_collect_depth\": {},\n",
        s.peak_collect_depth
    ));
    out.push_str(&format!(
        "  \"peak_pending_values\": {},\n",
        s.peak_pending_values
    ));
    if let Some(base) = baseline_rps {
        out.push_str(&format!("  \"baseline_reports_per_sec\": {base:.1},\n"));
        out.push_str(&format!(
            "  \"speedup_vs_baseline\": {:.3},\n",
            m.reports_per_sec / base.max(1e-9)
        ));
    }
    out.push_str(&format!(
        "  \"snapshot_digest\": \"{:016x}\"\n",
        m.snapshot_digest
    ));
    out.push_str("}\n");
    out
}

/// Pull one scalar field out of a flat JSON object (the harness's own
/// schema — no nesting, no escapes in the values we read).
fn json_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = doc.find(&pat)?;
    let rest = doc[at + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate that `doc` carries the v1 schema with sane field types.
/// Returns the baseline reports/sec on success.
fn validate_schema(doc: &str) -> Result<f64, String> {
    let schema = json_field(doc, "schema").ok_or("missing \"schema\" field")?;
    if schema != "speedlight-bench-observer/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    for key in ["scenario", "snapshot_digest"] {
        if json_field(doc, key).is_none() {
            return Err(format!("missing \"{key}\" field"));
        }
    }
    for key in [
        "seed",
        "channels",
        "reports_offered",
        "snapshots_sealed",
        "peak_pending_values",
    ] {
        let raw = json_field(doc, key).ok_or_else(|| format!("missing \"{key}\" field"))?;
        raw.parse::<u64>()
            .map_err(|_| format!("field \"{key}\" is not an integer: {raw:?}"))?;
    }
    for key in [
        "wall_clock_s",
        "reports_per_sec",
        "reference_reports_per_sec",
    ] {
        let raw = json_field(doc, key).ok_or_else(|| format!("missing \"{key}\" field"))?;
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("field \"{key}\" is not a number: {raw:?}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("field \"{key}\" must be positive, got {v}"));
        }
    }
    Ok(json_field(doc, "reports_per_sec").unwrap().parse().unwrap())
}

fn main() -> ExitCode {
    let mut scenario = Scenario::Full;
    let mut seed: u64 = 9;
    let mut trials: usize = 1;
    let mut out_path = String::from("BENCH_observer.json");
    let mut metrics_out_path = String::from("BENCH_observer_metrics.json");
    let mut profile_out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut threshold: f64 = 0.30;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => {
                scenario = match value("--scenario").as_str() {
                    "full" => Scenario::Full,
                    "smoke" => Scenario::Smoke,
                    other => panic!("unknown scenario {other:?} (full|smoke)"),
                }
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a u64"),
            "--trials" => {
                trials = value("--trials").parse().expect("--trials takes a usize");
                assert!(trials >= 1, "--trials must be at least 1");
            }
            "--out" => out_path = value("--out"),
            "--metrics-out" => metrics_out_path = value("--metrics-out"),
            "--profile-out" => profile_out_path = Some(value("--profile-out")),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--check" => check_path = Some(value("--check")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .expect("--threshold takes a f64")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let r = run_trials(scenario, seed, trials);
    let m = &r.m;
    eprintln!(
        "scenario={} seed={} trials={} (+1 warm-up) reports={} wall={:.3}s (stddev {:.3}s) \
         throughput={:.0} reports/s (median; min {:.0}; reference {:.0}) \
         sealed={} backpressure={} digest={:016x}",
        m.scenario.name(),
        m.seed,
        r.trials,
        m.reports_offered,
        m.wall_clock_s,
        r.wall_clock_stddev_s,
        m.reports_per_sec,
        r.reports_per_sec_min,
        m.reference_reports_per_sec,
        m.snapshots_sealed,
        m.stats.backpressure_rejects,
        m.snapshot_digest,
    );

    let baseline_rps = baseline_path.map(|p| {
        let doc =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        validate_schema(&doc).unwrap_or_else(|e| panic!("bad baseline {p}: {e}"))
    });

    std::fs::write(&out_path, render_json(&r, baseline_rps))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    let mut metrics = r.m.metrics.clone();
    metrics.gauge_set("bench.reports_per_sec", m.reports_per_sec as u64);
    metrics.gauge_set("bench.reports_offered", m.reports_offered);
    std::fs::write(&metrics_out_path, metrics.to_json())
        .unwrap_or_else(|e| panic!("cannot write {metrics_out_path}: {e}"));
    eprintln!("wrote {metrics_out_path}");

    if let Some(p) = &profile_out_path {
        // No DES ran here, so the profile is the pipeline section alone —
        // deterministic per-epoch stage occupancy from trial 0's run.
        let profile = obs::profile::Profile {
            lookahead_ns: 0,
            windows: 0,
            domains: Vec::new(),
            pipeline: Some(m.stats.profile_section()),
        };
        let doc = profile.to_json();
        std::fs::write(p, &doc).unwrap_or_else(|e| panic!("cannot write profile {p}: {e}"));
        eprintln!(
            "wrote profile {p} (digest {})",
            obs::profile::extract_digest(&doc).unwrap_or_default()
        );
    }

    if let Some(p) = check_path {
        let doc = match std::fs::read_to_string(&p) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("check FAILED: cannot read committed baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed_rps = match validate_schema(&doc) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("check FAILED: committed baseline {p} invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        let floor = committed_rps * (1.0 - threshold);
        if m.reports_per_sec < floor {
            eprintln!(
                "check FAILED: {:.0} reports/s is below the regression floor {:.0} \
                 ({}% under committed baseline {:.0})",
                m.reports_per_sec,
                floor,
                (threshold * 100.0) as u32,
                committed_rps,
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: {:.0} reports/s vs committed {:.0} (floor {:.0})",
            m.reports_per_sec, committed_rps, floor
        );
    }
    ExitCode::SUCCESS
}
