//! Regenerate Fig. 11 (synchronization vs network size).
use experiments::fig11::{run, Fig11Config};
fn main() {
    let fig = run(&Fig11Config::default());
    println!("{}", fig.render());
}
