//! Regenerate Fig. 13 (pairwise correlation of egress rates).
use experiments::fig13::{run, Fig13Config};
fn main() {
    let fig = run(&Fig13Config::default());
    println!("{}", fig.render());
}
