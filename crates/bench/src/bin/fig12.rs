//! Regenerate Fig. 12 (load-balancing study: snapshots vs polling).
use experiments::fig12::{run, Fig12Config};
fn main() {
    let fig = run(&Fig12Config::default());
    println!("{}", fig.render());
}
