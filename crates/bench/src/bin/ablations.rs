//! Run the beyond-paper design ablations.
fn main() {
    println!("{}", experiments::ablations::render_all(99));
}
