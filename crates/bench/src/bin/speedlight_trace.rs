//! `speedlight-trace`: human-readable views over a snapshot-lifecycle
//! JSONL trace (as produced by `SPEEDLIGHT_TRACE=<path> bench_netsim`,
//! `Testbed::enable_trace`, or the conformance golden files).
//!
//! ```text
//! cargo run -p bench --bin speedlight-trace -- [subcommand] <trace.jsonl> [sections]
//!
//! subcommands:
//!   analyze        per-epoch latency breakdown (initiation fan-out,
//!                  collection, seal) reconstructed from the causal chain
//!   critical-path  per-epoch slowest chain with device hops, plus the
//!                  marker-fanout depth histogram
//!
//! sections (default view, no subcommand):
//!   --epochs      per-epoch timeline (initiate → save → report → complete)
//!   --devices     per-device event-kind counts
//!   --histograms  completion-latency and queue-depth histogram tables
//! ```
//!
//! With no subcommand and no section flags, all three sections print.

use bench::trace::{analyze, fanout_histogram, parse_trace, EpochAnalysis, TraceEvent};
use obs::json::{field, JsonValue};
use obs::metrics::{Histogram, DEPTH_BOUNDS, LATENCY_BOUNDS_NS};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fmt_value(v: &JsonValue) -> String {
    match v {
        JsonValue::U64(n) => n.to_string(),
        JsonValue::I64(n) => n.to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Str(s) => s.clone(),
    }
}

/// `12_345_678` ns → `12.346ms`-style human time.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn epoch_of(ev: &TraceEvent) -> Option<u64> {
    field(&ev.fields, "epoch").and_then(|v| v.as_u64())
}

fn device_of(ev: &TraceEvent) -> Option<u64> {
    field(&ev.fields, "dev").and_then(|v| v.as_u64())
}

fn print_epochs(events: &[TraceEvent]) {
    let mut by_epoch: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        if let Some(e) = epoch_of(ev) {
            by_epoch.entry(e).or_default().push(ev);
        }
    }
    println!("== per-epoch timeline ==");
    if by_epoch.is_empty() {
        println!("  (no epoch-tagged events)");
        return;
    }
    for (epoch, evs) in &by_epoch {
        let start = evs.iter().map(|e| e.t_ns).min().unwrap_or(0);
        let complete = evs.iter().find(|e| e.name == "snap.complete");
        let span = match complete {
            Some(c) => format!("completed in {}", fmt_ns(c.t_ns.saturating_sub(start))),
            None => "incomplete".to_string(),
        };
        println!("epoch {epoch} ({span})");
        // Collapse the per-unit flood: milestones individually, bulk
        // event kinds as (first seen, count); rows sort by time.
        let mut rows: Vec<(u64, String)> = Vec::new();
        let mut bulk: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for ev in evs {
            match ev.name.as_str() {
                "snap.initiate" | "snap.complete" | "snap.reinitiate" | "snap.exclude"
                | "obs.finalize" | "cp.inconsistent" => {
                    let detail: Vec<String> = ev
                        .fields
                        .iter()
                        .filter(|(k, _)| k != "t" && k != "ev" && k != "epoch")
                        .map(|(k, v)| format!("{k}={}", fmt_value(v)))
                        .collect();
                    rows.push((ev.t_ns, format!("{:<16} {}", ev.name, detail.join(" "))));
                }
                name => {
                    let slot = bulk.entry(name).or_insert((ev.t_ns, 0));
                    slot.1 += 1;
                }
            }
        }
        for (name, (first, count)) in &bulk {
            rows.push((*first, format!("{name:<16} x{count} (first arrival)")));
        }
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (t, text) in &rows {
            println!("  {:>12}  {text}", fmt_ns(*t));
        }
    }
}

fn print_devices(events: &[TraceEvent]) {
    let mut by_dev: BTreeMap<u64, BTreeMap<&str, u64>> = BTreeMap::new();
    for ev in events {
        if let Some(d) = device_of(ev) {
            *by_dev.entry(d).or_default().entry(&ev.name).or_insert(0) += 1;
        }
    }
    println!("\n== per-device summary ==");
    if by_dev.is_empty() {
        println!("  (no device-tagged events)");
        return;
    }
    for (dev, kinds) in &by_dev {
        let total: u64 = kinds.values().sum();
        let detail: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!("device {dev}: {total} events  [{}]", detail.join(" "));
    }
}

fn print_histogram(title: &str, unit_is_time: bool, h: &Histogram) {
    println!("\n{title} ({} samples)", h.count());
    if h.count() == 0 {
        println!("  (empty)");
        return;
    }
    let max = h.counts().iter().copied().max().unwrap_or(1).max(1);
    let mut lo = 0u64;
    for (i, &n) in h.counts().iter().enumerate() {
        let label = match h.bounds().get(i) {
            Some(&hi) if unit_is_time => format!("{:>10} ..= {:<10}", fmt_ns(lo), fmt_ns(hi)),
            Some(&hi) => format!("{lo:>10} ..= {hi:<10}"),
            None if unit_is_time => format!("{:>10} ..  {:<10}", fmt_ns(lo), "inf"),
            None => format!("{lo:>10} ..  {:<10}", "inf"),
        };
        let bar = "#".repeat(((n * 40).div_ceil(max)) as usize);
        println!("  {label} {n:>8} {bar}");
        lo = h.bounds().get(i).map_or(lo, |&b| b + 1);
    }
    // Exact nearest-rank quantiles (bucket upper bounds; `inf` when the
    // rank lands in the overflow bucket).
    let q = |p: u64| {
        h.quantile(p).map_or_else(
            || "inf".to_string(),
            |v| {
                if unit_is_time {
                    fmt_ns(v)
                } else {
                    v.to_string()
                }
            },
        )
    };
    println!("  p50<={} p90<={} p99<={}", q(50), q(90), q(99));
}

fn print_analyze(analyses: &[EpochAnalysis]) {
    println!("== per-epoch latency breakdown ==");
    if analyses.is_empty() {
        println!("  (no snap.initiate events)");
        return;
    }
    let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), fmt_ns);
    for a in analyses {
        let status = if a.finalize_t.is_none() {
            "unsealed".to_string()
        } else if a.forced {
            format!("FORCED, {} excluded", a.excluded)
        } else {
            "clean".to_string()
        };
        println!(
            "epoch {:>3}  total={:>10}  fanout={:>10}  collect={:>10}  seal={:>10}  \
             reports={:>3}  devices={}  {}{}",
            a.epoch,
            opt(a.total_ns()),
            opt(a.fanout_ns()),
            opt(a.collect_ns()),
            opt(a.seal_ns()),
            a.report_arrivals.len(),
            a.devices,
            status,
            if a.reinitiations > 0 {
                format!(", reinitiated x{}", a.reinitiations)
            } else {
                String::new()
            },
        );
    }
}

fn print_critical_path(analyses: &[EpochAnalysis]) {
    println!("== per-epoch critical path (slowest chain) ==");
    if analyses.is_empty() {
        println!("  (no snap.initiate events)");
        return;
    }
    for a in analyses {
        println!(
            "epoch {} ({}):",
            a.epoch,
            a.total_ns().map_or_else(|| "unsealed".into(), fmt_ns)
        );
        let hops = a.critical_path();
        let mut prev = None;
        for hop in &hops {
            let delta = match prev {
                Some(p) => format!("+{}", fmt_ns(hop.t_ns.saturating_sub(p))),
                None => String::new(),
            };
            println!("  {:>12}  {:<24} {delta}", fmt_ns(hop.t_ns), hop.label);
            prev = Some(hop.t_ns);
        }
    }
    print_histogram(
        "marker fanout per (epoch, device)",
        false,
        &fanout_histogram(analyses),
    );
}

fn print_histograms(events: &[TraceEvent]) {
    println!("\n== histograms ==");
    let mut latency = Histogram::new(&LATENCY_BOUNDS_NS);
    let mut depth = Histogram::new(&DEPTH_BOUNDS);
    for ev in events {
        match ev.name.as_str() {
            "snap.complete" => {
                if let Some(d) = field(&ev.fields, "dur_ns").and_then(|v| v.as_u64()) {
                    latency.observe(d);
                }
            }
            "notify.export" => {
                if let Some(d) = field(&ev.fields, "depth").and_then(|v| v.as_u64()) {
                    depth.observe(d);
                }
            }
            _ => {}
        }
    }
    print_histogram("snapshot completion latency", true, &latency);
    print_histogram("CP queue depth at notification arrival", false, &depth);
}

const USAGE: &str = "usage: speedlight-trace [analyze|critical-path] <trace.jsonl> \
                     [--epochs] [--devices] [--histograms]";

/// What to print.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Mode {
    /// The flag-selected default sections.
    Sections,
    /// Per-epoch latency breakdown.
    Analyze,
    /// Per-epoch slowest chain + fanout histogram.
    CriticalPath,
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut mode = Mode::Sections;
    let (mut epochs, mut devices, mut histograms) = (false, false, false);
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--epochs" => epochs = true,
            "--devices" => devices = true,
            "--histograms" => histograms = true,
            "analyze" if path.is_none() && mode == Mode::Sections => mode = Mode::Analyze,
            "critical-path" if path.is_none() && mode == Mode::Sections => {
                mode = Mode::CriticalPath
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("exactly one trace file expected (try --help)");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if !(epochs || devices || histograms) {
        (epochs, devices, histograms) = (true, true, true);
    }

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_trace(&doc) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(meta) = events.iter().find(|e| e.name == "trace.meta") {
        let schema = field(&meta.fields, "schema")
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        println!("{path}: {} events, schema {schema}\n", events.len());
        if schema != obs::TRACE_SCHEMA {
            eprintln!(
                "warning: schema {schema:?} differs from {:?}",
                obs::TRACE_SCHEMA
            );
        }
    } else {
        println!("{path}: {} events (no trace.meta header)\n", events.len());
    }

    match mode {
        Mode::Analyze => print_analyze(&analyze(&events)),
        Mode::CriticalPath => print_critical_path(&analyze(&events)),
        Mode::Sections => {
            if epochs {
                print_epochs(&events);
            }
            if devices {
                print_devices(&events);
            }
            if histograms {
                print_histograms(&events);
            }
        }
    }
    ExitCode::SUCCESS
}
