//! Regenerate Fig. 9 (synchronization of network-wide measurements).
use experiments::fig9::{run, Fig9Config};
fn main() {
    let fig = run(&Fig9Config::default());
    println!("{}", fig.render());
}
