//! Epoch critical-path analysis over a snapshot-lifecycle JSONL trace
//! (the `speedlight-trace/v1` schema emitted by `Testbed::enable_trace`
//! and pinned in the conformance golden files).
//!
//! The trace is a flat chronological event stream; this module
//! reconstructs, per snapshot epoch, the causal chain
//!
//! ```text
//! snap.initiate → dev.initiate (per device) → marker propagation
//!   → notification export → cp.report → report.arrive → obs.finalize
//! ```
//!
//! and derives the *slowest chain*: the hop-by-hop path ending at the
//! last report arrival, which is what gates finalization. Everything is
//! integer sim-time, so the analysis is as deterministic as the trace.
//!
//! Attribution: `dev.initiate`, `cp.report`, and `report.arrive` carry
//! an explicit `epoch` field. Per-unit events (`unit.*`, `marker.seen`)
//! and CP-side events (`notify.export`, `cp.process`) do not — they are
//! attributed to the device's **most recent** `dev.initiate` epoch at
//! that point in the stream, matching how the device itself experiences
//! the protocol (a unit can only be saving for the epoch its device last
//! initiated).

use obs::json::{field, parse_line, JsonValue};
use std::collections::BTreeMap;

/// One parsed trace line.
pub struct TraceEvent {
    /// Sim-time stamp (ns).
    pub t_ns: u64,
    /// Event name (`ev` field).
    pub name: String,
    /// Every field of the line, in emission order.
    pub fields: Vec<(String, JsonValue)>,
}

/// Parse a JSONL trace document into events (blank lines skipped).
pub fn parse_trace(doc: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t_ns = field(&fields, "t")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("line {}: missing numeric \"t\"", i + 1))?;
        let name = field(&fields, "ev")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("line {}: missing string \"ev\"", i + 1))?
            .to_string();
        out.push(TraceEvent { t_ns, name, fields });
    }
    Ok(out)
}

/// One hop of a critical path, with its absolute sim-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Human-stable hop label (e.g. `dev.initiate dev=1`).
    pub label: String,
    /// Sim-time of the hop (ns).
    pub t_ns: u64,
}

/// Everything reconstructed about one snapshot epoch.
#[derive(Debug, Default, Clone)]
pub struct EpochAnalysis {
    /// The epoch id.
    pub epoch: u64,
    /// `snap.initiate` time (ns).
    pub initiate_t: u64,
    /// Device count announced at initiation.
    pub devices: u64,
    /// Unit count announced at initiation.
    pub units: u64,
    /// Times the epoch was re-initiated (`snap.reinitiate`).
    pub reinitiations: u64,
    /// First `dev.initiate` per device (device → t).
    pub dev_initiate: BTreeMap<u64, u64>,
    /// Last attributed `marker.seen` per device (device → t).
    pub last_marker: BTreeMap<u64, u64>,
    /// Attributed `marker.seen` count per device (the marker-fanout
    /// size: how many unit saves the initiation cascaded into).
    pub marker_fanout: BTreeMap<u64, u64>,
    /// Last `cp.report` per device (device → t).
    pub last_cp_report: BTreeMap<u64, u64>,
    /// Report arrivals at the observer, chronological `(t, device)`.
    pub report_arrivals: Vec<(u64, u64)>,
    /// `obs.finalize` time, once sealed.
    pub finalize_t: Option<u64>,
    /// `snap.complete` `(t, dur_ns)`, once completed.
    pub complete: Option<(u64, u64)>,
    /// Whether finalization was forced (timeout path).
    pub forced: bool,
    /// Devices excluded at finalization.
    pub excluded: u64,
}

impl EpochAnalysis {
    /// End-to-end latency: initiation to finalization, when sealed.
    pub fn total_ns(&self) -> Option<u64> {
        Some(self.finalize_t?.saturating_sub(self.initiate_t))
    }

    /// Initiation-fanout latency: `snap.initiate` to the last
    /// `dev.initiate` (how long the marker broadcast took to reach
    /// every device).
    pub fn fanout_ns(&self) -> Option<u64> {
        let last = self.dev_initiate.values().copied().max()?;
        Some(last.saturating_sub(self.initiate_t))
    }

    /// Collection latency: last `dev.initiate` to last `report.arrive`
    /// (marker propagation, export, CP processing, and report flight).
    pub fn collect_ns(&self) -> Option<u64> {
        let last_init = self.dev_initiate.values().copied().max()?;
        let (last_arr, _) = self.report_arrivals.last()?;
        Some(last_arr.saturating_sub(last_init))
    }

    /// Seal latency: last `report.arrive` to `obs.finalize` (0 when the
    /// final report itself seals the epoch; positive on the forced
    /// path, where a timeout — not a report — closes it).
    pub fn seal_ns(&self) -> Option<u64> {
        let (last_arr, _) = self.report_arrivals.last()?;
        Some(self.finalize_t?.saturating_sub(*last_arr))
    }

    /// The slowest causal chain: initiation, then the hop sequence on
    /// the device whose report arrived **last** (that arrival is what
    /// gated finalization), ending at the seal. Hops the trace did not
    /// record for that device (e.g. a device excluded before reporting)
    /// are simply absent; times are monotone by construction of the
    /// underlying protocol.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        let mut hops = vec![CriticalHop {
            label: "snap.initiate".to_string(),
            t_ns: self.initiate_t,
        }];
        if let Some(&(arr_t, dev)) = self.report_arrivals.last() {
            if let Some(&t) = self.dev_initiate.get(&dev) {
                hops.push(CriticalHop {
                    label: format!("dev.initiate dev={dev}"),
                    t_ns: t,
                });
            }
            if let Some(&t) = self.last_marker.get(&dev) {
                hops.push(CriticalHop {
                    label: format!("marker.last dev={dev}"),
                    t_ns: t,
                });
            }
            if let Some(&t) = self.last_cp_report.get(&dev) {
                hops.push(CriticalHop {
                    label: format!("cp.report dev={dev}"),
                    t_ns: t,
                });
            }
            hops.push(CriticalHop {
                label: format!("report.arrive dev={dev}"),
                t_ns: arr_t,
            });
        }
        if let Some(t) = self.finalize_t {
            hops.push(CriticalHop {
                label: "obs.finalize".to_string(),
                t_ns: t,
            });
        }
        hops
    }
}

/// Reconstruct every epoch's analysis from a chronological event
/// stream. Events for epochs that never saw a `snap.initiate` (none, in
/// a well-formed trace) are ignored.
pub fn analyze(events: &[TraceEvent]) -> Vec<EpochAnalysis> {
    let mut epochs: BTreeMap<u64, EpochAnalysis> = BTreeMap::new();
    // device → the epoch of its most recent dev.initiate (attribution
    // context for the epoch-less per-unit and CP-side events).
    let mut cur_epoch: BTreeMap<u64, u64> = BTreeMap::new();

    let epoch_of = |ev: &TraceEvent| field(&ev.fields, "epoch").and_then(|v| v.as_u64());
    let device_of = |ev: &TraceEvent| field(&ev.fields, "dev").and_then(|v| v.as_u64());

    for ev in events {
        match ev.name.as_str() {
            "snap.initiate" => {
                let Some(epoch) = epoch_of(ev) else { continue };
                let a = epochs.entry(epoch).or_default();
                a.epoch = epoch;
                a.initiate_t = ev.t_ns;
                a.devices = field(&ev.fields, "devices")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                a.units = field(&ev.fields, "units")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
            }
            "snap.reinitiate" => {
                let Some(epoch) = epoch_of(ev) else { continue };
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.reinitiations += 1;
                }
            }
            "dev.initiate" => {
                let (Some(epoch), Some(dev)) = (epoch_of(ev), device_of(ev)) else {
                    continue;
                };
                cur_epoch.insert(dev, epoch);
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.dev_initiate.entry(dev).or_insert(ev.t_ns);
                }
            }
            "marker.seen" => {
                let Some(dev) = device_of(ev) else { continue };
                let Some(&epoch) = cur_epoch.get(&dev) else {
                    continue;
                };
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.last_marker.insert(dev, ev.t_ns);
                    *a.marker_fanout.entry(dev).or_insert(0) += 1;
                }
            }
            "cp.report" => {
                let (Some(epoch), Some(dev)) = (epoch_of(ev), device_of(ev)) else {
                    continue;
                };
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.last_cp_report.insert(dev, ev.t_ns);
                }
            }
            "report.arrive" => {
                let (Some(epoch), Some(dev)) = (epoch_of(ev), device_of(ev)) else {
                    continue;
                };
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.report_arrivals.push((ev.t_ns, dev));
                }
            }
            "obs.finalize" => {
                let Some(epoch) = epoch_of(ev) else { continue };
                if let Some(a) = epochs.get_mut(&epoch) {
                    a.finalize_t = Some(ev.t_ns);
                    a.forced = field(&ev.fields, "forced")
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false);
                    a.excluded = field(&ev.fields, "excluded")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(0);
                }
            }
            "snap.complete" => {
                let Some(epoch) = epoch_of(ev) else { continue };
                if let Some(a) = epochs.get_mut(&epoch) {
                    let dur = field(&ev.fields, "dur_ns")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(0);
                    a.complete = Some((ev.t_ns, dur));
                }
            }
            _ => {}
        }
    }
    epochs.into_values().collect()
}

/// Marker-fanout sizes across every `(epoch, device)` pair, as a
/// histogram over [`obs::metrics::DEPTH_BOUNDS`]: how many unit saves
/// each device-level initiation cascaded into.
pub fn fanout_histogram(analyses: &[EpochAnalysis]) -> obs::metrics::Histogram {
    let mut h = obs::metrics::Histogram::new(&obs::metrics::DEPTH_BOUNDS);
    for a in analyses {
        for &n in a.marker_fanout.values() {
            h.observe(n);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned conformance golden trace (`topo=line:2`, 2 snapshots,
    /// seed 0x60de): the analyzer's ground-truth fixture. Re-blessing
    /// the golden file intentionally re-blesses these numbers too.
    const GOLDEN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../conformance/tests/golden/line2_cs_trace.jsonl"
    ));

    fn golden_analyses() -> Vec<EpochAnalysis> {
        let events = parse_trace(GOLDEN).expect("golden trace parses");
        analyze(&events)
    }

    #[test]
    fn golden_trace_reconstructs_both_epochs() {
        let a = golden_analyses();
        assert_eq!(a.len(), 2, "two snapshots in the golden scenario");
        assert_eq!(a[0].epoch, 1);
        assert_eq!(a[1].epoch, 2);
        for e in &a {
            assert_eq!(e.devices, 2);
            assert_eq!(e.units, 8);
            assert!(!e.forced);
            assert_eq!(e.excluded, 0);
            assert_eq!(e.reinitiations, 0);
            assert!(e.finalize_t.is_some(), "epoch {} sealed", e.epoch);
            assert_eq!(e.dev_initiate.len(), 2, "both devices initiated");
        }
    }

    #[test]
    fn golden_epoch1_breakdown_matches_pinned_times() {
        let a = golden_analyses();
        let e1 = &a[0];
        assert_eq!(e1.initiate_t, 2_000_000);
        assert_eq!(e1.finalize_t, Some(3_187_841));
        assert_eq!(e1.total_ns(), Some(1_187_841));
        // snap.complete's own dur_ns must agree with the reconstruction.
        let (_, dur) = e1.complete.expect("epoch 1 completed");
        assert_eq!(dur, 1_187_841);
        // The last report (dev 1 at t=3187841) seals the epoch directly.
        assert_eq!(e1.report_arrivals.last(), Some(&(3_187_841, 1)));
        assert_eq!(e1.seal_ns(), Some(0));
    }

    #[test]
    fn golden_epoch1_critical_path_is_monotone_and_ends_at_seal() {
        let a = golden_analyses();
        let hops = a[0].critical_path();
        assert!(hops.len() >= 4, "expected a multi-hop chain: {hops:?}");
        assert_eq!(hops[0].label, "snap.initiate");
        assert_eq!(hops[0].t_ns, 2_000_000);
        assert_eq!(hops.last().expect("nonempty").label, "obs.finalize");
        assert_eq!(hops.last().expect("nonempty").t_ns, 3_187_841);
        // The slowest chain runs through device 1 (its report is last).
        assert!(hops.iter().any(|h| h.label == "dev.initiate dev=1"));
        assert!(hops.iter().any(|h| h.label == "report.arrive dev=1"));
        for pair in hops.windows(2) {
            assert!(
                pair[0].t_ns <= pair[1].t_ns,
                "chain must be time-monotone: {pair:?}"
            );
        }
    }

    #[test]
    fn golden_fanout_covers_every_unit() {
        let a = golden_analyses();
        // line:2 with channel state: 2 devices x 2 ports x 2 directions
        // = 8 initiation saves per epoch, plus the channel-marker
        // arrivals that propagate the snapshot id between neighbors —
        // 14 marker observations per epoch in the pinned trace.
        for e in &a {
            let total: u64 = e.marker_fanout.values().sum();
            assert_eq!(total, 14, "epoch {} marker fanout", e.epoch);
            assert_eq!(e.marker_fanout.len(), 2, "both devices saw markers");
            assert!(
                e.marker_fanout.values().all(|&n| n >= 4),
                "every device saves its own 4 units at least"
            );
        }
        let h = fanout_histogram(&a);
        assert_eq!(h.count(), 4, "2 epochs x 2 devices");
    }

    #[test]
    fn attribution_follows_most_recent_dev_initiate() {
        // A device that re-initiates for epoch 2 mid-stream: the marker
        // after the second dev.initiate must land in epoch 2.
        let doc = "\
{\"t\":0,\"ev\":\"snap.initiate\",\"epoch\":1,\"devices\":1,\"units\":2}\n\
{\"t\":10,\"ev\":\"dev.initiate\",\"dev\":0,\"epoch\":1}\n\
{\"t\":20,\"ev\":\"marker.seen\",\"dev\":0,\"port\":0,\"dir\":\"in\",\"ch\":65535,\"sid\":1}\n\
{\"t\":30,\"ev\":\"report.arrive\",\"dev\":0,\"epoch\":1}\n\
{\"t\":31,\"ev\":\"obs.finalize\",\"epoch\":1,\"units\":2,\"excluded\":0,\"forced\":false}\n\
{\"t\":40,\"ev\":\"snap.initiate\",\"epoch\":2,\"devices\":1,\"units\":2}\n\
{\"t\":50,\"ev\":\"dev.initiate\",\"dev\":0,\"epoch\":2}\n\
{\"t\":60,\"ev\":\"marker.seen\",\"dev\":0,\"port\":0,\"dir\":\"in\",\"ch\":65535,\"sid\":2}\n";
        let events = parse_trace(doc).expect("fixture parses");
        let a = analyze(&events);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].marker_fanout.get(&0), Some(&1));
        assert_eq!(a[0].last_marker.get(&0), Some(&20));
        assert_eq!(a[1].marker_fanout.get(&0), Some(&1));
        assert_eq!(a[1].last_marker.get(&0), Some(&60));
    }

    #[test]
    fn forced_epoch_has_positive_seal_latency() {
        let doc = "\
{\"t\":0,\"ev\":\"snap.initiate\",\"epoch\":1,\"devices\":2,\"units\":4}\n\
{\"t\":5,\"ev\":\"dev.initiate\",\"dev\":0,\"epoch\":1}\n\
{\"t\":30,\"ev\":\"report.arrive\",\"dev\":0,\"epoch\":1}\n\
{\"t\":100,\"ev\":\"obs.finalize\",\"epoch\":1,\"units\":4,\"excluded\":1,\"forced\":true}\n";
        let events = parse_trace(doc).expect("fixture parses");
        let a = analyze(&events);
        assert_eq!(a.len(), 1);
        assert!(a[0].forced);
        assert_eq!(a[0].excluded, 1);
        assert_eq!(a[0].seal_ns(), Some(70));
        let hops = a[0].critical_path();
        assert_eq!(hops.last().expect("nonempty").t_ns, 100);
    }
}
