//! Benchmark harness for Speedlight-rs.
//!
//! Binaries (`cargo run --release -p bench --bin <name>`) regenerate the
//! paper's evaluation artifacts:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | Table 1 — Tofino resource usage |
//! | `fig9` | Fig. 9 — synchronization CDFs |
//! | `fig10` | Fig. 10 — max sustained snapshot rate |
//! | `fig11` | Fig. 11 — synchronization vs network size |
//! | `fig12` | Fig. 12 — load-balance stddev CDFs |
//! | `fig13` | Fig. 13 — Spearman correlation study |
//! | `ablations` | beyond-paper design ablations |
//!
//! Criterion benches (`cargo bench -p bench`) cover the per-packet data
//! plane, control-plane notification handling, the wire codec, and
//! whole-testbed simulation throughput.

#![forbid(unsafe_code)]

pub mod trace;
