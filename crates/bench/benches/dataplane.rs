//! Micro-benchmarks of the data-plane hot path.
//!
//! These back the feasibility story (§5, §7): the per-packet snapshot
//! logic is a handful of register operations — here measured as the cost
//! of the whole state machine in software, per packet, for each of the
//! three cases a packet can hit (current / in-flight / advance) and for
//! the wire codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use speedlight_core::types::{ChannelId, UnitId};
use speedlight_core::unit::{DataPlaneUnit, UnitConfig};
use speedlight_core::WrappedId;
use telemetry::{MetricBank, MetricKind};
use wire::SnapshotHeader;

fn unit(channel_state: bool, channels: u16) -> DataPlaneUnit {
    DataPlaneUnit::new(UnitConfig {
        unit: UnitId::ingress(0, 0),
        modulus: 256,
        channel_state,
        num_channels: channels,
    })
}

fn bench_unit(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_unit");

    // Common case: packet carries the current epoch — pure comparison.
    g.bench_function("current_epoch_cs", |b| {
        let mut u = unit(true, 4);
        let w = WrappedId::from_raw(0, 256);
        b.iter(|| {
            black_box(u.on_packet(ChannelId(0), black_box(w), 7, 1, false));
        })
    });

    // In-flight: channel-state accumulation.
    g.bench_function("in_flight_cs", |b| {
        let mut u = unit(true, 4);
        u.on_packet(ChannelId(0), WrappedId::from_raw(1, 256), 7, 1, false);
        let old = WrappedId::from_raw(0, 256);
        b.iter(|| {
            black_box(u.on_packet(ChannelId(1), black_box(old), 7, 1, false));
        })
    });

    // Epoch advance: slot save + notification build (alternating so every
    // iteration really advances).
    g.bench_function("advance_cs", |b| {
        let mut u = unit(true, 1);
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let w = WrappedId::wrap(epoch, 256);
            black_box(u.on_packet(ChannelId(0), w, epoch, 1, false));
        })
    });

    g.bench_function("current_epoch_no_cs", |b| {
        let mut u = unit(false, 4);
        let w = WrappedId::from_raw(0, 256);
        b.iter(|| {
            black_box(u.on_packet(ChannelId(0), black_box(w), 7, 1, false));
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric_bank");
    for kind in [
        MetricKind::PacketCount,
        MetricKind::ByteCount,
        MetricKind::EwmaInterarrival,
    ] {
        g.bench_function(&format!("{kind:?}"), |b| {
            let mut bank = MetricBank::new(kind, 64);
            let mut t = 0u64;
            b.iter(|| {
                t += 800;
                bank.on_packet(7, netsim::time::Instant::from_nanos(t), 1_000);
                black_box(bank.read(7));
            })
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    g.bench_function("encode", |b| {
        let hdr = SnapshotHeader::data(123);
        let mut buf = Vec::with_capacity(wire::WIRE_LEN);
        b.iter(|| {
            buf.clear();
            hdr.encode(&mut buf);
            black_box(&buf);
        })
    });
    g.bench_function("decode", |b| {
        let bytes = SnapshotHeader::data(123).encode_to_vec();
        b.iter(|| {
            let mut slice = bytes.as_slice();
            black_box(SnapshotHeader::decode(&mut slice).unwrap());
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_unit, bench_metrics, bench_wire
}
criterion_main!(benches);
