//! Whole-simulator throughput: how many simulated packet-events per second
//! the testbed substrate sustains (this bounds how long the figure
//! binaries take, and documents that the experiments are not event-starved).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::Topology;
use netsim::dist::Dist;
use netsim::time::{Duration, Instant};
use workloads::PoissonSource;

fn build(snapshots: bool) -> Testbed {
    let topo = Topology::leaf_spine(2, 2, 3);
    let mut cfg = TestbedConfig::new(SnapshotConfig::packet_count_cs(256));
    cfg.driver = DriverConfig {
        snapshot_period: snapshots.then(|| Duration::from_millis(2)),
        ..DriverConfig::default()
    };
    let mut tb = Testbed::new(topo, cfg);
    for h in 0..6u32 {
        let dsts: Vec<u32> = (0..6).filter(|&d| d != h).collect();
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(
                PoissonSource::new(h, dsts, 100_000.0, Dist::constant(700.0), u64::from(h))
                    .flows_per_dst(4),
            ),
        );
    }
    tb
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("testbed");
    g.sample_size(10);

    // 10 simulated ms of 600k pps leaf-spine traffic, no snapshots.
    g.bench_function("10ms_leafspine_traffic", |b| {
        b.iter_batched(
            || build(false),
            |mut tb| {
                tb.run_until(Instant::ZERO + Duration::from_millis(10));
                black_box(tb.network().instr.host_rx.len())
            },
            BatchSize::PerIteration,
        )
    });

    // Same with periodic channel-state snapshots: measures the protocol's
    // overhead on the simulation.
    g.bench_function("10ms_leafspine_with_snapshots", |b| {
        b.iter_batched(
            || build(true),
            |mut tb| {
                tb.run_until(Instant::ZERO + Duration::from_millis(10));
                black_box(tb.snapshots().len())
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sim
}
criterion_main!(benches);
