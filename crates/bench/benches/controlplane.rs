//! Micro-benchmarks of the control-plane path (Fig. 7) and the observer.
//!
//! The paper's Fig. 10 ceiling is set by control-plane processing latency;
//! these measure how cheap the *logic* itself is (the paper's bottleneck
//! was its Python runtime, modeled separately in `fabric::LatencyModel`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use speedlight_core::control::{ControlPlane, Registers, Report, ReportValue};
use speedlight_core::observer::{Observer, ObserverConfig};
use speedlight_core::types::{ChannelId, Notification, UnitId};
use speedlight_core::unit::{DataPlaneUnit, SnapSlot, UnitConfig};
use speedlight_core::WrappedId;
use std::collections::BTreeMap;

struct Regs {
    units: BTreeMap<UnitId, DataPlaneUnit>,
}

impl Registers for Regs {
    fn read_sid(&mut self, unit: UnitId) -> WrappedId {
        self.units[&unit].sid()
    }
    fn read_last_seen(&mut self, unit: UnitId, channel: ChannelId) -> WrappedId {
        self.units[&unit].last_seen(channel)
    }
    fn take_slot(&mut self, unit: UnitId, id: WrappedId) -> Option<SnapSlot> {
        self.units.get_mut(&unit).unwrap().take_slot(id)
    }
}

fn bench_cp(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_plane");

    // Steady-state notification: one unit advancing epoch by epoch.
    g.bench_function("notification_advance_no_cs", |b| {
        let uid = UnitId::ingress(0, 0);
        let mut cp = ControlPlane::new(0, 4_096, false);
        cp.register_unit(uid, 1, vec![true]);
        let mut regs = Regs {
            units: BTreeMap::from([(
                uid,
                DataPlaneUnit::new(UnitConfig {
                    unit: uid,
                    modulus: 4_096,
                    channel_state: false,
                    num_channels: 1,
                }),
            )]),
        };
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let w = WrappedId::wrap(epoch, 4_096);
            let out = regs
                .units
                .get_mut(&uid)
                .unwrap()
                .on_packet(ChannelId(0), w, epoch, 1, false);
            let n = out.notification.unwrap();
            black_box(cp.on_notification(&n, &mut regs));
        })
    });

    // Duplicate notification (the dedup fast path).
    g.bench_function("notification_duplicate", |b| {
        let uid = UnitId::ingress(0, 0);
        let mut cp = ControlPlane::new(0, 256, true);
        cp.register_unit(uid, 1, vec![true]);
        let mut regs = Regs {
            units: BTreeMap::from([(
                uid,
                DataPlaneUnit::new(UnitConfig {
                    unit: uid,
                    modulus: 256,
                    channel_state: true,
                    num_channels: 1,
                }),
            )]),
        };
        let n = Notification {
            unit: uid,
            old_sid: WrappedId::from_raw(0, 256),
            new_sid: WrappedId::from_raw(0, 256),
            channel: Some(ChannelId(0)),
            old_last_seen: WrappedId::from_raw(0, 256),
            new_last_seen: WrappedId::from_raw(0, 256),
        };
        b.iter(|| black_box(cp.on_notification(black_box(&n), &mut regs)))
    });
    g.finish();
}

fn bench_observer(c: &mut Criterion) {
    let mut g = c.benchmark_group("observer");

    // Full assembly of a 128-unit (64-port switch) snapshot.
    g.bench_function("assemble_128_units", |b| {
        b.iter(|| {
            let mut obs = Observer::new(ObserverConfig::for_modulus(256));
            let units: Vec<UnitId> = (0..64)
                .flat_map(|p| [UnitId::ingress(0, p), UnitId::egress(0, p)])
                .collect();
            obs.register_device(0, units.clone());
            let epoch = obs.begin_snapshot().unwrap();
            let mut done = None;
            for (i, u) in units.iter().enumerate() {
                done = obs.on_report(
                    0,
                    Report {
                        unit: *u,
                        epoch,
                        value: ReportValue::Value {
                            local: i as u64,
                            channel: 0,
                        },
                    },
                );
            }
            black_box(done.expect("complete"))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_cp, bench_observer
}
criterion_main!(benches);
