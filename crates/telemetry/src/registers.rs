//! Metric register banks.
//!
//! One [`MetricBank`] holds a single metric across all ports of one device
//! side. The bank exposes the three operations the snapshot data plane
//! needs (§5.2–5.3):
//!
//! * [`MetricBank::read`] — the register value to *save* when a snapshot
//!   triggers (called before the packet's own update, per Fig. 3);
//! * [`MetricBank::on_packet`] — the orthogonal metric update;
//! * [`MetricBank::contrib`] — the packet's channel-state contribution if
//!   it turns out to be in flight (metric-specific, §4.2).

use crate::ewma::EwmaInterarrival;
use netsim::time::Instant;

/// Which metric a bank implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Per-port packet counter. Channel contribution: 1 per packet.
    PacketCount,
    /// Per-port byte counter. Channel contribution: packet length.
    ByteCount,
    /// Queue depth gauge (set by the queueing engine, not by packets).
    /// Channel state is meaningless for instantaneous gauges (§4.2).
    QueueDepth,
    /// EWMA of packet interarrival time (§8), decay .5. No channel state.
    EwmaInterarrival,
    /// Longer-memory interarrival EWMA (decay 1/16): the smoothed
    /// packet-rate view used by the correlation study (§8.4).
    EwmaRate,
}

impl MetricKind {
    /// Whether channel state is meaningful for this metric.
    pub fn supports_channel_state(self) -> bool {
        matches!(self, MetricKind::PacketCount | MetricKind::ByteCount)
    }

    /// Whether this metric is an interarrival EWMA variant.
    pub fn is_ewma(self) -> bool {
        matches!(self, MetricKind::EwmaInterarrival | MetricKind::EwmaRate)
    }
}

/// A per-port register bank for one metric.
#[derive(Debug, Clone)]
pub struct MetricBank {
    kind: MetricKind,
    counters: Vec<u64>,
    ewma: EwmaInterarrival,
}

impl MetricBank {
    /// Create a zeroed bank for `ports` ports.
    pub fn new(kind: MetricKind, ports: u16) -> MetricBank {
        let ewma = match kind {
            MetricKind::EwmaRate => EwmaInterarrival::new(ports).with_decay_shift(4),
            _ => EwmaInterarrival::new(ports),
        };
        MetricBank {
            kind,
            counters: vec![0; usize::from(ports)],
            ewma,
        }
    }

    /// The metric this bank implements.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Register value for `port` (what a snapshot saves).
    pub fn read(&self, port: u16) -> u64 {
        match self.kind {
            MetricKind::EwmaInterarrival | MetricKind::EwmaRate => self.ewma.read(port),
            _ => self.counters[usize::from(port)],
        }
    }

    /// Apply one packet's update.
    pub fn on_packet(&mut self, port: u16, now: Instant, bytes: u32) {
        match self.kind {
            MetricKind::PacketCount => self.counters[usize::from(port)] += 1,
            MetricKind::ByteCount => self.counters[usize::from(port)] += u64::from(bytes),
            MetricKind::QueueDepth => {} // gauge: driven by set_gauge
            MetricKind::EwmaInterarrival | MetricKind::EwmaRate => self.ewma.on_packet(port, now),
        }
    }

    /// Set a gauge register (queue depth updates from the queueing engine).
    pub fn set_gauge(&mut self, port: u16, value: u64) {
        debug_assert_eq!(self.kind, MetricKind::QueueDepth);
        self.counters[usize::from(port)] = value;
    }

    /// The packet's channel-state contribution.
    pub fn contrib(&self, bytes: u32) -> u64 {
        match self.kind {
            MetricKind::PacketCount => 1,
            MetricKind::ByteCount => u64::from(bytes),
            MetricKind::QueueDepth | MetricKind::EwmaInterarrival | MetricKind::EwmaRate => 0,
        }
    }

    /// Access the EWMA view (rate conversion for the correlation study).
    pub fn ewma(&self) -> &EwmaInterarrival {
        &self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Duration;

    fn at(us: u64) -> Instant {
        Instant::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn packet_counter_counts() {
        let mut b = MetricBank::new(MetricKind::PacketCount, 2);
        b.on_packet(0, at(1), 100);
        b.on_packet(0, at(2), 200);
        b.on_packet(1, at(3), 300);
        assert_eq!(b.read(0), 2);
        assert_eq!(b.read(1), 1);
        assert_eq!(b.contrib(1500), 1);
    }

    #[test]
    fn byte_counter_sums() {
        let mut b = MetricBank::new(MetricKind::ByteCount, 1);
        b.on_packet(0, at(1), 100);
        b.on_packet(0, at(2), 250);
        assert_eq!(b.read(0), 350);
        assert_eq!(b.contrib(1500), 1500);
    }

    #[test]
    fn queue_depth_is_a_gauge() {
        let mut b = MetricBank::new(MetricKind::QueueDepth, 1);
        b.on_packet(0, at(1), 100); // packets do not move the gauge
        assert_eq!(b.read(0), 0);
        b.set_gauge(0, 17);
        assert_eq!(b.read(0), 17);
        assert_eq!(
            b.contrib(1500),
            0,
            "instantaneous gauges skip channel state"
        );
    }

    #[test]
    fn ewma_bank_delegates() {
        let mut b = MetricBank::new(MetricKind::EwmaInterarrival, 1);
        for i in 0..100 {
            b.on_packet(0, at(10 * i), 64);
        }
        assert!(b.read(0) > 0);
        assert_eq!(b.read(0), b.ewma().read(0));
        assert_eq!(b.contrib(64), 0);
    }

    #[test]
    fn channel_state_support_matches_metric_semantics() {
        assert!(MetricKind::PacketCount.supports_channel_state());
        assert!(MetricKind::ByteCount.supports_channel_state());
        assert!(!MetricKind::QueueDepth.supports_channel_state());
        assert!(!MetricKind::EwmaInterarrival.supports_channel_state());
    }
}
