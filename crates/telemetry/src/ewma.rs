//! The paper's EWMA-of-interarrival register program (§8 "Counters").
//!
//! The Tofino cannot read-modify-write two registers in one stage, so the
//! paper splits the EWMA across phases keyed on packet-count parity:
//!
//! ```text
//! interarrival = pkt_timestamp - last_ts[port]
//! last_ts[port] = pkt_timestamp
//! if packet_count[port] is even:
//!     temp_ewma[port] += interarrival
//! else:
//!     temp_ewma[port] /= 2
//!     ewma[port] = (ewma[port] + temp_ewma[port]) / 2
//!     temp_ewma[port] = 0
//! ```
//!
//! i.e. the EWMA updates on every other packet with the *average
//! interarrival of the last two packets*, which is "functionally equivalent
//! to an EWMA with a decay factor of .5". (The paper's listing elides the
//! accumulate-then-halve bookkeeping — `ewma[port] /= temp_ewma[port]` as
//! printed is a typo, since dividing a time by a time yields a unitless
//! value; we implement the stated intent.)
//!
//! All registers are integer nanoseconds, as they would be on the ASIC.

use netsim::time::Instant;

/// Per-port EWMA-of-interarrival registers.
#[derive(Debug, Clone)]
pub struct EwmaInterarrival {
    last_ts: Vec<u64>,
    packet_count: Vec<u64>,
    temp_ewma: Vec<u64>,
    ewma: Vec<u64>,
    /// Decay shift `k`: each pair average is folded in as
    /// `ewma ← ((2^k − 1)·ewma + pair_avg) / 2^k`. The paper's listing is
    /// `k = 1` (decay .5); larger shifts give the longer-memory smoothing
    /// a rate study wants (still just shift-and-add on the ASIC).
    decay_shift: u8,
}

impl EwmaInterarrival {
    /// Create registers for `ports` ports, all zeroed (paper's decay .5).
    pub fn new(ports: u16) -> EwmaInterarrival {
        let n = usize::from(ports);
        EwmaInterarrival {
            last_ts: vec![0; n],
            packet_count: vec![0; n],
            temp_ewma: vec![0; n],
            ewma: vec![0; n],
            decay_shift: 1,
        }
    }

    /// Use decay `1/2^k` instead of the paper's `1/2`.
    pub fn with_decay_shift(mut self, k: u8) -> EwmaInterarrival {
        assert!((1..=8).contains(&k));
        self.decay_shift = k;
        self
    }

    /// Process one packet arrival on `port` at `now`.
    pub fn on_packet(&mut self, port: u16, now: Instant) {
        let p = usize::from(port);
        let ts = now.as_nanos();
        let interarrival = ts.saturating_sub(self.last_ts[p]);
        self.last_ts[p] = ts;
        if self.packet_count[p] == 0 {
            // Very first packet: no interarrival exists yet; prime the
            // timestamp register only (counts as packet 0, "even", with a
            // zero contribution).
            self.packet_count[p] = 1;
            return;
        }
        if self.packet_count[p] % 2 == 1 {
            // Even data-phase (first of a pair): accumulate.
            self.temp_ewma[p] += interarrival;
        } else {
            // Odd phase (second of a pair): fold the pair average in with
            // decay 0.5.
            let pair_avg = (self.temp_ewma[p] + interarrival) / 2;
            self.ewma[p] = if self.ewma[p] == 0 {
                pair_avg
            } else {
                let k = u32::from(self.decay_shift);
                (self.ewma[p] * ((1 << k) - 1) + pair_avg) >> k
            };
            self.temp_ewma[p] = 0;
        }
        self.packet_count[p] += 1;
    }

    /// The snapshotted register: current EWMA of interarrival, nanoseconds.
    pub fn read(&self, port: u16) -> u64 {
        self.ewma[usize::from(port)]
    }

    /// Packets seen on `port`.
    pub fn packets(&self, port: u16) -> u64 {
        self.packet_count[usize::from(port)]
    }

    /// Derived packet rate in packets/second (`1e9 / ewma`), or 0 if no
    /// estimate exists yet. The Fig. 13 correlation study uses this view.
    pub fn rate_pps(&self, port: u16) -> f64 {
        let e = self.read(port);
        if e == 0 {
            0.0
        } else {
            1e9 / e as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Duration;

    fn at(us: u64) -> Instant {
        Instant::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn constant_spacing_converges_to_the_interarrival() {
        let mut m = EwmaInterarrival::new(1);
        for i in 0..100 {
            m.on_packet(0, at(10 * i)); // 10 µs spacing
        }
        let e = m.read(0);
        assert!(
            (9_000..=10_000).contains(&e),
            "ewma {e} ns should approach 10 µs"
        );
    }

    #[test]
    fn first_packet_produces_no_estimate() {
        let mut m = EwmaInterarrival::new(1);
        m.on_packet(0, at(5));
        assert_eq!(m.read(0), 0);
        assert_eq!(m.packets(0), 1);
        // Second packet completes no pair yet (it is the accumulate phase).
        m.on_packet(0, at(15));
        assert_eq!(m.read(0), 0);
        // Third packet folds the first pair in.
        m.on_packet(0, at(25));
        assert_eq!(m.read(0), 10_000);
    }

    #[test]
    fn decay_factor_is_one_half() {
        let mut m = EwmaInterarrival::new(1);
        // Prime with 100 packets at 10 µs so the EWMA settles near 10 µs.
        let mut t = 0;
        for _ in 0..101 {
            m.on_packet(0, at(t));
            t += 10;
        }
        let settled = m.read(0) as f64;
        // One pair at 2 µs spacing: new = (old + 2 µs)/2.
        m.on_packet(0, at(t + 2));
        m.on_packet(0, at(t + 4));
        let expected = (settled + 2_000.0) / 2.0;
        let got = m.read(0) as f64;
        assert!(
            (got - expected).abs() <= settled * 0.35 + 2.0,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn bursty_traffic_pulls_the_average_down() {
        let mut steady = EwmaInterarrival::new(1);
        let mut bursty = EwmaInterarrival::new(1);
        for i in 0..200u64 {
            steady.on_packet(0, at(100 * i));
        }
        // Same packet count, same span, but clustered in bursts of 10
        // packets 1 µs apart.
        let mut t = 0;
        for burst in 0..20u64 {
            for j in 0..10u64 {
                bursty.on_packet(0, at(burst * 1_000 + j));
                t = burst * 1_000 + j;
            }
        }
        let _ = t;
        assert!(
            bursty.read(0) < steady.read(0) / 4,
            "bursty {} vs steady {}",
            bursty.read(0),
            steady.read(0)
        );
    }

    #[test]
    fn larger_decay_shift_smooths_harder() {
        let mut fast = EwmaInterarrival::new(1);
        let mut slow = EwmaInterarrival::new(1).with_decay_shift(5);
        // Settle both at 10 µs spacing…
        let mut t = 0;
        for _ in 0..201 {
            fast.on_packet(0, at(t));
            slow.on_packet(0, at(t));
            t += 10;
        }
        let f0 = fast.read(0);
        let s0 = slow.read(0);
        // …then hit them with one 1 µs pair.
        fast.on_packet(0, at(t + 1));
        fast.on_packet(0, at(t + 2));
        slow.on_packet(0, at(t + 1));
        slow.on_packet(0, at(t + 2));
        let df = f0 - fast.read(0);
        let ds = s0 - slow.read(0);
        assert!(df > 4 * ds, "fast moved {df}, slow moved {ds}");
    }

    #[test]
    fn ports_are_independent() {
        let mut m = EwmaInterarrival::new(2);
        for i in 0..50 {
            m.on_packet(0, at(10 * i));
            m.on_packet(1, at(50 * i));
        }
        assert!(m.read(1) > 3 * m.read(0));
        assert_eq!(m.packets(0), 50);
        assert_eq!(m.packets(1), 50);
    }

    #[test]
    fn rate_view_inverts_interarrival() {
        let mut m = EwmaInterarrival::new(1);
        assert_eq!(m.rate_pps(0), 0.0);
        for i in 0..100 {
            m.on_packet(0, at(10 * i));
        }
        let rate = m.rate_pps(0);
        // 10 µs spacing → 100k pps.
        assert!((rate - 1e5).abs() / 1e5 < 0.15, "rate {rate}");
    }
}
