//! Data-plane telemetry metrics (§8 "Counters").
//!
//! The snapshot primitive is metric-agnostic: "any value accessible at line
//! rate in the data plane can be snapshotted" (§3). This crate provides the
//! metrics the paper's evaluation uses — per-port packet and byte counters,
//! queue depth gauges, and the two-phase **EWMA of packet interarrival
//! time** that drives the load-balancing study (Fig. 12) — all implemented
//! as register arrays the way a stateful ALU would hold them.
//!
//! A [`MetricBank`] bundles one metric across the ports of a device side
//! (ingress or egress); the fabric reads the register *before* applying a
//! packet's update (matching Fig. 3, where the saved state excludes the
//! packet that carries the new snapshot ID).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ewma;
pub mod registers;

pub use ewma::EwmaInterarrival;
pub use registers::{MetricBank, MetricKind};
