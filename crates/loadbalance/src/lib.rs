//! Multipath load balancers (§8 "Workload").
//!
//! The paper implements two algorithms alongside the snapshot logic in the
//! switch ASIC and uses snapshots to compare them (Fig. 12):
//!
//! * **ECMP** — classic per-flow hashing (RFC 2992): every packet of a flow
//!   takes the same equal-cost next hop, so elephant collisions persist.
//! * **Flowlet switching** — Kandula et al.: bursts of a flow separated by
//!   an idle gap longer than the path-delay skew can be re-routed
//!   independently without reordering, giving finer-grained balance.
//!
//! Both are deterministic given their salt — required so that every switch
//! in a simulation (and every re-run of an experiment) makes reproducible
//! choices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netsim::time::{Duration, Instant};
use std::collections::BTreeMap;
use wire::FlowKey;

/// A multipath next-hop selector.
pub trait LoadBalancer {
    /// Choose an index into `next_hops` (`next_hops.len()` ≥ 1) for a
    /// packet of `flow` arriving at `now`.
    fn pick(&mut self, flow: &FlowKey, now: Instant, num_next_hops: usize) -> usize;

    /// Human-readable algorithm name (experiment labels).
    fn name(&self) -> &'static str;
}

/// Per-flow ECMP hashing.
#[derive(Debug, Clone)]
pub struct Ecmp {
    salt: u64,
}

impl Ecmp {
    /// Create an ECMP balancer. All switches in a network should share the
    /// `salt` only if hash-polarization is desired; normally each switch
    /// gets its own.
    pub fn new(salt: u64) -> Ecmp {
        Ecmp { salt }
    }
}

impl LoadBalancer for Ecmp {
    fn pick(&mut self, flow: &FlowKey, _now: Instant, num_next_hops: usize) -> usize {
        debug_assert!(num_next_hops > 0);
        (flow.stable_hash(self.salt) % num_next_hops as u64) as usize
    }

    fn name(&self) -> &'static str {
        "ecmp"
    }
}

/// Flowlet switching: re-hash a flow whenever it pauses longer than the
/// flowlet gap.
#[derive(Debug, Clone)]
pub struct FlowletSwitch {
    salt: u64,
    gap: Duration,
    /// Per-flow: (last packet time, flowlet sequence number). A `BTreeMap`
    /// so that iteration (aging, occupancy dumps, telemetry) is in stable
    /// key order — `HashMap` order varies per process and would leak into
    /// any result derived from a table walk.
    table: BTreeMap<FlowKey, (Instant, u64)>,
}

impl FlowletSwitch {
    /// Create a flowlet balancer with the given inactivity `gap`.
    ///
    /// The gap should exceed the maximum path-delay difference between the
    /// equal-cost paths so that consecutive flowlets cannot reorder.
    pub fn new(salt: u64, gap: Duration) -> FlowletSwitch {
        FlowletSwitch {
            salt,
            gap,
            table: BTreeMap::new(),
        }
    }

    /// The configured flowlet gap.
    pub fn gap(&self) -> Duration {
        self.gap
    }

    /// Number of tracked flows (table occupancy).
    pub fn tracked_flows(&self) -> usize {
        self.table.len()
    }

    /// Drop table entries idle since before `horizon` (periodic aging, as a
    /// hardware flowlet table would do implicitly by overwrite).
    pub fn expire_before(&mut self, horizon: Instant) {
        self.table.retain(|_, (last, _)| *last >= horizon);
    }

    /// Tracked flows with their last-activity time and flowlet sequence
    /// number, in stable (key-sorted) order — safe to fold into snapshots
    /// or telemetry without leaking iteration order into results.
    pub fn tracked(&self) -> impl Iterator<Item = (&FlowKey, Instant, u64)> {
        self.table.iter().map(|(k, (last, seq))| (k, *last, *seq))
    }
}

impl LoadBalancer for FlowletSwitch {
    fn pick(&mut self, flow: &FlowKey, now: Instant, num_next_hops: usize) -> usize {
        debug_assert!(num_next_hops > 0);
        let entry = self.table.entry(*flow).or_insert((now, 0));
        if now.saturating_since(entry.0) > self.gap {
            entry.1 += 1; // idle gap exceeded: new flowlet, new choice
        }
        entry.0 = now;
        let mut h = flow.stable_hash(self.salt);
        // Mix the flowlet sequence number into the choice.
        h ^= entry.1.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h % num_next_hops as u64) as usize
    }

    fn name(&self) -> &'static str {
        "flowlet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: u32) -> FlowKey {
        FlowKey::tcp(n, 100 + n, 1000 + n as u16, 80)
    }

    fn t(us: u64) -> Instant {
        Instant::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn ecmp_is_sticky_per_flow() {
        let mut lb = Ecmp::new(7);
        let f = flow(1);
        let first = lb.pick(&f, t(0), 4);
        for i in 1..100 {
            assert_eq!(lb.pick(&f, t(i), 4), first);
        }
    }

    #[test]
    fn ecmp_spreads_flows() {
        let mut lb = Ecmp::new(7);
        let mut counts = [0u32; 4];
        for n in 0..400 {
            counts[lb.pick(&flow(n), t(0), 4)] += 1;
        }
        for c in counts {
            assert!((60..140).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn flowlet_keeps_choice_within_a_burst() {
        let mut lb = FlowletSwitch::new(7, Duration::from_micros(100));
        let f = flow(1);
        let first = lb.pick(&f, t(0), 4);
        // Packets 10 µs apart: same flowlet, same choice.
        for i in 1..10 {
            assert_eq!(lb.pick(&f, t(10 * i), 4), first, "packet {i}");
        }
    }

    #[test]
    fn idle_gap_starts_a_new_flowlet() {
        let mut lb = FlowletSwitch::new(7, Duration::from_micros(100));
        let f = flow(3);
        let mut choices = std::collections::BTreeSet::new();
        let mut now = 0u64;
        for burst in 0..64u64 {
            choices.insert(lb.pick(&f, t(now), 4));
            // Gap of 1 ms ≫ 100 µs: next packet is a new flowlet.
            now += 1_000;
            let _ = burst;
        }
        assert!(
            choices.len() >= 3,
            "64 flowlets over 4 paths must explore most paths, got {choices:?}"
        );
    }

    #[test]
    fn sub_gap_pauses_do_not_split_flowlets() {
        let mut lb = FlowletSwitch::new(7, Duration::from_micros(100));
        let f = flow(4);
        let first = lb.pick(&f, t(0), 8);
        assert_eq!(lb.pick(&f, t(100), 8), first, "exactly the gap is not >gap");
        assert_eq!(lb.pick(&f, t(199), 8), first);
    }

    #[test]
    fn flowlets_balance_better_than_ecmp_for_few_elephants() {
        // 8 long-lived flows over 4 paths: ECMP collides with noticeable
        // probability; flowlets with regular gaps re-spread continuously.
        // Compare the max-min load imbalance in expectation over salts.
        let mut ecmp_imbalance = 0i64;
        let mut flowlet_imbalance = 0i64;
        for salt in 0..40u64 {
            let mut ecmp = Ecmp::new(salt);
            let mut fl = FlowletSwitch::new(salt, Duration::from_micros(50));
            let mut e_counts = [0i64; 4];
            let mut f_counts = [0i64; 4];
            for n in 0..8 {
                let f = flow(n);
                let mut now = u64::from(n); // desynchronize flows slightly
                for _ in 0..50 {
                    e_counts[ecmp.pick(&f, t(now), 4)] += 1;
                    f_counts[fl.pick(&f, t(now), 4)] += 1;
                    now += 200; // every packet is its own flowlet
                }
            }
            ecmp_imbalance += e_counts.iter().max().unwrap() - e_counts.iter().min().unwrap();
            flowlet_imbalance += f_counts.iter().max().unwrap() - f_counts.iter().min().unwrap();
        }
        assert!(
            flowlet_imbalance * 2 < ecmp_imbalance,
            "flowlet {flowlet_imbalance} vs ecmp {ecmp_imbalance}"
        );
    }

    #[test]
    fn table_aging_reclaims_entries() {
        let mut lb = FlowletSwitch::new(7, Duration::from_micros(100));
        for n in 0..10 {
            lb.pick(&flow(n), t(n as u64), 4);
        }
        assert_eq!(lb.tracked_flows(), 10);
        lb.expire_before(t(5));
        assert_eq!(lb.tracked_flows(), 5);
    }

    /// Fixed-seed regression: the full observable behavior of a balancer
    /// run — every pick plus a sorted walk of the flowlet table — must be
    /// bit-for-bit identical across two runs. This is the property the
    /// `hash-collection` invariant protects: with the old `HashMap` table
    /// any result derived from a table walk depended on per-process hash
    /// seeding.
    #[test]
    fn fixed_seed_runs_are_identical() {
        fn run(seed: u64) -> (Vec<usize>, Vec<(FlowKey, u64, u64)>) {
            let mut rng = netsim::rng::SimRng::new(seed);
            let mut lb = FlowletSwitch::new(seed, Duration::from_micros(100));
            let mut picks = Vec::new();
            let mut now = 0u64;
            for _ in 0..2_000 {
                let f = flow(rng.below(32) as u32);
                now += rng.below(300);
                picks.push(lb.pick(&f, t(now), 4));
                if now.is_multiple_of(7) {
                    lb.expire_before(t(now.saturating_sub(5_000)));
                }
            }
            let table: Vec<(FlowKey, u64, u64)> = lb
                .tracked()
                .map(|(k, last, seq)| (*k, last.as_nanos(), seq))
                .collect();
            (picks, table)
        }
        let a = run(0xD15EA5E);
        let b = run(0xD15EA5E);
        assert_eq!(a.0, b.0, "pick sequences diverged under a fixed seed");
        assert_eq!(a.1, b.1, "table walks diverged under a fixed seed");
        // And the walk really is in stable sorted order.
        let keys: Vec<FlowKey> = a.1.iter().map(|(k, _, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn single_next_hop_always_picks_it() {
        let mut e = Ecmp::new(1);
        let mut f = FlowletSwitch::new(1, Duration::from_micros(10));
        assert_eq!(e.pick(&flow(0), t(0), 1), 0);
        assert_eq!(f.pick(&flow(0), t(0), 1), 0);
    }
}
