//! Shard-count invariance of the sharded fabric engine: the same seeded
//! scenario, run at 1, 2, 3, or 4 shards, must produce byte-identical
//! artifacts — snapshots, merged delivery outputs, golden traces, and
//! metrics. The sharded-at-1-shard run is the reference execution.
//!
//! Property test: random seeds × topologies (leaf-spine, fat-tree k=4,
//! line) × shard counts, plus a pinned regression seed for the
//! cross-shard in-flight-packet-at-barrier corner.

use fabric::network::DriverConfig;
use fabric::shard::{PartitionHint, ShardedTestbed};
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::TestbedConfig;
use fabric::topology::Topology;
use fabric::traffic::Emission;
use fabric::Source;
use netsim::rng::SimRng;
use netsim::time::{Duration, Instant};
use proptest::prelude::*;
use telemetry::MetricKind;
use wire::FlowKey;

/// Constant-bit-rate source: deterministic, engine-independent load.
struct Cbr {
    src: u32,
    dst: u32,
    rate_pps: u64,
}

impl Source for Cbr {
    fn on_wake(
        &mut self,
        now: Instant,
        _rng: &mut SimRng,
        out: &mut Vec<Emission>,
    ) -> Option<Instant> {
        out.push(Emission {
            flow: FlowKey::tcp(self.src, self.dst, 10_000, 80),
            bytes: 1_000,
        });
        Some(now + Duration::from_nanos(1_000_000_000 / self.rate_pps))
    }
}

#[derive(Debug, Clone, Copy)]
enum Topo {
    LeafSpine,
    FatTree4,
    Line5,
}

impl Topo {
    fn build(self) -> (Topology, PartitionHint) {
        match self {
            Topo::LeafSpine => (
                Topology::leaf_spine(2, 2, 3),
                PartitionHint::LeafSpine { leaves: 2 },
            ),
            Topo::FatTree4 => (Topology::fat_tree(4), PartitionHint::FatTree { k: 4 }),
            Topo::Line5 => (Topology::line(5), PartitionHint::Generic),
        }
    }
}

/// Run one seeded scenario at `shards` and render every covered artifact
/// to comparable bytes.
fn artifacts(topo: Topo, shards: usize, seed: u64) -> String {
    let (topology, hint) = topo.build();
    let snap = SnapshotConfig {
        modulus: 16,
        channel_state: true,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    };
    let mut cfg = TestbedConfig::new(snap);
    cfg.seed = seed;
    cfg.driver = DriverConfig::default();
    let num_hosts = topology.num_hosts();
    let mut tb = ShardedTestbed::new(topology, cfg, hint, shards);
    for h in 0..num_hosts {
        // Every host sends to its "antipode" so traffic crosses the
        // partition cut on every topology.
        let dst = (h + num_hosts / 2) % num_hosts;
        if dst == h {
            continue;
        }
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(Cbr {
                src: h,
                dst,
                rate_pps: 40_000,
            }),
        );
    }
    tb.enable_trace();
    tb.enable_delivery_log();
    tb.snapshot_at(Instant::from_nanos(2_000_000));
    tb.snapshot_at(Instant::from_nanos(6_000_000));
    tb.run_until(Instant::from_nanos(30_000_000));
    let snaps = format!("{:?}", tb.snapshots());
    let rx = format!("{:?}", tb.host_rx());
    let sync = format!("{:?}", tb.sync_spreads(1));
    let log = format!("{:?}", tb.delivery_log().map(|l| l.len()));
    let metrics = tb.export_metrics();
    let trace = tb.take_trace_lines().join("\n");
    format!("snaps={snaps} rx={rx} sync={sync} log={log} metrics={metrics} trace={trace}")
}

proptest! {
    /// Random seed, topology, and shard count: byte-identical to the
    /// sharded-at-1 reference execution.
    #[test]
    fn sharded_run_matches_single_shard_reference(
        seed in 0u64..1_000_000,
        topo_idx in 0usize..3,
        shards in 2usize..=4,
    ) {
        let topo = [Topo::LeafSpine, Topo::FatTree4, Topo::Line5][topo_idx];
        let reference = artifacts(topo, 1, seed);
        let got = artifacts(topo, shards, seed);
        prop_assert_eq!(
            got, reference,
            "artifacts diverge at {} shards (topo {:?}, seed {})", shards, topo, seed
        );
    }
}

/// Pinned regression corner: packets in flight across the leaf-spine cut
/// at a window barrier. With 300 ns lookahead and continuous cross-leaf
/// CBR, every window boundary has fabric packets mid-flight on cut links;
/// seed 0xB412 historically exercised a delivery landing exactly on a
/// window's horizon edge. The three shard placements must still execute
/// it identically.
#[test]
fn pinned_seed_in_flight_packet_at_barrier() {
    let reference = artifacts(Topo::LeafSpine, 1, 0xB412);
    for shards in [2, 3, 4] {
        let got = artifacts(Topo::LeafSpine, shards, 0xB412);
        assert_eq!(
            got, reference,
            "in-flight-at-barrier corner diverges at {shards} shards"
        );
    }
}
