//! Host traffic sources.
//!
//! A [`Source`] is a state machine the simulator wakes at self-chosen
//! instants; on each wake it emits zero or more packets and names its next
//! wake time. The `workloads` crate provides the paper's three application
//! models (Hadoop shuffle, GraphX iterations, memcache multi-get) plus
//! generic primitives; tests use inline sources.

use netsim::rng::SimRng;
use netsim::time::Instant;
use wire::FlowKey;

/// One packet to emit.
#[derive(Debug, Clone, Copy)]
pub struct Emission {
    /// Flow five-tuple (`flow.dst` is the destination host).
    pub flow: FlowKey,
    /// Packet size in bytes.
    pub bytes: u32,
}

/// A host's traffic generator.
pub trait Source: Send {
    /// Called at a wake instant: fill `out` with packets to send now and
    /// return the next wake time (`None` = finished).
    fn on_wake(
        &mut self,
        now: Instant,
        rng: &mut SimRng,
        out: &mut Vec<Emission>,
    ) -> Option<Instant>;
}

/// A source that sends nothing (placeholder for receive-only hosts).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentSource;

impl Source for SilentSource {
    fn on_wake(&mut self, _: Instant, _: &mut SimRng, _: &mut Vec<Emission>) -> Option<Instant> {
        None
    }
}

/// Combines several sources on one host NIC.
///
/// Each child keeps its own wake schedule; the combinator wakes whichever
/// children are due and reports the earliest next wake. Used to overlay
/// background/control chatter on an application workload.
pub struct MultiSource {
    children: Vec<ChildSource>,
}

struct ChildSource {
    source: Box<dyn Source>,
    /// `None` until first woken (children start at the combinator's first
    /// wake), `Some(None)` once finished.
    next: Option<Option<Instant>>,
}

impl MultiSource {
    /// Combine `sources` (must be non-empty).
    pub fn new(sources: Vec<Box<dyn Source>>) -> MultiSource {
        assert!(!sources.is_empty());
        MultiSource {
            children: sources
                .into_iter()
                .map(|source| ChildSource { source, next: None })
                .collect(),
        }
    }
}

impl Source for MultiSource {
    fn on_wake(
        &mut self,
        now: Instant,
        rng: &mut SimRng,
        out: &mut Vec<Emission>,
    ) -> Option<Instant> {
        let mut earliest: Option<Instant> = None;
        for child in &mut self.children {
            let due = match child.next {
                None => true,                // never woken yet
                Some(Some(at)) => at <= now, // scheduled and due
                Some(None) => false,         // finished
            };
            if due {
                child.next = Some(child.source.on_wake(now, rng, out));
            }
            if let Some(Some(at)) = child.next {
                earliest = Some(match earliest {
                    Some(e) => e.min(at),
                    None => at,
                });
            }
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Duration;
    use wire::FlowKey;

    /// Emits one packet every `gap`, `count` times.
    struct Ticker {
        gap: Duration,
        count: u32,
        tag: u16,
    }

    impl Source for Ticker {
        fn on_wake(
            &mut self,
            now: Instant,
            _: &mut SimRng,
            out: &mut Vec<Emission>,
        ) -> Option<Instant> {
            if self.count == 0 {
                return None;
            }
            self.count -= 1;
            out.push(Emission {
                flow: FlowKey::tcp(0, 1, self.tag, 80),
                bytes: 100,
            });
            (self.count > 0).then(|| now + self.gap)
        }
    }

    #[test]
    fn multi_source_interleaves_children() {
        let mut m = MultiSource::new(vec![
            Box::new(Ticker {
                gap: Duration::from_micros(10),
                count: 5,
                tag: 1,
            }),
            Box::new(Ticker {
                gap: Duration::from_micros(25),
                count: 3,
                tag: 2,
            }),
        ]);
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        let mut emissions = Vec::new();
        let mut t = Instant::ZERO;
        loop {
            out.clear();
            let next = m.on_wake(t, &mut rng, &mut out);
            emissions.extend(out.iter().map(|e| e.flow.src_port));
            match next {
                Some(n) => t = n.max(t + Duration::from_nanos(1)),
                None => break,
            }
        }
        let ones = emissions.iter().filter(|&&p| p == 1).count();
        let twos = emissions.iter().filter(|&&p| p == 2).count();
        assert_eq!(ones, 5);
        assert_eq!(twos, 3);
    }

    #[test]
    fn silent_source_is_silent() {
        let mut s = SilentSource;
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        assert_eq!(s.on_wake(Instant::ZERO, &mut rng, &mut out), None);
        assert!(out.is_empty());
    }
}
