//! The network world: event interpreter tying switches, hosts, control
//! planes, and the observer together.

use crate::latency::LatencyModel;
use crate::packet::{Packet, PacketRole};
use crate::shard::{lookahead_of, DomainTable};
use crate::switchmod::{QueuedPacket, SnapshotConfig, Switch};
use crate::topology::{LbKind, PortPeer, Topology};
use crate::traffic::{Emission, Source};
use netsim::rng::SimRng;
use netsim::sim::{Scheduler, World};
use netsim::time::{Duration, Instant};
use speedlight_core::consistency::{ConservationChecker, Delivery, DeliveryEvent};
use speedlight_core::control::Report;
use speedlight_core::observer::{GlobalSnapshot, ObserverConfig};
use speedlight_core::pipeline::{AnyObserver, PipelineConfig};
use speedlight_core::types::{ChannelId, Direction, Notification, UnitId, CPU_CHANNEL};
use speedlight_core::{Epoch, WrappedId};
use std::collections::BTreeMap;
use telemetry::MetricKind;
use wire::{PacketType, SnapshotHeader};

/// Events of the network world.
#[derive(Debug)]
pub enum NetEvent {
    /// A packet reaches a switch's ingress pipeline.
    ArriveIngress {
        /// Switch.
        sw: u16,
        /// Ingress port.
        port: u16,
        /// The packet.
        pkt: Packet,
    },
    /// A routed packet reaches its egress queue.
    EnqueueEgress {
        /// Switch.
        sw: u16,
        /// Egress port.
        port: u16,
        /// The packet with its upstream channel.
        qp: QueuedPacket,
    },
    /// The transmitter of `(sw, port)` should (re)start.
    StartTx {
        /// Switch.
        sw: u16,
        /// Port.
        port: u16,
    },
    /// The transmitter finished serializing the current packet.
    TxDone {
        /// Switch.
        sw: u16,
        /// Port.
        port: u16,
    },
    /// A packet reaches a host NIC.
    DeliverHost {
        /// Host.
        host: u32,
        /// The packet.
        pkt: Packet,
    },
    /// A host traffic source wake-up.
    HostWake {
        /// Host.
        host: u32,
    },
    /// The observer initiates the next snapshot epoch.
    ScheduleSnapshot,
    /// A device control plane's snapshot timer fires (clock-skewed).
    DeviceInitiate {
        /// Device.
        sw: u16,
        /// Epoch to initiate.
        epoch: Epoch,
    },
    /// One ingress unit executes the initiation.
    UnitInitiate {
        /// Device.
        sw: u16,
        /// Port.
        port: u16,
        /// Epoch.
        epoch: Epoch,
    },
    /// A data-plane notification lands at the control-plane socket.
    NotifyArrive {
        /// Device.
        sw: u16,
        /// The notification.
        n: Notification,
    },
    /// The control plane picks up the next queued notification.
    CpProcess {
        /// Device.
        sw: u16,
    },
    /// A control-plane report reaches the observer.
    ReportArrive {
        /// Reporting device.
        device: u16,
        /// The report.
        report: Report,
    },
    /// Periodic observer maintenance (retries, timeouts).
    ObserverTick,
    /// Start one polling sweep over all switches (baseline framework).
    PollSweep,
    /// Issue the next counter read in a switch's polling sequence.
    PollRead {
        /// Switch.
        sw: u16,
        /// Index into the unit list (`0..2*ports`).
        idx: u16,
        /// Sweep this read belongs to.
        sweep: u32,
    },
    /// A deferred poll read completes (the value is sampled now).
    PollComplete {
        /// Switch.
        sw: u16,
        /// Index being completed.
        idx: u16,
        /// Sweep.
        sweep: u32,
        /// The unit whose counter is read.
        uid: UnitId,
    },
    /// Periodic liveness check: inject keepalives for stalled channels.
    KeepaliveTick,
    /// Fault injection: an inter-switch link changes state. Both endpoints
    /// observe the change; frames serialized onto a down link are lost.
    LinkSet {
        /// One endpoint switch.
        sw: u16,
        /// The port on `sw` whose link changes.
        port: u16,
        /// New link state.
        up: bool,
    },
    /// Fault injection: a device's snapshot agent dies (forwarding keeps
    /// working; shims pass through untouched).
    DeviceFault {
        /// The failing device.
        sw: u16,
    },
    /// Fault injection: a device's control plane crashes, losing its
    /// tracking state and queued notifications.
    CpCrash {
        /// The crashing device.
        sw: u16,
    },
    /// A crashed control plane restarts and resynchronizes against the
    /// observer's newest issued epoch.
    CpRecover {
        /// The recovering device.
        sw: u16,
    },
    /// Flush a reorder-held notification that no later notification
    /// displaced (keeps the reorder fault loss-free).
    NotifRelease {
        /// The device holding the notification.
        sw: u16,
        /// Hold sequence number (stale releases are ignored).
        seq: u64,
    },
    /// Sharded mode only: the control plane's keepalive check, shipped to
    /// one device. In the serial engine [`NetEvent::KeepaliveTick`] reads
    /// every device's completion state directly; across shards that state
    /// lives on the owner, so the tick emits one probe per device and the
    /// owner evaluates it locally.
    KeepaliveProbe {
        /// The probed device.
        sw: u16,
        /// Oldest pending epoch at probe time.
        epoch: Epoch,
    },
    /// Sharded mode only: a recovering control plane's resync target. The
    /// newest issued epoch is observer (control-domain) state, so
    /// [`NetEvent::CpRecover`] executes on the control domain and ships
    /// the epoch to the device owner via this event.
    CpRecoverSync {
        /// The recovering device.
        sw: u16,
        /// Resync target (newest issued epoch at recovery time).
        epoch: Epoch,
    },
}

/// A completed snapshot with timing metadata.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    /// The assembled snapshot.
    pub snapshot: GlobalSnapshot,
    /// When the observer issued it.
    pub issued_at: Instant,
    /// When assembly finished.
    pub completed_at: Instant,
    /// Whether a timeout forced finalization.
    pub forced: bool,
}

/// One polling sweep's samples.
#[derive(Debug, Clone, Default)]
pub struct PollSweepRecord {
    /// Per-unit `(unit, value, read_time)`.
    pub samples: Vec<(UnitId, u64, Instant)>,
}

/// Observer/driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Lead time between issuing a snapshot and its scheduled instant.
    pub lead_time: Duration,
    /// Period between automatic snapshots (`None` = only explicit ones).
    pub snapshot_period: Option<Duration>,
    /// Period between polling sweeps (`None` = no polling).
    pub poll_period: Option<Duration>,
    /// Re-initiate epochs incomplete for longer than this.
    pub retry_timeout: Duration,
    /// Force-finalize (exclude lagging devices) after this.
    pub device_timeout: Duration,
    /// Observer maintenance tick.
    pub tick: Duration,
    /// Keepalive injection check period (channel-state liveness).
    pub keepalive_period: Option<Duration>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            lead_time: Duration::from_millis(1),
            snapshot_period: None,
            poll_period: None,
            retry_timeout: Duration::from_millis(20),
            device_timeout: Duration::from_millis(200),
            tick: Duration::from_millis(5),
            keepalive_period: Some(Duration::from_millis(2)),
        }
    }
}

/// What a notification-export fault does to the selected notifications
/// (adversarial testing; see the conformance crate's `notif=` spec key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifFaultKind {
    /// Silently drop them.
    Drop,
    /// Deliver them twice.
    Dup,
    /// Hold one and release it after the next notification from a
    /// *different* unit (cross-unit reorder; per-unit FIFO survives, as it
    /// would over PCIe DMA).
    Reorder,
}

/// Per-device notification-export fault configuration.
#[derive(Debug, Clone, Copy)]
pub struct NotifFaultConfig {
    /// What happens to the selected notifications.
    pub kind: NotifFaultKind,
    /// Select every `every`-th exported notification (≥ 2).
    pub every: u32,
}

/// Live state of one device's notification-export fault.
#[derive(Debug)]
struct NotifFaultState {
    cfg: NotifFaultConfig,
    /// Notifications seen so far (selection counter).
    seen: u64,
    /// A held notification awaiting reorder, with its hold sequence.
    held: Option<(Notification, u64)>,
    /// Monotone hold sequence (stale `NotifRelease` events are ignored).
    seq: u64,
}

/// How long a reorder-held notification waits for a displacing arrival
/// before the safety flush releases it anyway.
const REORDER_HOLD: Duration = Duration::from_micros(200);

/// Measurement side-channels filled while the simulation runs.
#[derive(Debug, Default)]
pub struct Instrumentation {
    /// Completed snapshots, in completion order.
    pub snapshots: Vec<SnapshotRecord>,
    /// Per-epoch earliest/latest data-plane progress timestamp and count
    /// (Fig. 9's synchronization metric).
    pub sync: BTreeMap<Epoch, (Instant, Instant, u64)>,
    /// Polling sweeps.
    pub polls: Vec<PollSweepRecord>,
    /// Omniscient conservation audit (tests enable this).
    pub audit: Option<ConservationChecker>,
    /// Per-delivery replay log for the conformance oracle (opt-in): every
    /// tagged packet a unit processed, with unwrapped tag and pre-update
    /// metric value, in processing order.
    pub delivery_log: Option<Vec<DeliveryEvent>>,
    /// Packets delivered per host, indexed by host ID.
    pub host_rx: Vec<u64>,
    /// Packets dropped because a FIB had no route.
    pub unroutable_drops: u64,
    /// Structured snapshot-lifecycle trace (default: off, near-zero cost).
    pub trace: obs::sinks::TraceSink,
    /// Deterministic metrics registry (counters/gauges/histograms), fed at
    /// lifecycle events only — never on the per-packet path.
    pub metrics: obs::metrics::Metrics,
}

struct Host {
    attached: (u16, u16),
    source: Option<Box<dyn Source>>,
    nic_busy_until: Instant,
}

/// State of the sharded execution mode (see `crate::shard`).
///
/// In sharded mode every event belongs to a *domain* (device, host, or
/// the control plane) and nondeterminism is domain-scoped so a domain's
/// behavior cannot depend on how domains are packed onto shards:
///
/// * device-domain latency draws come from a per-device RNG forked from
///   the root seed by device id (the global stream stays exclusively
///   control-domain);
/// * packet ids are per-domain counters tagged with the domain id;
/// * every cross-domain follow-up is clamped to at least the lookahead,
///   which is what lets the conservative window protocol run shards in
///   parallel without ever reordering a domain's event stream.
struct ShardedMode {
    /// Conservative lookahead (partition-independent: the minimum
    /// inter-device link propagation delay in the topology).
    lookahead: Duration,
    /// Per-device latency RNGs, forked by device id.
    dev_rngs: Vec<SimRng>,
    /// Per-domain packet-id counters (devices, hosts, control, external).
    pkt_ctrs: Vec<u64>,
    /// Domain of the event currently being handled (set by the shard
    /// trampoline before each dispatch).
    cur_domain: u32,
}

impl ShardedMode {
    fn next_pkt_id(&mut self) -> u64 {
        let d = self.cur_domain;
        let Some(ctr) = self.pkt_ctrs.get_mut(d as usize) else {
            panic!("packet id requested for unknown domain {d}");
        };
        *ctr += 1;
        assert!(*ctr < (1 << 32), "domain {d} packet-id counter overflow");
        ((u64::from(d) + 1) << 32) | *ctr
    }

    fn dev_rng(&mut self, sw: u16) -> &mut SimRng {
        let Some(rng) = self.dev_rngs.get_mut(usize::from(sw)) else {
            panic!("device RNG requested for unknown device {sw}");
        };
        rng
    }
}

/// Deterministic profiling state (see `obs::profile`): the domain
/// classification table, the per-domain accounting core, and — for the
/// serial engine only — a trampoline scheduler that intercepts each
/// event's follow-ups so cross-domain emissions can be classified. The
/// trampoline drains in `(time, insertion)` order and re-inserts in that
/// order, which preserves the queue's same-time FIFO contract exactly:
/// execution with profiling enabled is byte-identical to without.
pub(crate) struct NetProfiler {
    pub(crate) table: DomainTable,
    pub(crate) core: obs::profile::DomainProfiler,
    tramp: Scheduler<NetEvent>,
}

/// The simulated network (implements [`World`]).
pub struct Network {
    topo: Topology,
    /// The switches.
    pub switches: Vec<Switch>,
    hosts: Vec<Host>,
    /// The snapshot observer (staged pipeline by default; the monolithic
    /// reference via [`Network::use_reference_observer`]).
    pub observer: AnyObserver,
    latency: LatencyModel,
    driver: DriverConfig,
    snapshot_cfg: SnapshotConfig,
    rng: SimRng,
    next_pkt_id: u64,
    /// Epoch → issue time (retry/timeout bookkeeping).
    issued: BTreeMap<Epoch, Instant>,
    /// Epoch → last re-initiation time (retry pacing).
    retried: BTreeMap<Epoch, Instant>,
    next_sweep: u32,
    /// Omniscient shadow of each unit's unwrapped epoch (instrumentation
    /// only — never feeds the protocol). Flat, indexed by
    /// [`Network::unit_slot`]; these shadows sit on the per-packet path,
    /// so they are plain arrays rather than maps.
    shadow_sid: Vec<Epoch>,
    /// Shadow of last seen per (unit, channel), indexed by
    /// [`Network::ls_slot`].
    shadow_ls: Vec<Epoch>,
    /// `sid_base[device]` — first [`Network::unit_slot`] of that device.
    sid_base: Vec<usize>,
    /// `ls_base[device]` — first [`Network::ls_slot`] of that device.
    ls_base: Vec<usize>,
    /// Port count per device (flat copy of `topo.ports[d].len()`; the slot
    /// helpers sit on the per-packet path, where the nested-Vec indirection
    /// shows up).
    ports_of: Vec<usize>,
    /// Per-host traffic RNGs, pre-forked from the base stream once
    /// (forking is pure, so caching it preserves every draw exactly).
    host_rngs: Vec<SimRng>,
    /// Reused emission buffer for host wakes (avoids a per-wake alloc).
    scratch_emissions: Vec<Emission>,
    /// Per-(switch, port) link state; frames serialized onto a down link
    /// are lost on the wire (fault injection).
    link_up: Vec<Vec<bool>>,
    /// PTP degradation schedule folded into initiation offsets
    /// (all-zero = healthy).
    ptp_deg: timesync::PtpDegradation,
    /// Per-switch notification-export fault injection.
    notif_faults: Vec<Option<NotifFaultState>>,
    /// Per-switch control-plane-down gate (CP crash fault): while set,
    /// arriving notifications are lost, as at a dead socket.
    cp_down: Vec<bool>,
    /// Newest epoch the observer has issued (CP crash-recovery resync
    /// target).
    last_issued_epoch: Epoch,
    /// Per-(switch, port) newest epoch whose initiation marker was injected
    /// into the ingress unit. The CPU agent tracks true (unwrapped) epochs,
    /// so a retry carrying an older epoch than the unit has already seen is
    /// dropped here: the unit's rollover comparison assumes a monotone ID
    /// stream per channel (§5.3), and a stale wrapped marker would alias
    /// forward to a phantom future epoch.
    init_high: Vec<Vec<Epoch>>,
    /// Sharded execution mode (`None` = the serial engine, byte-for-byte
    /// unchanged).
    sharded: Option<ShardedMode>,
    /// Deterministic profiler (`None` = disabled: the event hot path pays
    /// exactly one branch).
    profiler: Option<Box<NetProfiler>>,
    /// Instrumentation outputs.
    pub instr: Instrumentation,
}

impl Network {
    /// Build a network over `topo`.
    pub fn new(
        topo: Topology,
        snapshot_cfg: SnapshotConfig,
        lb_kind: LbKind,
        latency: LatencyModel,
        driver: DriverConfig,
        queue_capacity_bytes: u64,
        seed: u64,
    ) -> Network {
        let rng = SimRng::new(seed);
        let fibs = topo.build_fibs();
        let num_sw = topo.num_switches();
        // The pair analysis needs every FIB at once; compute it for all
        // switches first so each FIB can then be moved (not cloned) into
        // its switch.
        let pairs: Vec<Vec<bool>> = (0..num_sw)
            .map(|s| used_port_pairs(&topo, &fibs, s))
            .collect();
        let mut switches = Vec::with_capacity(usize::from(num_sw));
        let mut sid_base = Vec::with_capacity(usize::from(num_sw));
        let mut ls_base = Vec::with_capacity(usize::from(num_sw));
        let mut ports_of = Vec::with_capacity(usize::from(num_sw));
        let (mut sid_len, mut ls_len) = (0usize, 0usize);
        for ((s, fib), considered_pair) in (0..num_sw).zip(fibs).zip(pairs) {
            let ports = topo.num_ports(s);
            // External channel considered iff the peer is a switch (hosts
            // do not participate in the snapshot protocol).
            let considered_ext: Vec<bool> = (0..ports)
                .map(|p| {
                    matches!(
                        topo.ports[usize::from(s)][usize::from(p)],
                        PortPeer::Switch { .. }
                    )
                })
                .collect();
            sid_base.push(sid_len);
            ls_base.push(ls_len);
            ports_of.push(usize::from(ports));
            sid_len += 2 * usize::from(ports);
            ls_len += 2 * usize::from(ports) * usize::from(ports);
            switches.push(Switch::new(
                s,
                ports,
                &snapshot_cfg,
                lb_kind,
                rng.fork_idx("lb-salt", u64::from(s)).below(u64::MAX),
                queue_capacity_bytes,
                fib,
                considered_ext,
                considered_pair,
            ));
        }
        let mut observer = AnyObserver::pipeline(PipelineConfig::for_modulus(snapshot_cfg.modulus));
        for sw in &switches {
            observer.register_device(sw.id, sw.unit_ids());
        }
        let hosts: Vec<Host> = topo
            .hosts
            .iter()
            .map(|&attached| Host {
                attached,
                source: None,
                nic_busy_until: Instant::ZERO,
            })
            .collect();
        let host_rng_base = rng.fork("hosts");
        let host_rngs = (0..hosts.len() as u64)
            .map(|h| host_rng_base.fork_idx("host", h))
            .collect();
        let instr = Instrumentation {
            host_rx: vec![0; hosts.len()],
            ..Instrumentation::default()
        };
        let link_up = topo.ports.iter().map(|p| vec![true; p.len()]).collect();
        let init_high = topo.ports.iter().map(|p| vec![0; p.len()]).collect();
        let notif_faults = (0..num_sw).map(|_| None).collect();
        let cp_down = vec![false; usize::from(num_sw)];
        Network {
            topo,
            switches,
            hosts,
            observer,
            latency,
            driver,
            snapshot_cfg,
            rng,
            next_pkt_id: 0,
            issued: BTreeMap::new(),
            retried: BTreeMap::new(),
            next_sweep: 0,
            shadow_sid: vec![0; sid_len],
            shadow_ls: vec![0; ls_len],
            sid_base,
            ls_base,
            ports_of,
            host_rngs,
            scratch_emissions: Vec::new(),
            link_up,
            ptp_deg: timesync::PtpDegradation::default(),
            notif_faults,
            cp_down,
            last_issued_epoch: 0,
            init_high,
            sharded: None,
            profiler: None,
            instr,
        }
    }

    /// Switch this network replica into sharded execution mode (see
    /// `crate::shard`). Must be called before any event is handled: the
    /// mode changes which RNG stream device-domain draws consume and how
    /// packet ids are assigned, so flipping it mid-run would splice two
    /// incompatible executions. `num_domains` covers devices + hosts +
    /// control + the external pseudo-domain; `lookahead` is the
    /// conservative window the cross-domain clamps enforce.
    pub fn enable_sharded_mode(&mut self, lookahead: Duration, num_domains: u32) {
        assert_eq!(
            self.next_pkt_id, 0,
            "sharded mode must be set before any event"
        );
        let dev_rngs = (0..self.switches.len() as u64)
            .map(|s| self.rng.fork_idx("dev", s))
            .collect();
        self.sharded = Some(ShardedMode {
            lookahead,
            dev_rngs,
            pkt_ctrs: vec![0; num_domains as usize],
            cur_domain: 0,
        });
    }

    /// Sharded mode: set the domain of the event about to be handled
    /// (the shard trampoline calls this before every dispatch).
    pub fn set_current_domain(&mut self, domain: u32) {
        if let Some(sh) = &mut self.sharded {
            sh.cur_domain = domain;
        }
    }

    /// In sharded mode, clamp a cross-domain delay to the lookahead; the
    /// serial engine passes delays through untouched.
    fn cross_domain(&self, delay: Duration) -> Duration {
        match &self.sharded {
            Some(sh) => delay.max(sh.lookahead),
            None => delay,
        }
    }

    /// Install a PTP degradation schedule (adversarial scenarios).
    pub fn set_ptp_degradation(&mut self, deg: timesync::PtpDegradation) {
        self.ptp_deg = deg;
    }

    /// Swap in the monolithic reference observer (differential testing).
    /// Must be called before any snapshot is initiated.
    pub fn use_reference_observer(&mut self) {
        assert_eq!(
            self.observer.finalized_count() + self.observer.outstanding() as u64,
            0,
            "observer implementation must be chosen before the first snapshot"
        );
        let mut observer =
            AnyObserver::reference(ObserverConfig::for_modulus(self.snapshot_cfg.modulus));
        for sw in &self.switches {
            observer.register_device(sw.id, sw.unit_ids());
        }
        self.observer = observer;
    }

    /// Install a notification-export fault on `sw` (adversarial scenarios).
    pub fn set_notif_fault(&mut self, sw: u16, cfg: NotifFaultConfig) {
        assert!(cfg.every >= 2, "every=1 would starve the control plane");
        self.notif_faults[usize::from(sw)] = Some(NotifFaultState {
            cfg,
            seen: 0,
            held: None,
            seq: 0,
        });
    }

    /// Index of `u`'s slot in the flat per-unit shadow array.
    #[inline]
    fn unit_slot(&self, u: UnitId) -> usize {
        let ports = self.ports_of[usize::from(u.device)];
        let dir = match u.direction {
            Direction::Ingress => 0,
            Direction::Egress => 1,
        };
        self.sid_base[usize::from(u.device)] + dir * ports + usize::from(u.port)
    }

    /// Index of `(u, ch)`'s slot in the flat per-channel shadow array
    /// (`ch` is an internal channel, i.e. an ingress port of the device).
    #[inline]
    fn ls_slot(&self, u: UnitId, ch: u16) -> usize {
        let ports = self.ports_of[usize::from(u.device)];
        let dir = match u.direction {
            Direction::Ingress => 0,
            Direction::Egress => 1,
        };
        self.ls_base[usize::from(u.device)]
            + (dir * ports + usize::from(u.port)) * ports
            + usize::from(ch)
    }

    /// Attach a traffic source to a host.
    pub fn set_source(&mut self, host: u32, source: Box<dyn Source>) {
        self.hosts[host as usize].source = Some(source);
    }

    /// Enable the omniscient conservation audit (tests).
    pub fn enable_audit(&mut self) {
        self.instr.audit = Some(ConservationChecker::new());
    }

    /// Enable the per-delivery replay log (conformance tests).
    pub fn enable_delivery_log(&mut self) {
        self.instr.delivery_log = Some(Vec::new());
    }

    /// Install a trace sink and stamp the `trace.meta` header event at
    /// `t_ns` (every trace opens with it, carrying the schema tag).
    pub fn set_trace(&mut self, sink: obs::sinks::TraceSink, t_ns: u64) {
        self.instr.trace = sink;
        obs::event!(
            &mut self.instr.trace,
            t_ns,
            "trace.meta",
            schema = obs::TRACE_SCHEMA,
        );
    }

    /// Buffered trace lines (empty when tracing is off).
    pub fn trace_lines(&self) -> Vec<String> {
        self.instr.trace.lines()
    }

    /// Drain the buffered trace lines, leaving the sink active.
    pub fn take_trace_lines(&mut self) -> Vec<String> {
        self.instr.trace.take_lines()
    }

    /// Export the metrics registry as schema'd JSON, folding in the
    /// simulated switch/observer totals as gauges first so a single
    /// document captures the whole run.
    pub fn export_metrics(&mut self) -> String {
        self.fold_metrics();
        self.instr.metrics.to_json()
    }

    /// Take the metrics registry (folded like [`Self::export_metrics`]),
    /// leaving an empty one behind. For harnesses that add their own
    /// gauges before rendering.
    pub fn take_metrics(&mut self) -> obs::metrics::Metrics {
        self.fold_metrics();
        std::mem::take(&mut self.instr.metrics)
    }

    /// Enable the deterministic profiler (sim-time accounting per
    /// partition domain; see DESIGN.md §16). Call before the first event
    /// is handled — the accounting must cover the whole run. The window
    /// lookahead is taken from sharded mode when active, otherwise
    /// derived from the topology exactly as the sharded engine would, so
    /// serial and sharded profiles of one scenario use the same window
    /// definition.
    pub fn enable_profiler(&mut self) {
        let table = DomainTable::new(&self.topo);
        let lookahead = match &self.sharded {
            Some(sh) => sh.lookahead,
            None => lookahead_of(&self.topo),
        };
        self.profiler = Some(Box::new(NetProfiler {
            table,
            core: obs::profile::DomainProfiler::new(table.count() as usize, lookahead.as_nanos()),
            tramp: Scheduler::parked_at(Instant::ZERO),
        }));
    }

    /// True when the deterministic profiler is active.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Sharded engine: record one executed event (the shard trampoline
    /// already classifies domains, so the serial trampoline is skipped).
    #[inline]
    pub fn profile_observe(&mut self, domain: u32, t_ns: u64) {
        if let Some(p) = &mut self.profiler {
            p.core.observe(domain as usize, t_ns);
        }
    }

    /// Sharded engine: record one cross-domain emission.
    #[inline]
    pub fn profile_msg(&mut self, src: u32, dst: u32) {
        if let Some(p) = &mut self.profiler {
            if src != dst {
                p.core.msg(src as usize, dst as usize);
            }
        }
    }

    /// Sharded engine: account the window that just closed at `horizon`.
    pub fn profile_window_close(&mut self, horizon_ns: u64) {
        if let Some(p) = &mut self.profiler {
            p.core.window_close(horizon_ns);
        }
    }

    /// Serial engine: close any window left open at a `run_until`
    /// boundary (mirrors the barrier engine's deadline truncation).
    pub fn profile_run_boundary(&mut self) {
        if let Some(p) = &mut self.profiler {
            p.core.close_boundary();
        }
    }

    /// Remove and return the profiling state (the sharded testbed merges
    /// per-replica cores before rendering).
    pub(crate) fn take_net_profiler(&mut self) -> Option<Box<NetProfiler>> {
        self.profiler.take()
    }

    /// Render this replica's profile: per-domain accounting plus the
    /// observer-pipeline section when the staged pipeline ran. Consumes
    /// the profiler (the accounting is a whole-run artifact).
    ///
    /// # Panics
    /// If profiling was never enabled.
    pub fn take_profile(&mut self) -> obs::profile::Profile {
        let Some(mut prof) = self.profiler.take() else {
            panic!("take_profile called but profiling was never enabled");
        };
        prof.core.close_boundary();
        let pipeline = self.observer.pipeline_stats().map(|s| s.profile_section());
        crate::shard::profile_of(&prof.table, &prof.core, pipeline)
    }

    fn fold_metrics(&mut self) {
        let mut ingress = 0u64;
        let mut egress = 0u64;
        let mut queue_drops = 0u64;
        let mut notify_drops = 0u64;
        let mut keepalives = 0u64;
        for sw in &self.switches {
            ingress += sw.stats.ingress_packets;
            egress += sw.stats.egress_packets;
            queue_drops += sw.stats.queue_drops;
            notify_drops += sw.stats.notify_drops;
            keepalives += sw.stats.keepalives_sent;
        }
        let m = &mut self.instr.metrics;
        m.gauge_set("switch.ingress_packets", ingress);
        m.gauge_set("switch.egress_packets", egress);
        m.gauge_set("switch.queue_drops", queue_drops);
        m.gauge_set("switch.notify_drops", notify_drops);
        m.gauge_set("switch.keepalives_sent", keepalives);
        m.gauge_set("observer.finalized", self.observer.finalized_count());
        m.gauge_set("net.unroutable_drops", self.instr.unroutable_drops);
        self.observer.fold_metrics(m);
    }

    /// Apply a link-state change to this replica's topology view: both
    /// endpoints of the cable flip together. This is the state-only half
    /// of the [`NetEvent::LinkSet`] handler; the sharded testbed delivers
    /// it to the replica owning the *peer* endpoint (which must see the
    /// outage to stop/resume serializing frames) without repeating the
    /// owner-side metrics and trace emission.
    pub fn apply_link_shadow(&mut self, sw: u16, port: u16, up: bool) {
        let peer = self
            .topo
            .ports
            .get(usize::from(sw))
            .and_then(|ports| ports.get(usize::from(port)))
            .copied();
        if let Some(slot) = self
            .link_up
            .get_mut(usize::from(sw))
            .and_then(|l| l.get_mut(usize::from(port)))
        {
            *slot = up;
        }
        if let Some(PortPeer::Switch {
            switch: peer,
            port: peer_port,
        }) = peer
        {
            if let Some(slot) = self
                .link_up
                .get_mut(usize::from(peer))
                .and_then(|l| l.get_mut(usize::from(peer_port)))
            {
                *slot = up;
            }
        }
    }

    /// The snapshot configuration.
    pub fn snapshot_cfg(&self) -> &SnapshotConfig {
        &self.snapshot_cfg
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Total processing units the observer expects per snapshot.
    pub fn observer_expected(&self) -> usize {
        self.switches.iter().map(|s| s.unit_ids().len()).sum()
    }

    fn wrap(&self, epoch: Epoch) -> WrappedId {
        WrappedId::wrap(epoch, self.snapshot_cfg.modulus)
    }

    fn next_id(&mut self) -> u64 {
        match &mut self.sharded {
            // Domain-scoped ids: each domain counts its own emissions, so
            // the id stream a domain produces is independent of shard
            // packing (a global counter would interleave differently at
            // different shard counts).
            Some(sh) => sh.next_pkt_id(),
            None => {
                self.next_pkt_id += 1;
                self.next_pkt_id
            }
        }
    }

    /// Update sync instrumentation + shadow state from a notification at
    /// data-plane time `now`.
    fn track_notification(&mut self, n: &Notification, now: Instant) {
        let slot = self.unit_slot(n.unit);
        let sid_ref = &mut self.shadow_sid[slot];
        let new_sid = n.new_sid.unwrap_from(*sid_ref);
        let advanced = new_sid > *sid_ref;
        *sid_ref = new_sid;
        if advanced {
            let e = self.instr.sync.entry(new_sid).or_insert((now, now, 0));
            e.0 = e.0.min(now);
            e.1 = e.1.max(now);
            e.2 += 1;
        }
        if let Some(ch) = n.channel {
            if ch != CPU_CHANNEL {
                let slot = self.ls_slot(n.unit, ch.0);
                let ls_ref = &mut self.shadow_ls[slot];
                let new_ls = n.new_last_seen.unwrap_from(*ls_ref);
                if new_ls > *ls_ref {
                    *ls_ref = new_ls;
                    let e = self.instr.sync.entry(new_ls).or_insert((now, now, 0));
                    e.0 = e.0.min(now);
                    e.1 = e.1.max(now);
                    e.2 += 1;
                }
            }
        }
    }

    /// Enqueue a notification at the CP socket and kick the consumer.
    /// This is the post-fault-interception delivery path: everything that
    /// reaches it is what the control plane actually observes.
    fn deliver_notification(
        &mut self,
        sw: u16,
        n: Notification,
        now: Instant,
        sched: &mut Scheduler<NetEvent>,
    ) {
        let capacity = self.latency.cp_queue_capacity;
        let switch = &mut self.switches[usize::from(sw)];
        if switch.cp_queue.len() >= capacity {
            switch.stats.notify_drops += 1;
            self.instr.metrics.inc("cp.notify_dropped");
            obs::event!(
                &mut self.instr.trace,
                now.as_nanos(),
                "notify.drop",
                dev = sw,
            );
            return;
        }
        switch.cp_queue.push_back((n, now));
        let depth = switch.cp_queue.len() as u64;
        self.instr.metrics.inc("cp.notifications");
        self.instr.metrics.gauge_max("cp.queue_depth_max", depth);
        self.instr
            .metrics
            .observe("cp.queue_depth", &obs::metrics::DEPTH_BOUNDS, depth);
        obs::event!(
            &mut self.instr.trace,
            now.as_nanos(),
            "notify.export",
            dev = sw,
            depth = depth,
        );
        let switch = &mut self.switches[usize::from(sw)];
        if !switch.cp_busy {
            switch.cp_busy = true;
            sched.now_event(NetEvent::CpProcess { sw });
        }
    }

    /// Run one unit's snapshot + metric pipeline over a packet, stamping
    /// the outgoing shim header. `init_epoch` is the true (unwrapped)
    /// epoch when the packet is a CPU-channel initiation.
    #[allow(clippy::too_many_arguments)]
    fn unit_process(
        &mut self,
        sw: u16,
        port: u16,
        direction: Direction,
        channel: ChannelId,
        pkt: &mut Packet,
        now: Instant,
        sched: &mut Scheduler<NetEvent>,
        init_epoch: Option<Epoch>,
    ) {
        let uid = UnitId {
            device: sw,
            port,
            direction,
        };
        let is_init = pkt.is_initiation();
        let modulus = self.snapshot_cfg.modulus;

        // Metric pre-read (the value a snapshot would save) + contribution,
        // sharing one switch borrow with the enabled flag.
        let (enabled, pre_value, contrib) = {
            let switch = &self.switches[usize::from(sw)];
            let bank = match direction {
                Direction::Ingress => &switch.ing_metrics,
                Direction::Egress => &switch.eg_metrics,
            };
            (
                switch.snapshot_enabled,
                bank.read(port),
                bank.contrib(pkt.size),
            )
        };

        let incoming_channel_id = pkt.snapshot.map(|h| h.channel_id).unwrap_or(0);
        match pkt.snapshot {
            Some(hdr) if enabled => {
                let wrapped = WrappedId::from_raw(hdr.snapshot_id % modulus, modulus);
                // Audit tag: unwrap against the channel's pre-update shadow
                // (CPU-channel initiations are excluded from the audit).
                let ls = (channel != CPU_CHANNEL).then(|| self.ls_slot(uid, channel.0));
                let tag_epoch = match ls {
                    Some(slot) => wrapped.unwrap_from(self.shadow_ls[slot]),
                    None => 0,
                };
                if let Some(log) = &mut self.instr.delivery_log {
                    // CPU-channel initiations carry a non-monotone epoch
                    // stream (retries re-initiate older epochs), so their
                    // true epoch comes from the initiating event rather
                    // than shadow unwrapping.
                    let tag = if channel == CPU_CHANNEL {
                        init_epoch.unwrap_or(0)
                    } else {
                        tag_epoch
                    };
                    log.push(DeliveryEvent {
                        unit: uid,
                        channel,
                        tag,
                        local_state: pre_value,
                        contrib,
                        init: is_init,
                    });
                }
                let out = {
                    let switch = &mut self.switches[usize::from(sw)];
                    let unit = match direction {
                        Direction::Ingress => &mut switch.units.ingress[usize::from(port)],
                        Direction::Egress => &mut switch.units.egress[usize::from(port)],
                    };
                    // `switch` borrows `self.switches`, the trace sink
                    // borrows `self.instr` — disjoint fields. With the
                    // default `TraceSink::Off` the traced call is one
                    // always-false `enabled()` branch (the bench-smoke
                    // regression gate holds the line on this path).
                    let out = unit.on_packet_traced(
                        channel,
                        wrapped,
                        pre_value,
                        contrib,
                        is_init,
                        &mut self.instr.trace,
                        now.as_nanos(),
                    );
                    // Metric update after the snapshot logic (Fig. 3 l.13);
                    // initiations skip the update-counter stage (§6).
                    if !is_init {
                        let bank = match direction {
                            Direction::Ingress => &mut switch.ing_metrics,
                            Direction::Egress => &mut switch.eg_metrics,
                        };
                        bank.on_packet(port, now, pkt.size);
                    }
                    out
                };
                if let Some(n) = out.notification {
                    self.track_notification(&n, now);
                    let dist = &self.latency.notify_pcie;
                    let delay = match &mut self.sharded {
                        Some(sh) => dist.sample(sh.dev_rng(sw)),
                        None => dist.sample(&mut self.rng),
                    };
                    sched.after(delay, NetEvent::NotifyArrive { sw, n });
                }
                // Keep the channel shadow monotone even when the Last Seen
                // update produced no notification (equal IDs / no-CS mode).
                if let Some(slot) = ls {
                    let ls_ref = &mut self.shadow_ls[slot];
                    *ls_ref = (*ls_ref).max(tag_epoch);
                }
                if !is_init && channel != CPU_CHANNEL {
                    let slot = self.unit_slot(uid);
                    if let Some(audit) = &mut self.instr.audit {
                        let local_after = self.shadow_sid[slot];
                        audit.record(Delivery {
                            unit: uid,
                            tag: tag_epoch,
                            local_after: local_after.max(tag_epoch),
                            contrib,
                        });
                    }
                }
                pkt.snapshot = Some(SnapshotHeader {
                    packet_type: if is_init {
                        PacketType::Initiation
                    } else {
                        PacketType::Data
                    },
                    snapshot_id: out.out_sid.raw(),
                    channel_id: incoming_channel_id,
                });
            }
            _ => {
                // Headerless traffic (fresh from a host) or snapshots
                // disabled on this device: metric update only; the receive
                // is a purely local event for the audit.
                if !is_init {
                    {
                        let switch = &mut self.switches[usize::from(sw)];
                        let bank = match direction {
                            Direction::Ingress => &mut switch.ing_metrics,
                            Direction::Egress => &mut switch.eg_metrics,
                        };
                        bank.on_packet(port, now, pkt.size);
                    }
                    if enabled {
                        let slot = self.unit_slot(uid);
                        if let Some(audit) = &mut self.instr.audit {
                            let local_after = self.shadow_sid[slot];
                            audit.record(Delivery {
                                unit: uid,
                                tag: local_after,
                                local_after,
                                contrib,
                            });
                        }
                    }
                }
                if enabled && pkt.snapshot.is_none() {
                    // First snapshot-enabled device on the path inserts the
                    // shim, stamped with the unit's current epoch (§10).
                    let switch = &self.switches[usize::from(sw)];
                    let unit = match direction {
                        Direction::Ingress => &switch.units.ingress[usize::from(port)],
                        Direction::Egress => &switch.units.egress[usize::from(port)],
                    };
                    pkt.snapshot = Some(SnapshotHeader::data(unit.sid().raw()));
                    pkt.size += wire::WIRE_LEN as u32;
                }
            }
        }
    }

    /// Route a processed packet out of `sw` (entered via ingress `in_port`).
    fn route(
        &mut self,
        sw: u16,
        in_port: u16,
        mut pkt: Packet,
        now: Instant,
        sched: &mut Scheduler<NetEvent>,
    ) {
        let out_port = {
            // Destructure so the ECMP pick can borrow the load balancer
            // while the next-hop slice stays borrowed from the FIB — one
            // lookup instead of three (version stamp included).
            let Switch {
                fib,
                lb,
                fib_version_seen,
                ..
            } = &mut self.switches[usize::from(sw)];
            let hops = fib.next_hops(pkt.dst_host);
            let out = match hops.len() {
                0 => None,
                1 => Some(hops[0]),
                n => Some(hops[lb.pick(&pkt.flow, now, n)]),
            };
            if out.is_some() {
                *fib_version_seen = fib.version;
            }
            out
        };
        let Some(out_port) = out_port else {
            self.instr.unroutable_drops += 1;
            return;
        };
        if let Some(hdr) = &mut pkt.snapshot {
            hdr.channel_id = in_port; // §5.1 Channel ID
        }
        sched.after(
            self.latency.fabric_delay,
            NetEvent::EnqueueEgress {
                sw,
                port: out_port,
                qp: QueuedPacket {
                    pkt,
                    from_port: in_port,
                },
            },
        );
    }

    /// Transmit loop for a port: initiations are processed and die in
    /// place; the next real packet starts serializing.
    fn start_tx(&mut self, sw: u16, port: u16, now: Instant, sched: &mut Scheduler<NetEvent>) {
        loop {
            let popped = {
                // One switch borrow for dequeue + idle flag + gauge.
                let switch = &mut self.switches[usize::from(sw)];
                let (popped, depth) = {
                    let ep = &mut switch.egress_ports[usize::from(port)];
                    let popped = ep.dequeue();
                    if popped.is_none() {
                        ep.busy = false;
                    }
                    (popped, ep.queue.len() as u64)
                };
                if popped.is_some() && switch.eg_metrics.kind() == MetricKind::QueueDepth {
                    switch.eg_metrics.set_gauge(port, depth);
                }
                popped
            };
            let Some(mut qp) = popped else {
                return;
            };
            let channel = ChannelId(qp.from_port);
            self.unit_process(
                sw,
                port,
                Direction::Egress,
                channel,
                &mut qp.pkt,
                now,
                sched,
                None,
            );
            if qp.pkt.is_initiation() {
                continue; // dropped after egress processing (§6)
            }
            if !self.link_up[usize::from(sw)][usize::from(port)] {
                // Link down: the egress pipeline ran (the unit saw the
                // packet) but the frame is lost on the wire.
                self.switches[usize::from(sw)].stats.link_drops += 1;
                continue;
            }
            {
                let switch = &mut self.switches[usize::from(sw)];
                switch.stats.egress_packets += 1;
                switch.egress_ports[usize::from(port)].busy = true;
            }
            let props = self.topo.link_props[usize::from(sw)][usize::from(port)];
            let ser = Duration::from_nanos(props.serialize_ns(qp.pkt.size));
            let prop = Duration::from_nanos(props.prop_ns);
            let peer = self.topo.ports[usize::from(sw)][usize::from(port)];
            let mut pkt = qp.pkt;
            match peer {
                PortPeer::Host(h) => {
                    pkt.snapshot = None; // strip the shim before delivery
                    sched.after(ser + prop, NetEvent::DeliverHost { host: h, pkt });
                }
                PortPeer::Switch {
                    switch: peer_sw,
                    port: peer_port,
                } => {
                    sched.after(
                        ser + prop,
                        NetEvent::ArriveIngress {
                            sw: peer_sw,
                            port: peer_port,
                            pkt,
                        },
                    );
                }
                PortPeer::Unused => {}
            }
            sched.after(ser, NetEvent::TxDone { sw, port });
            return;
        }
    }

    /// Fan initiations for `epoch` out to `devices` aimed at true time
    /// `target`, through the clock-offset/scheduling model.
    fn fan_out_initiations(
        &mut self,
        epoch: Epoch,
        target: Instant,
        devices: &[u16],
        sched: &mut Scheduler<NetEvent>,
        now: Instant,
    ) {
        for &sw in devices {
            let dev = self.latency.initiation.sample_device(&mut self.rng);
            // Degraded PTP adds its deterministic extra offset on top of
            // the sampled residual; it never touches the RNG stream, so
            // degraded and healthy runs share every other draw.
            let offset_ns = dev
                .offset_ns
                .saturating_add(self.ptp_deg.extra_offset_ns(sw, target.as_nanos()));
            let base = if offset_ns >= 0 {
                target + Duration::from_nanos(offset_ns as u64)
            } else {
                Instant::from_nanos(target.as_nanos().saturating_sub(offset_ns.unsigned_abs()))
            };
            let mut at = (base + dev.sched).max(now);
            if let Some(sh) = &self.sharded {
                // Control → device crosses domains: hold the initiation
                // outside the lookahead window. The lead time (ms) dwarfs
                // the lookahead (ns), so the clamp only ever bites on
                // retry fan-outs aimed at `now`.
                at = at.max(now + sh.lookahead);
            }
            sched.at(at, NetEvent::DeviceInitiate { sw, epoch });
        }
    }

    /// Record a snapshot completion in the metrics registry and emit the
    /// `snap.complete` event (shared by the normal and forced paths).
    fn record_completion(
        &mut self,
        snapshot: &GlobalSnapshot,
        issued_at: Instant,
        now: Instant,
        forced: bool,
    ) {
        let dur = now.saturating_since(issued_at);
        let m = &mut self.instr.metrics;
        m.inc("snapshots.completed");
        if forced {
            m.inc("snapshots.forced");
        }
        m.observe(
            "snapshot.completion_latency_ns",
            &obs::metrics::LATENCY_BOUNDS_NS,
            dur.as_nanos(),
        );
        obs::event!(
            &mut self.instr.trace,
            now.as_nanos(),
            "snap.complete",
            epoch = snapshot.epoch,
            dur_ns = dur.as_nanos(),
            units = snapshot.units.len(),
            excluded = snapshot.excluded.len(),
            forced = forced,
        );
    }

    /// Apply a control-plane recovery on the device: clear the down gate
    /// and resynchronize tracking to `epoch` (shared by the serial
    /// `CpRecover` handler and the sharded `CpRecoverSync` one).
    fn cp_recover_apply(&mut self, sw: u16, epoch: Epoch, now: Instant) {
        if let Some(gate) = self.cp_down.get_mut(usize::from(sw)) {
            *gate = false;
        }
        if let Some(switch) = self.switches.get_mut(usize::from(sw)) {
            switch.cp.resync_to(epoch);
        }
        self.instr.metrics.inc("fault.cp_recovered");
        obs::event!(
            &mut self.instr.trace,
            now.as_nanos(),
            "fault.cp_recover",
            dev = sw,
            epoch = epoch,
        );
    }

    fn poll_unit_order(&self, sw: u16, idx: u16) -> Option<UnitId> {
        let ports = self.switches.get(usize::from(sw))?.ports();
        if idx < ports {
            Some(UnitId::ingress(sw, idx))
        } else if idx < 2 * ports {
            Some(UnitId::egress(sw, idx - ports))
        } else {
            None
        }
    }

    /// Inject one round of keepalives at `sw`: every ingress unit's sid is
    /// broadcast through every egress queue, propagating snapshot IDs over
    /// silent channels (§6).
    fn inject_keepalives(&mut self, sw: u16, now: Instant, sched: &mut Scheduler<NetEvent>) {
        let ports = {
            let Some(switch) = self.switches.get_mut(usize::from(sw)) else {
                return;
            };
            switch.stats.keepalives_sent += 1;
            switch.ports()
        };
        self.instr.metrics.inc("keepalives.injected");
        obs::event!(
            &mut self.instr.trace,
            now.as_nanos(),
            "keepalive.inject",
            dev = sw,
        );
        for p in 0..ports {
            let sid = self
                .switches
                .get(usize::from(sw))
                .and_then(|s| s.units.ingress.get(usize::from(p)))
                .map(|u| u.sid());
            let Some(sid) = sid else { continue };
            for q in 0..ports {
                let id = self.next_id();
                let mut pkt = Packet::keepalive(id, u32::MAX);
                pkt.snapshot = Some(SnapshotHeader {
                    packet_type: PacketType::Data,
                    snapshot_id: sid.raw(),
                    channel_id: p,
                });
                sched.after(
                    self.latency.fabric_delay,
                    NetEvent::EnqueueEgress {
                        sw,
                        port: q,
                        qp: QueuedPacket { pkt, from_port: p },
                    },
                );
            }
        }
    }
}

/// Derive which (ingress, egress) port pairs of switch `s` carry traffic
/// under the computed routing: pair `(p, q)` is used iff some destination
/// routes out `q` while `p` can feed traffic toward it (host ports feed
/// everything they attach; switch ports feed what their owner routes
/// through us). Same-port pairs are always considered — initiations
/// traverse them (§6). Returned as a row-major `ports × ports` matrix
/// (`[p * ports + q]`), the layout [`Switch::new`] consumes.
fn used_port_pairs(topo: &Topology, fibs: &[crate::topology::Fib], s: u16) -> Vec<bool> {
    let ports = usize::from(topo.num_ports(s));
    let mut used = vec![false; ports * ports];
    for p in 0..ports {
        used[p * ports + p] = true;
    }
    for h in 0..topo.num_hosts() {
        let outs = fibs[usize::from(s)].next_hops(h);
        for (p, peer) in topo.ports[usize::from(s)].iter().enumerate().take(ports) {
            let feeds = match *peer {
                PortPeer::Host(src) => src != h,
                PortPeer::Switch {
                    switch: peer,
                    port: peer_port,
                } => fibs[usize::from(peer)].next_hops(h).contains(&peer_port),
                PortPeer::Unused => false,
            };
            if feeds {
                for &q in outs {
                    if usize::from(q) != p {
                        used[p * ports + usize::from(q)] = true;
                    }
                }
            }
        }
    }
    used
}

impl World for Network {
    type Event = NetEvent;

    fn handle(&mut self, now: Instant, event: NetEvent, sched: &mut Scheduler<NetEvent>) {
        // Profiled serial runs detour through the classification
        // trampoline; sharded runs are profiled by the shard dispatch
        // loop (`crate::shard`), which already classifies domains.
        // Disabled profiling costs exactly this one branch.
        if self.profiler.is_some() && self.sharded.is_none() {
            self.handle_profiled(now, event, sched);
        } else {
            self.handle_event(now, event, sched);
        }
    }
}

impl Network {
    /// Serial profiled dispatch: account the event under its domain, run
    /// the real handler into the trampoline scheduler, then classify each
    /// follow-up emission and forward it. The trampoline drains in
    /// `(time, insertion)` order and `Scheduler::at` appends in that
    /// order, so same-time FIFO ordering — the only insertion-order the
    /// queue contract exposes — is preserved and the execution stays
    /// byte-identical with profiling enabled.
    fn handle_profiled(&mut self, now: Instant, event: NetEvent, sched: &mut Scheduler<NetEvent>) {
        let Some(mut prof) = self.profiler.take() else {
            panic!("handle_profiled without a profiler");
        };
        let domain = prof.table.of(&event);
        prof.core.observe_windowed(domain as usize, now.as_nanos());
        prof.tramp.repark(now);
        self.handle_event(now, event, &mut prof.tramp);
        while let Some((t, ev)) = prof.tramp.drain_next() {
            let dst = prof.table.of(&ev);
            if dst != domain {
                prof.core.msg(domain as usize, dst as usize);
            }
            sched.at(t, ev);
        }
        self.profiler = Some(prof);
    }

    /// The event interpreter proper: every [`NetEvent`] arm.
    fn handle_event(&mut self, now: Instant, event: NetEvent, sched: &mut Scheduler<NetEvent>) {
        match event {
            NetEvent::ArriveIngress { sw, port, mut pkt } => {
                self.switches[usize::from(sw)].stats.ingress_packets += 1;
                self.unit_process(
                    sw,
                    port,
                    Direction::Ingress,
                    ChannelId(0),
                    &mut pkt,
                    now,
                    sched,
                    None,
                );
                if pkt.role == PacketRole::Keepalive {
                    return; // keepalives die after propagating their ID
                }
                self.route(sw, port, pkt, now, sched);
            }

            NetEvent::EnqueueEgress { sw, port, qp } => {
                // One switch borrow for enqueue + busy transition + gauge.
                let switch = &mut self.switches[usize::from(sw)];
                let (accepted, was_busy, depth) = {
                    let ep = &mut switch.egress_ports[usize::from(port)];
                    let accepted = ep.enqueue(qp);
                    let was_busy = ep.busy;
                    if accepted {
                        ep.busy = true;
                    }
                    (accepted, was_busy, ep.queue.len() as u64)
                };
                if accepted {
                    if switch.eg_metrics.kind() == MetricKind::QueueDepth {
                        switch.eg_metrics.set_gauge(port, depth);
                    }
                    if !was_busy {
                        sched.now_event(NetEvent::StartTx { sw, port });
                    }
                } else {
                    switch.stats.queue_drops += 1;
                }
            }

            NetEvent::StartTx { sw, port } | NetEvent::TxDone { sw, port } => {
                self.start_tx(sw, port, now, sched);
            }

            NetEvent::DeliverHost { host, pkt } => {
                debug_assert!(pkt.snapshot.is_none(), "shim must be stripped");
                let _ = pkt;
                self.instr.host_rx[host as usize] += 1;
            }

            NetEvent::HostWake { host } => {
                // The per-host fork is cached and forking is pure, so
                // deriving the per-wake fork before the source check is
                // side-effect free — which lets the source lookup be a
                // single let-else instead of a check-then-expect pair.
                let mut rng = self.host_rngs[host as usize].fork_idx("wake", now.as_nanos());
                let Some(source) = self.hosts[host as usize].source.as_mut() else {
                    return;
                };
                let mut emissions = std::mem::take(&mut self.scratch_emissions);
                let next = source.on_wake(now, &mut rng, &mut emissions);
                let (sw, port) = self.hosts[host as usize].attached;
                let props = self.topo.link_props[usize::from(sw)][usize::from(port)];
                for em in emissions.drain(..) {
                    let start = self.hosts[host as usize].nic_busy_until.max(now);
                    let ser = Duration::from_nanos(props.serialize_ns(em.bytes));
                    self.hosts[host as usize].nic_busy_until = start + ser;
                    let arrive = start + ser + Duration::from_nanos(props.prop_ns);
                    let id = self.next_id();
                    sched.at(
                        arrive,
                        NetEvent::ArriveIngress {
                            sw,
                            port,
                            pkt: Packet::data(id, em.flow, em.bytes),
                        },
                    );
                }
                self.scratch_emissions = emissions;
                if let Some(next) = next {
                    sched.at(next.max(now), NetEvent::HostWake { host });
                }
            }

            NetEvent::ScheduleSnapshot => {
                // Backpressure contract: a saturated collect queue means
                // the observer cannot keep up with the reports already in
                // flight — initiating another epoch would only deepen the
                // backlog. Defer to the next period instead.
                if self.observer.backpressured() {
                    self.instr.metrics.inc("observer.backpressure_deferred");
                    obs::event!(
                        &mut self.instr.trace,
                        now.as_nanos(),
                        "obs.backpressure",
                        stage = "collect",
                    );
                } else if let Some(epoch) = self
                    .observer
                    .begin_snapshot_traced(&mut self.instr.trace, now.as_nanos())
                {
                    self.instr.metrics.inc("snapshots.initiated");
                    let target = now + self.driver.lead_time;
                    self.issued.insert(epoch, now);
                    self.last_issued_epoch = self.last_issued_epoch.max(epoch);
                    let devices: Vec<u16> = self.observer.device_ids();
                    self.fan_out_initiations(epoch, target, &devices, sched, now);
                }
                if let Some(period) = self.driver.snapshot_period {
                    sched.after(period, NetEvent::ScheduleSnapshot);
                }
            }

            NetEvent::DeviceInitiate { sw, epoch } => {
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "dev.initiate",
                    dev = sw,
                    epoch = epoch,
                );
                for port in 0..self.switches[usize::from(sw)].ports() {
                    let dist = &self.latency.initiation.cpu_to_unit;
                    let extra = match &mut self.sharded {
                        Some(sh) => dist.sample(sh.dev_rng(sw)),
                        None => dist.sample(&mut self.rng),
                    };
                    sched.after(extra, NetEvent::UnitInitiate { sw, port, epoch });
                }
            }

            NetEvent::UnitInitiate { sw, port, epoch } => {
                if !self.switches[usize::from(sw)].snapshot_enabled {
                    return;
                }
                // The CPU agent compares true epochs: a retry that arrives
                // after a newer initiation already reached this unit is
                // stale and must not be injected — the unit's per-channel
                // rollover reference only moves forward, so a wrapped
                // marker from the past would alias to a phantom future
                // epoch and poison every downstream Last Seen register.
                if epoch <= self.init_high[usize::from(sw)][usize::from(port)] {
                    self.instr.metrics.inc("init.stale_dropped");
                    obs::event!(
                        &mut self.instr.trace,
                        now.as_nanos(),
                        "init.stale",
                        dev = sw,
                        port = port,
                        epoch = epoch,
                    );
                    return;
                }
                self.init_high[usize::from(sw)][usize::from(port)] = epoch;
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "unit.initiate",
                    dev = sw,
                    port = port,
                    epoch = epoch,
                );
                let id = self.next_id();
                let mut pkt = Packet::initiation(id, self.wrap(epoch).raw());
                self.unit_process(
                    sw,
                    port,
                    Direction::Ingress,
                    CPU_CHANNEL,
                    &mut pkt,
                    now,
                    sched,
                    Some(epoch),
                );
                // Forward to the same-port egress unit through the fabric
                // (Fig. 6, arrow 3).
                sched.after(
                    self.latency.fabric_delay,
                    NetEvent::EnqueueEgress {
                        sw,
                        port,
                        qp: QueuedPacket {
                            pkt,
                            from_port: port,
                        },
                    },
                );
            }

            NetEvent::NotifyArrive { sw, n } => {
                if self.cp_down[usize::from(sw)] {
                    // The CP socket is dead: the export is lost, as a real
                    // PCIe write to a crashed agent would be.
                    self.instr.metrics.inc("fault.notify_lost_cp_down");
                    obs::event!(
                        &mut self.instr.trace,
                        now.as_nanos(),
                        "fault.notify.cp_down",
                        dev = sw,
                    );
                    return;
                }
                // Fault interception: decide what reaches the CP socket
                // before touching the queue (at most two deliveries: the
                // duplicate, or a released reorder hold plus the trigger).
                let mut deliveries: [Option<Notification>; 2] = [Some(n), None];
                if let Some(fs) = self.notif_faults[usize::from(sw)].as_mut() {
                    fs.seen += 1;
                    let selected = fs.seen % u64::from(fs.cfg.every) == 0;
                    match fs.cfg.kind {
                        NotifFaultKind::Drop if selected => {
                            deliveries[0] = None;
                            self.instr.metrics.inc("fault.notify_dropped");
                            obs::event!(
                                &mut self.instr.trace,
                                now.as_nanos(),
                                "fault.notify.drop",
                                dev = sw,
                            );
                        }
                        NotifFaultKind::Dup if selected => {
                            deliveries[1] = Some(n);
                            self.instr.metrics.inc("fault.notify_duplicated");
                            obs::event!(
                                &mut self.instr.trace,
                                now.as_nanos(),
                                "fault.notify.dup",
                                dev = sw,
                            );
                        }
                        NotifFaultKind::Reorder => {
                            if let Some((held, _)) = fs.held {
                                // A displacing arrival releases the hold.
                                // Cross-unit: the newcomer overtakes (the
                                // reorder). Same-unit: flush the hold first,
                                // preserving per-unit FIFO (§5.2's wrapped
                                // IDs only unwrap forward).
                                fs.held = None;
                                if held.unit != n.unit {
                                    deliveries = [Some(n), Some(held)];
                                    self.instr.metrics.inc("fault.notify_reordered");
                                    obs::event!(
                                        &mut self.instr.trace,
                                        now.as_nanos(),
                                        "fault.notify.reorder",
                                        dev = sw,
                                    );
                                } else {
                                    deliveries = [Some(held), Some(n)];
                                }
                            } else if selected {
                                fs.seq += 1;
                                let seq = fs.seq;
                                fs.held = Some((n, seq));
                                deliveries[0] = None;
                                sched.after(REORDER_HOLD, NetEvent::NotifRelease { sw, seq });
                                obs::event!(
                                    &mut self.instr.trace,
                                    now.as_nanos(),
                                    "fault.notify.hold",
                                    dev = sw,
                                );
                            }
                        }
                        _ => {}
                    }
                }
                for n in deliveries.into_iter().flatten() {
                    self.deliver_notification(sw, n, now, sched);
                }
            }

            NetEvent::NotifRelease { sw, seq } => {
                let held = match self.notif_faults[usize::from(sw)].as_mut() {
                    Some(fs) if matches!(fs.held, Some((_, s)) if s == seq) => {
                        fs.held.take().map(|(n, _)| n)
                    }
                    _ => None,
                };
                if let Some(n) = held {
                    if !self.cp_down[usize::from(sw)] {
                        self.deliver_notification(sw, n, now, sched);
                    }
                }
            }

            NetEvent::LinkSet { sw, port, up } => {
                self.apply_link_shadow(sw, port, up);
                self.instr.metrics.inc(if up {
                    "fault.link_up"
                } else {
                    "fault.link_down"
                });
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "fault.link",
                    dev = sw,
                    port = port,
                    up = up,
                );
            }

            NetEvent::DeviceFault { sw } => {
                self.switches[usize::from(sw)].snapshot_enabled = false;
                self.instr.metrics.inc("fault.device_killed");
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "fault.device",
                    dev = sw,
                );
            }

            NetEvent::CpCrash { sw } => {
                self.cp_down[usize::from(sw)] = true;
                self.switches[usize::from(sw)].crash_cp();
                // The PCIe hold buffer dies with the agent.
                if let Some(fs) = self.notif_faults[usize::from(sw)].as_mut() {
                    fs.held = None;
                }
                self.instr.metrics.inc("fault.cp_crashed");
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "fault.cp_crash",
                    dev = sw,
                );
            }

            NetEvent::CpRecover { sw } => {
                let epoch = self.last_issued_epoch;
                if let Some(sh) = &self.sharded {
                    // The resync target is control-domain state, so this
                    // event runs on the control domain and ships the epoch
                    // to the device owner.
                    let delay = sh.lookahead;
                    sched.after(delay, NetEvent::CpRecoverSync { sw, epoch });
                } else {
                    self.cp_recover_apply(sw, epoch, now);
                }
            }

            NetEvent::CpRecoverSync { sw, epoch } => {
                self.cp_recover_apply(sw, epoch, now);
            }

            NetEvent::KeepaliveProbe { sw, epoch } => {
                if self.switches[usize::from(sw)].snapshot_enabled
                    && !self.switches[usize::from(sw)].cp.device_complete(epoch)
                {
                    self.inject_keepalives(sw, now, sched);
                }
            }

            NetEvent::CpProcess { sw } => {
                let dist = &self.latency.cp_process;
                let proc = match &mut self.sharded {
                    Some(sh) => dist.sample(sh.dev_rng(sw)),
                    None => dist.sample(&mut self.rng),
                };
                let reports = {
                    let switch = &mut self.switches[usize::from(sw)];
                    let Some((n, _dp_time)) = switch.cp_queue.pop_front() else {
                        switch.cp_busy = false;
                        return;
                    };
                    switch.process_notification_traced(&n, &mut self.instr.trace, now.as_nanos())
                };
                for report in reports {
                    let dist = &self.latency.report_latency;
                    let lat = match &mut self.sharded {
                        Some(sh) => dist.sample(sh.dev_rng(sw)),
                        None => dist.sample(&mut self.rng),
                    };
                    // Device → control: the report crosses domains, so the
                    // sharded engine keeps it outside the lookahead window.
                    let delay = self.cross_domain(proc + lat);
                    sched.after(delay, NetEvent::ReportArrive { device: sw, report });
                }
                let switch = &mut self.switches[usize::from(sw)];
                if switch.cp_queue.is_empty() {
                    switch.cp_busy = false;
                } else {
                    sched.after(proc, NetEvent::CpProcess { sw });
                }
            }

            NetEvent::ReportArrive { device, report } => {
                obs::event!(
                    &mut self.instr.trace,
                    now.as_nanos(),
                    "report.arrive",
                    dev = device,
                    epoch = report.epoch,
                );
                if let Some(snapshot) = self.observer.on_report_traced(
                    device,
                    report,
                    &mut self.instr.trace,
                    now.as_nanos(),
                ) {
                    let issued_at = self.issued.remove(&snapshot.epoch).unwrap_or(Instant::ZERO);
                    self.retried.remove(&snapshot.epoch);
                    self.record_completion(&snapshot, issued_at, now, false);
                    self.instr.snapshots.push(SnapshotRecord {
                        snapshot,
                        issued_at,
                        completed_at: now,
                        forced: false,
                    });
                }
            }

            NetEvent::ObserverTick => {
                // Maintenance begins by pumping the pipeline stages to
                // quiescence (a no-op for the synchronous embedding and
                // the reference observer) so timeout decisions below are
                // made against fully-folded state.
                self.observer
                    .pump_traced(&mut self.instr.trace, now.as_nanos());
                let pending: Vec<Epoch> = self.observer.pending_epochs();
                // Initiations are cumulative (an initiation for epoch E
                // advances a unit past every epoch < E), so re-initiating
                // only the *newest* overdue epoch suffices for liveness —
                // and avoids an event storm when many epochs are pending.
                let mut newest_overdue: Option<(Epoch, Instant)> = None;
                for epoch in pending {
                    let Some(&issued_at) = self.issued.get(&epoch) else {
                        continue;
                    };
                    let age = now.saturating_since(issued_at);
                    if age >= self.driver.device_timeout {
                        if let Some(snapshot) = self.observer.force_finalize_traced(
                            epoch,
                            &mut self.instr.trace,
                            now.as_nanos(),
                        ) {
                            self.issued.remove(&epoch);
                            self.retried.remove(&epoch);
                            self.record_completion(&snapshot, issued_at, now, true);
                            self.instr.snapshots.push(SnapshotRecord {
                                snapshot,
                                issued_at,
                                completed_at: now,
                                forced: true,
                            });
                        }
                    } else if age >= self.driver.retry_timeout {
                        newest_overdue = Some((epoch, issued_at));
                    }
                }
                if let Some((epoch, _)) = newest_overdue {
                    let paced = self
                        .retried
                        .get(&epoch)
                        .map(|t| now.saturating_since(*t) >= self.driver.retry_timeout)
                        .unwrap_or(true);
                    // Re-initiations are deferred under backpressure for
                    // the same reason as initiations: they fan out more
                    // reports toward an already-saturated collect queue.
                    // Timeouts above still fire — liveness must not
                    // depend on the pipeline draining.
                    if self.observer.backpressured() {
                        self.instr.metrics.inc("observer.backpressure_deferred");
                    } else if paced {
                        let lagging: Vec<u16> =
                            self.observer.lagging_devices(epoch).into_iter().collect();
                        if !lagging.is_empty() {
                            self.retried.insert(epoch, now);
                            self.instr.metrics.inc("snapshots.reinitiated");
                            obs::event!(
                                &mut self.instr.trace,
                                now.as_nanos(),
                                "snap.reinitiate",
                                epoch = epoch,
                                devices = lagging.len(),
                            );
                            self.fan_out_initiations(epoch, now, &lagging, sched, now);
                        }
                    }
                }
                sched.after(self.driver.tick, NetEvent::ObserverTick);
            }

            NetEvent::PollSweep => {
                let sweep = self.next_sweep;
                self.next_sweep += 1;
                self.instr.polls.push(PollSweepRecord::default());
                for sw in 0..self.switches.len() as u16 {
                    // Each device agent starts after its own request/wakeup
                    // delay — sweeps of different switches are offset. The
                    // draw stays on the control domain's stream (the sweep
                    // is observer-side); only the emission crosses domains.
                    let start = self.latency.poll_agent_start.sample(&mut self.rng);
                    let start = self.cross_domain(start);
                    sched.after(start, NetEvent::PollRead { sw, idx: 0, sweep });
                }
                if let Some(period) = self.driver.poll_period {
                    sched.after(period, NetEvent::PollSweep);
                }
            }

            NetEvent::PollRead { sw, idx, sweep } => {
                let Some(uid) = self.poll_unit_order(sw, idx) else {
                    return;
                };
                let dist = &self.latency.poll_read;
                let delay = match &mut self.sharded {
                    Some(sh) => dist.sample(sh.dev_rng(sw)),
                    None => dist.sample(&mut self.rng),
                };
                sched.after(
                    delay,
                    NetEvent::PollComplete {
                        sw,
                        idx,
                        sweep,
                        uid,
                    },
                );
            }

            NetEvent::PollComplete {
                sw,
                idx,
                sweep,
                uid,
            } => {
                let value = {
                    let switch = &self.switches[usize::from(sw)];
                    let bank = match uid.direction {
                        Direction::Ingress => &switch.ing_metrics,
                        Direction::Egress => &switch.eg_metrics,
                    };
                    bank.read(uid.port)
                };
                // Sharded mode: the sweep record was pushed by `PollSweep`
                // on the control domain's shard; device owners grow their
                // local vector so every sample lands under its sweep index
                // (the merge is per-sweep, so gaps on other shards are
                // fine).
                if self.sharded.is_some() {
                    while self.instr.polls.len() <= sweep as usize {
                        self.instr.polls.push(PollSweepRecord::default());
                    }
                }
                if let Some(rec) = self.instr.polls.get_mut(sweep as usize) {
                    rec.samples.push((uid, value, now));
                }
                sched.now_event(NetEvent::PollRead {
                    sw,
                    idx: idx + 1,
                    sweep,
                });
            }

            NetEvent::KeepaliveTick => {
                if self.snapshot_cfg.channel_state {
                    let oldest_pending = self.observer.pending_epochs().into_iter().next();
                    if let Some(oldest) = oldest_pending {
                        let stale = self
                            .issued
                            .get(&oldest)
                            .map(|t| now.saturating_since(*t) > self.driver.lead_time * 2)
                            .unwrap_or(false);
                        if stale {
                            if let Some(sh) = &self.sharded {
                                // Device completion state lives on each
                                // owner shard; ship the check there.
                                let delay = sh.lookahead;
                                for sw in 0..self.switches.len() as u16 {
                                    sched.after(
                                        delay,
                                        NetEvent::KeepaliveProbe { sw, epoch: oldest },
                                    );
                                }
                            } else {
                                for sw in 0..self.switches.len() as u16 {
                                    if self.switches[usize::from(sw)].snapshot_enabled
                                        && !self.switches[usize::from(sw)]
                                            .cp
                                            .device_complete(oldest)
                                    {
                                        self.inject_keepalives(sw, now, sched);
                                    }
                                }
                            }
                        }
                    }
                }
                if let Some(period) = self.driver.keepalive_period {
                    sched.after(period, NetEvent::KeepaliveTick);
                }
            }
        }
    }
}
