//! The simulated network fabric — Speedlight's testbed substrate.
//!
//! This crate embeds the sans-I/O protocol state machines of
//! `speedlight-core` into a discrete-event network: switches with per-port
//! ingress/egress processing units, output-queued ports with finite
//! buffers, bandwidth/propagation-modeled links, hosts driven by pluggable
//! traffic sources, per-device control planes with a serial
//! notification-processing model, and a network-attached snapshot
//! observer.
//!
//! The module split mirrors the paper's system model (§4.1):
//!
//! * [`topology`] — switches, hosts, links, and all-shortest-path routing
//!   (with ECMP groups); builders for the paper's leaf-spine testbed.
//! * [`packet`] — the simulated packet (flow key, size, snapshot header).
//! * [`latency`] — every latency/jitter knob in one place (fabric
//!   traversal, PCIe, control-plane processing, observer paths).
//! * [`switchmod`] — one switch: processing units, metric banks, egress
//!   queues, load balancer, control plane.
//! * [`network`] — the event interpreter gluing everything together.
//! * [`testbed`] — the user-facing harness: build, drive, snapshot,
//!   poll, inspect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod network;
pub mod packet;
pub mod shard;
pub mod switchmod;
pub mod testbed;
pub mod topology;
pub mod traffic;

pub use latency::LatencyModel;
pub use network::{DriverConfig, NetEvent, Network, PollSweepRecord, SnapshotRecord};
pub use packet::Packet;
pub use switchmod::SnapshotConfig;
pub use testbed::{Testbed, TestbedConfig};
pub use topology::{LbKind, Topology};
pub use traffic::{Emission, MultiSource, Source};
