//! One simulated switch: processing units, metric banks, egress queues,
//! load balancer, and the device control plane.

use crate::packet::Packet;
use crate::topology::{Fib, LbKind};
use loadbalance::{Ecmp, FlowletSwitch, LoadBalancer};
use netsim::time::{Duration, Instant};
use speedlight_core::control::{ControlPlane, Registers};
use speedlight_core::types::{ChannelId, Direction, Notification, UnitId};
use speedlight_core::unit::{DataPlaneUnit, SnapSlot, UnitConfig};
use speedlight_core::WrappedId;
use std::collections::VecDeque;
use telemetry::{MetricBank, MetricKind};

/// Snapshot-related configuration shared by every switch in a deployment.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Snapshot ID modulus.
    pub modulus: u16,
    /// Whether channel state is collected.
    pub channel_state: bool,
    /// Metric measured at ingress units.
    pub ingress_metric: MetricKind,
    /// Metric measured at egress units.
    pub egress_metric: MetricKind,
}

impl SnapshotConfig {
    /// A packet-count snapshot with channel state (the richest variant).
    pub fn packet_count_cs(modulus: u16) -> SnapshotConfig {
        SnapshotConfig {
            modulus,
            channel_state: true,
            ingress_metric: MetricKind::PacketCount,
            egress_metric: MetricKind::PacketCount,
        }
    }

    /// The Fig. 12 configuration: EWMA interarrival, no channel state.
    pub fn ewma(modulus: u16) -> SnapshotConfig {
        SnapshotConfig {
            modulus,
            channel_state: false,
            ingress_metric: MetricKind::EwmaInterarrival,
            egress_metric: MetricKind::EwmaInterarrival,
        }
    }
}

/// The per-port register state of one switch's data plane.
///
/// Implements [`Registers`] so the device control plane can read/clear
/// snapshot slots exactly as over PCIe.
pub struct SwitchUnits {
    device: u16,
    /// Ingress processing units, one per port.
    pub ingress: Vec<DataPlaneUnit>,
    /// Egress processing units, one per port.
    pub egress: Vec<DataPlaneUnit>,
}

impl SwitchUnits {
    fn unit(&self, id: UnitId) -> &DataPlaneUnit {
        debug_assert_eq!(id.device, self.device);
        let bank = match id.direction {
            Direction::Ingress => &self.ingress,
            Direction::Egress => &self.egress,
        };
        let Some(unit) = bank.get(usize::from(id.port)) else {
            panic!("unit id {id:?} out of range for device {}", self.device);
        };
        unit
    }

    fn unit_mut(&mut self, id: UnitId) -> &mut DataPlaneUnit {
        debug_assert_eq!(id.device, self.device);
        let bank = match id.direction {
            Direction::Ingress => &mut self.ingress,
            Direction::Egress => &mut self.egress,
        };
        let Some(unit) = bank.get_mut(usize::from(id.port)) else {
            panic!("unit id {id:?} out of range for device {}", self.device);
        };
        unit
    }
}

impl Registers for SwitchUnits {
    fn read_sid(&mut self, unit: UnitId) -> WrappedId {
        self.unit(unit).sid()
    }
    fn read_last_seen(&mut self, unit: UnitId, channel: ChannelId) -> WrappedId {
        self.unit(unit).last_seen(channel)
    }
    fn take_slot(&mut self, unit: UnitId, id: WrappedId) -> Option<SnapSlot> {
        self.unit_mut(unit).take_slot(id)
    }
}

/// A packet sitting in an egress queue, remembering its upstream channel.
#[derive(Debug, Clone)]
pub struct QueuedPacket {
    /// The packet.
    pub pkt: Packet,
    /// The ingress port it came from (the egress unit's channel).
    pub from_port: u16,
}

/// One output-queued egress port.
#[derive(Debug)]
pub struct EgressPort {
    /// FIFO queue.
    pub queue: VecDeque<QueuedPacket>,
    /// Occupancy in bytes.
    pub queued_bytes: u64,
    /// Byte capacity (tail-drop beyond this).
    pub capacity_bytes: u64,
    /// Whether the transmitter is mid-packet.
    pub busy: bool,
    /// Tail-drop count.
    pub drops: u64,
}

impl EgressPort {
    fn new(capacity_bytes: u64) -> EgressPort {
        EgressPort {
            queue: VecDeque::new(),
            queued_bytes: 0,
            capacity_bytes,
            busy: false,
            drops: 0,
        }
    }

    /// Try to enqueue; `false` (and a drop count) on overflow.
    pub fn enqueue(&mut self, qp: QueuedPacket) -> bool {
        if self.queued_bytes + u64::from(qp.pkt.size) > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        self.queued_bytes += u64::from(qp.pkt.size);
        self.queue.push_back(qp);
        true
    }

    /// Dequeue the head packet.
    pub fn dequeue(&mut self) -> Option<QueuedPacket> {
        let qp = self.queue.pop_front()?;
        self.queued_bytes -= u64::from(qp.pkt.size);
        Some(qp)
    }
}

/// Statistics counters for one switch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Packets processed at ingress.
    pub ingress_packets: u64,
    /// Packets transmitted.
    pub egress_packets: u64,
    /// Tail drops across all egress queues.
    pub queue_drops: u64,
    /// Notifications dropped at the CP socket buffer.
    pub notify_drops: u64,
    /// Keepalive broadcasts injected for liveness.
    pub keepalives_sent: u64,
    /// Frames lost on the wire because the egress link was down.
    pub link_drops: u64,
}

/// A full switch.
pub struct Switch {
    /// Device ID.
    pub id: u16,
    /// Whether this device participates in snapshots (partial deployment,
    /// §10). Disabled switches forward shims untouched.
    pub snapshot_enabled: bool,
    /// Data-plane register state.
    pub units: SwitchUnits,
    /// The device control plane.
    pub cp: ControlPlane,
    /// Pristine clone of the control plane at construction: the reset
    /// template a simulated CP crash restores from (a restarted agent
    /// comes up with zeroed tracking state, not the pre-crash arrays).
    cp_pristine: ControlPlane,
    /// Forwarding table.
    pub fib: Fib,
    /// Multipath selector.
    pub lb: Box<dyn LoadBalancer + Send>,
    /// Ingress metric registers.
    pub ing_metrics: MetricBank,
    /// Egress metric registers.
    pub eg_metrics: MetricBank,
    /// Output queues.
    pub egress_ports: Vec<EgressPort>,
    /// Pending notifications awaiting serial CP processing; each carries
    /// the data-plane timestamp it was generated at.
    pub cp_queue: VecDeque<(Notification, Instant)>,
    /// Whether the CP is mid-notification.
    pub cp_busy: bool,
    /// Counters.
    pub stats: SwitchStats,
    /// Snapshotted register for the FIB version (§10 "Measuring
    /// Forwarding State"): the last FIB version a forwarded packet saw.
    pub fib_version_seen: u64,
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("id", &self.id)
            .field("snapshot_enabled", &self.snapshot_enabled)
            .field("lb", &self.lb.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Switch {
    /// Build a switch.
    ///
    /// `considered_ext[p]` — whether ingress port `p`'s external upstream
    /// channel counts toward completion (true iff the peer is a
    /// snapshot-enabled switch). `considered_pair` is a row-major
    /// `ports × ports` matrix: `considered_pair[p * ports + q]` — whether
    /// the internal channel ingress `p` → egress `q` counts (derived from
    /// the routing analysis; §6 "operators can configure the removal of
    /// non-utilized upstream neighbors").
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u16,
        ports: u16,
        cfg: &SnapshotConfig,
        lb_kind: LbKind,
        lb_salt: u64,
        queue_capacity_bytes: u64,
        fib: Fib,
        considered_ext: Vec<bool>,
        considered_pair: Vec<bool>,
    ) -> Switch {
        assert_eq!(considered_ext.len(), usize::from(ports));
        assert_eq!(
            considered_pair.len(),
            usize::from(ports) * usize::from(ports)
        );
        let mk_unit = |unit: UnitId, num_channels: u16| {
            DataPlaneUnit::new(UnitConfig {
                unit,
                modulus: cfg.modulus,
                channel_state: cfg.channel_state,
                num_channels,
            })
        };
        let ingress: Vec<DataPlaneUnit> = (0..ports)
            .map(|p| mk_unit(UnitId::ingress(id, p), 1))
            .collect();
        let egress: Vec<DataPlaneUnit> = (0..ports)
            .map(|p| mk_unit(UnitId::egress(id, p), ports))
            .collect();

        let mut cp = ControlPlane::new(id, cfg.modulus, cfg.channel_state);
        for p in 0..ports {
            cp.register_unit(
                UnitId::ingress(id, p),
                1,
                vec![considered_ext[usize::from(p)]],
            );
            // Egress unit q's channel i is ingress port i.
            let mask: Vec<bool> = (0..ports)
                .map(|i| considered_pair[usize::from(i) * usize::from(ports) + usize::from(p)])
                .collect();
            cp.register_unit(UnitId::egress(id, p), ports, mask);
        }

        let lb: Box<dyn LoadBalancer + Send> = match lb_kind {
            LbKind::Ecmp => Box::new(Ecmp::new(lb_salt)),
            LbKind::Flowlet { gap_us } => {
                Box::new(FlowletSwitch::new(lb_salt, Duration::from_micros(gap_us)))
            }
        };

        Switch {
            id,
            snapshot_enabled: true,
            units: SwitchUnits {
                device: id,
                ingress,
                egress,
            },
            cp_pristine: cp.clone(),
            cp,
            fib,
            lb,
            ing_metrics: MetricBank::new(cfg.ingress_metric, ports),
            eg_metrics: MetricBank::new(cfg.egress_metric, ports),
            egress_ports: (0..ports)
                .map(|_| EgressPort::new(queue_capacity_bytes))
                .collect(),
            cp_queue: VecDeque::new(),
            cp_busy: false,
            stats: SwitchStats::default(),
            fib_version_seen: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> u16 {
        self.egress_ports.len() as u16
    }

    /// Run the control plane over one queued notification with trace
    /// emission: a `cp.process` event (with the residual CP queue depth),
    /// then whatever `cp.report` / `cp.inconsistent` events the control
    /// plane produces. Borrows `cp` and `units` disjointly, like the
    /// untraced `switch.cp.on_notification(&n, &mut switch.units)` call.
    pub fn process_notification_traced<S: obs::Sink>(
        &mut self,
        n: &Notification,
        sink: &mut S,
        t_ns: u64,
    ) -> Vec<speedlight_core::control::Report> {
        obs::event!(
            sink,
            t_ns,
            "cp.process",
            dev = self.id,
            queued = self.cp_queue.len(),
        );
        self.cp
            .on_notification_traced(n, &mut self.units, sink, t_ns)
    }

    /// Simulate a control-plane crash: the agent process dies, losing its
    /// tracking arrays and every queued notification. The data plane
    /// (units, metrics, queues) is untouched — only the CPU side restarts.
    pub fn crash_cp(&mut self) {
        self.cp = self.cp_pristine.clone();
        self.cp_queue.clear();
        self.cp_busy = false;
    }

    /// All unit IDs of this switch (observer registration).
    pub fn unit_ids(&self) -> Vec<UnitId> {
        let mut v = Vec::with_capacity(2 * usize::from(self.ports()));
        for p in 0..self.ports() {
            v.push(UnitId::ingress(self.id, p));
            v.push(UnitId::egress(self.id, p));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_switch(ports: u16) -> Switch {
        let n = usize::from(ports);
        Switch::new(
            0,
            ports,
            &SnapshotConfig::packet_count_cs(8),
            LbKind::Ecmp,
            0,
            100_000,
            Fib::default(),
            vec![true; n],
            vec![true; n * n],
        )
    }

    #[test]
    fn switch_builds_units_and_registers_them() {
        let sw = test_switch(4);
        assert_eq!(sw.ports(), 4);
        assert_eq!(sw.unit_ids().len(), 8);
        assert_eq!(sw.cp.units().count(), 8);
        assert_eq!(sw.units.ingress.len(), 4);
        assert_eq!(sw.units.egress[0].config().num_channels, 4);
        assert_eq!(sw.units.ingress[0].config().num_channels, 1);
    }

    #[test]
    fn egress_port_tail_drops_on_overflow() {
        let mut port = EgressPort::new(3_000);
        let qp = |id: u64| QueuedPacket {
            pkt: Packet::data(id, wire::FlowKey::tcp(0, 1, 1, 1), 1_500),
            from_port: 0,
        };
        assert!(port.enqueue(qp(1)));
        assert!(port.enqueue(qp(2)));
        assert!(!port.enqueue(qp(3)), "third 1500B packet exceeds 3000B");
        assert_eq!(port.drops, 1);
        assert_eq!(port.queued_bytes, 3_000);
        let out = port.dequeue().unwrap();
        assert_eq!(out.pkt.id, 1);
        assert_eq!(port.queued_bytes, 1_500);
        assert!(port.enqueue(qp(4)));
    }

    #[test]
    fn registers_view_reaches_units() {
        let mut sw = test_switch(2);
        let uid = UnitId::ingress(0, 1);
        assert_eq!(sw.units.read_sid(uid).raw(), 0);
        // Drive the unit forward and read back through the trait.
        let w1 = WrappedId::from_raw(1, 8);
        sw.units.ingress[1].on_packet(ChannelId(0), w1, 5, 1, false);
        assert_eq!(sw.units.read_sid(uid).raw(), 1);
        assert_eq!(sw.units.read_last_seen(uid, ChannelId(0)).raw(), 1);
        let slot = sw.units.take_slot(uid, w1).expect("saved");
        assert_eq!(slot.value, 5);
    }

    #[test]
    fn unconsidered_channels_are_configured_through() {
        let sw = Switch::new(
            0,
            2,
            &SnapshotConfig::packet_count_cs(8),
            LbKind::Ecmp,
            0,
            100_000,
            Fib::default(),
            vec![false, true], // port 0 faces a host
            // Row-major pair matrix: [0→0, 0→1, 1→0, 1→1].
            vec![true, false, true, true],
        );
        // Host-facing ingress never gates completion: a CP-view check —
        // no stalled channel for epoch 1 on that unit even though silent.
        let stalled = sw.cp.stalled_channels(1);
        assert!(!stalled.contains(&(UnitId::ingress(0, 0), ChannelId(0))));
        assert!(stalled.contains(&(UnitId::ingress(0, 1), ChannelId(0))));
        // considered_pair[p][q] gates ingress p → egress q: with
        // pair[0][1] = false, egress 1 does not wait on ingress 0.
        assert!(!stalled.contains(&(UnitId::egress(0, 1), ChannelId(0))));
        assert!(stalled.contains(&(UnitId::egress(0, 1), ChannelId(1))));
        assert!(stalled.contains(&(UnitId::egress(0, 0), ChannelId(0))));
        assert!(stalled.contains(&(UnitId::egress(0, 0), ChannelId(1))));
    }

    #[test]
    fn cp_crash_resets_tracking_and_drops_the_queue() {
        let mut sw = test_switch(2);
        let uid = UnitId::ingress(0, 0);
        let w1 = WrappedId::from_raw(1, 8);
        let out = sw.units.ingress[0].on_packet(ChannelId(0), w1, 3, 1, false);
        let n = out.notification.expect("advancing packet notifies");
        let _ = sw.cp.on_notification(&n, &mut sw.units);
        assert_eq!(sw.cp.unit_epoch(uid), Some(1));
        sw.cp_queue.push_back((n, Instant::ZERO));
        sw.cp_busy = true;
        sw.crash_cp();
        assert_eq!(sw.cp.unit_epoch(uid), Some(0), "tracking state zeroed");
        assert!(sw.cp_queue.is_empty(), "queued notifications lost");
        assert!(!sw.cp_busy);
    }

    #[test]
    fn flowlet_switch_constructs() {
        let sw = Switch::new(
            3,
            2,
            &SnapshotConfig::ewma(16),
            LbKind::Flowlet { gap_us: 80 },
            9,
            100_000,
            Fib::default(),
            vec![true; 2],
            vec![true; 4],
        );
        assert_eq!(sw.lb.name(), "flowlet");
        assert!(!sw.cp.channel_state());
    }
}
