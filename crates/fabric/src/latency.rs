//! Latency and capacity models for the parts of the system the DES does
//! not simulate packet-by-packet.
//!
//! Defaults are calibrated to the paper's testbed-derived observations:
//! PTP/scheduling/initiation distributions to Fig. 9's synchronization
//! numbers (see `timesync::initiation`), and the control-plane processing
//! time to Fig. 10's ~70 snapshots/s ceiling at 64 ports (the paper
//! attributes the bottleneck to "our unoptimized control plane processing
//! latency", a Python process).

use netsim::dist::{Dist, DurationDist};
use netsim::time::Duration;
use timesync::InitiationModel;

/// All non-packet latency/capacity knobs.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Ingress-pipeline → egress-queue traversal (switching fabric).
    pub fabric_delay: Duration,
    /// Data plane → CPU notification path (mirror + PCIe DMA + kernel).
    pub notify_pcie: DurationDist,
    /// Serial control-plane processing time per notification (Fig. 10's
    /// bottleneck).
    pub cp_process: DurationDist,
    /// Control-plane notification socket buffer: pending notifications
    /// beyond this are dropped (Fig. 10: "notification drops").
    pub cp_queue_capacity: usize,
    /// Device control plane → observer report latency (management network).
    pub report_latency: DurationDist,
    /// Per-unit snapshot initiation model (PTP offset + scheduling +
    /// CPU→data-plane latency).
    pub initiation: InitiationModel,
    /// Latency of one counter poll through a control-plane agent
    /// (baseline polling framework, §8.1).
    pub poll_read: DurationDist,
    /// Delay between the observer requesting a sweep and a device's agent
    /// starting its read sequence (request transit + agent scheduling).
    pub poll_agent_start: DurationDist,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            fabric_delay: Duration::from_nanos(400),
            notify_pcie: DurationDist::micros(Dist::lognormal_median(4.0, 0.3)),
            // ~95 µs median serial processing per notification: yields the
            // paper's ">70 Hz at 64 ports" ceiling (128 units × ~98 µs ≈
            // 12.6 ms per snapshot → ~79 Hz).
            cp_process: DurationDist::micros(Dist::lognormal_median(95.0, 0.25)),
            cp_queue_capacity: 4_096,
            report_latency: DurationDist::micros(Dist::lognormal_median(40.0, 0.3)),
            initiation: InitiationModel::testbed(),
            // Counter polls through the CP agent: ~85 µs median with a
            // heavy tail (scheduling); a 28-unit sweep spans ≈2.6 ms,
            // matching §8.1's polling baseline.
            poll_read: DurationDist::micros(Dist::lognormal_median(85.0, 0.35).mixed(
                0.97,
                Dist::Uniform {
                    lo: 300.0,
                    hi: 900.0,
                },
            )),
            // Agents start their sweeps a few hundred µs apart (RPC +
            // process wakeup), occasionally milliseconds.
            poll_agent_start: DurationDist::micros(Dist::lognormal_median(250.0, 0.6).mixed(
                0.95,
                Dist::Uniform {
                    lo: 1_000.0,
                    hi: 3_000.0,
                },
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimRng;

    #[test]
    fn defaults_hit_their_calibration_targets() {
        let m = LatencyModel::default();
        let mut rng = SimRng::new(7);
        // CP processing: 128 notifications should take ~14 ms on average,
        // i.e. a ceiling near 70 snapshots/s at 64 ports.
        let total_us: f64 = (0..128)
            .map(|_| m.cp_process.sample(&mut rng).as_micros_f64())
            .sum();
        let rate = 1e6 / total_us;
        assert!(
            (50.0..110.0).contains(&rate),
            "implied max rate {rate:.0} Hz"
        );

        // Polling: a 28-unit sequential sweep spans a couple of ms.
        let sweep_ms: f64 = (0..28)
            .map(|_| m.poll_read.sample(&mut rng).as_micros_f64())
            .sum::<f64>()
            / 1e3;
        assert!(
            (1.5..5.0).contains(&sweep_ms),
            "poll sweep {sweep_ms:.2} ms"
        );
    }

    #[test]
    fn fabric_delay_is_sub_microsecond() {
        assert!(LatencyModel::default().fabric_delay < Duration::from_micros(1));
    }
}
