//! Sharded execution of one network simulation: domains, the topology
//! partitioner, and the [`ShardedTestbed`] harness.
//!
//! The sharded engine partitions the fabric **by device**: every event
//! belongs to exactly one *domain* — the device it executes on, the host
//! it wakes, or the control plane (observer/driver) — and each domain is
//! owned by exactly one shard. A shard holds a full [`Network`] replica
//! (identical construction from the same seed, so per-domain RNG streams
//! and static state agree everywhere) but only ever processes events for
//! the domains it owns; all other state in the replica stays inert.
//!
//! Determinism contract (`SPEEDLIGHT_SHARDS`-invariance): a domain's
//! event stream, RNG draws, packet ids, and emitted follow-ups are
//! functions of the domain alone, never of how domains are packed onto
//! shards. Three mechanisms enforce this:
//!
//! 1. **Domain-scoped nondeterminism** — [`Network`] in sharded mode
//!    draws device latencies from per-device RNGs forked from the root
//!    seed by device id, allocates packet ids from per-domain counters,
//!    and reserves the global stream for the control domain
//!    (see `Network::enable_sharded_mode`).
//! 2. **Canonical event keys** — every emission carries a
//!    `(source domain, per-domain sequence)` key
//!    ([`netsim::shard::pack_key`]); each shard's queue is a min-heap on
//!    `(time, key)`, so a shard processes any given multiset of events in
//!    one canonical order.
//! 3. **Lookahead windows** — every cross-*domain* emission is delayed by
//!    at least the topology's minimum link propagation (naturally for
//!    packets, clamped for control traffic), so the conservative
//!    window-barrier protocol in [`netsim::shard`] can run each window in
//!    parallel without ever reordering a domain's inputs.
//!
//! Outputs are combined by shard-count-independent merge rules
//! (see [`ShardedTestbed`]): sums for disjoint counters, min/max/sum for
//! the sync map, canonical sorts for traces, polls, and the delivery
//! log. The merges are applied at *every* shard count — including 1 — so
//! `SPEEDLIGHT_SHARDS=1,2,4,8` produce byte-identical artifacts.
//!
//! The sharded engine is a second execution mode, not a replacement: the
//! serial [`crate::testbed::Testbed`] is untouched and remains the
//! reference for all committed baselines.

use crate::network::{NetEvent, Network, NotifFaultConfig, PollSweepRecord, SnapshotRecord};
use crate::topology::{PortPeer, Topology};
use crate::traffic::Source;
use netsim::rng::SeedEcho;
use netsim::shard::{pack_key, Emit, ShardWorld, ShardedSim};
use netsim::sim::{RunOutcome, Scheduler, World};
use netsim::time::{Duration, Instant};
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::Epoch;

use crate::testbed::TestbedConfig;

/// Maps events to the domains that own their state.
///
/// Domain ids are dense: devices first (`0..num_switches`), then hosts
/// (`num_switches..num_switches+num_hosts`), then the control domain,
/// then one *external* pseudo-domain used to key testbed-level
/// injections (it never executes events and never allocates packet ids).
#[derive(Debug, Clone, Copy)]
pub struct DomainTable {
    num_switches: u32,
    num_hosts: u32,
}

impl DomainTable {
    /// The domain table for `topo`.
    pub fn new(topo: &Topology) -> DomainTable {
        DomainTable {
            num_switches: topo.num_switches() as u32,
            num_hosts: topo.num_hosts(),
        }
    }

    /// The device domain of switch `sw`.
    pub fn device(&self, sw: u16) -> u32 {
        assert!(u32::from(sw) < self.num_switches, "unknown switch {sw}");
        u32::from(sw)
    }

    /// The host domain of host `h`.
    pub fn host(&self, h: u32) -> u32 {
        assert!(h < self.num_hosts, "unknown host {h}");
        self.num_switches + h
    }

    /// The control (observer/driver) domain.
    pub fn control(&self) -> u32 {
        self.num_switches + self.num_hosts
    }

    /// The external pseudo-domain keying testbed-level injections.
    pub fn external(&self) -> u32 {
        self.control() + 1
    }

    /// Total number of domains, external pseudo-domain included.
    pub fn count(&self) -> u32 {
        self.external() + 1
    }

    /// The domain owning `ev`'s state.
    pub fn of(&self, ev: &NetEvent) -> u32 {
        match *ev {
            NetEvent::ArriveIngress { sw, .. }
            | NetEvent::EnqueueEgress { sw, .. }
            | NetEvent::StartTx { sw, .. }
            | NetEvent::TxDone { sw, .. }
            | NetEvent::DeviceInitiate { sw, .. }
            | NetEvent::UnitInitiate { sw, .. }
            | NetEvent::NotifyArrive { sw, .. }
            | NetEvent::CpProcess { sw }
            | NetEvent::PollRead { sw, .. }
            | NetEvent::PollComplete { sw, .. }
            | NetEvent::LinkSet { sw, .. }
            | NetEvent::DeviceFault { sw }
            | NetEvent::CpCrash { sw }
            | NetEvent::NotifRelease { sw, .. }
            | NetEvent::KeepaliveProbe { sw, .. }
            | NetEvent::CpRecoverSync { sw, .. } => self.device(sw),
            NetEvent::DeliverHost { host, .. } | NetEvent::HostWake { host } => self.host(host),
            // `CpRecover` resynchronizes against the *observer's* newest
            // issued epoch, so it executes on the control domain and
            // ships the target to the device via `CpRecoverSync`.
            NetEvent::ScheduleSnapshot
            | NetEvent::ObserverTick
            | NetEvent::PollSweep
            | NetEvent::KeepaliveTick
            | NetEvent::CpRecover { .. }
            | NetEvent::ReportArrive { .. } => self.control(),
        }
    }
}

/// Structure hint for the device partitioner: exploiting the topology's
/// shape minimizes cut edges (links whose endpoints live on different
/// shards), which keeps cross-shard traffic low. Any hint is *correct*
/// for any topology — outputs never depend on the partition — so a wrong
/// hint only costs performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionHint {
    /// Contiguous balanced chunks of the device id space.
    Generic,
    /// Leaf-spine: the first `leaves` devices are leaves (chunked so
    /// leaf+host clusters stay together), the rest are spines
    /// (round-robin — every spine touches every leaf anyway).
    LeafSpine {
        /// Number of leaf switches (device ids `0..leaves`).
        leaves: u16,
    },
    /// k-ary fat-tree as built by [`Topology::fat_tree`]: pods (edge +
    /// aggregation switches) are kept whole and chunked across shards;
    /// core switches are round-robin (each core touches every pod).
    FatTree {
        /// The tree arity.
        k: u16,
    },
}

/// Assign every device to a shard in `0..shards`. Hosts are not listed:
/// they always follow their attached device (the host link is the one
/// edge that must never be cut — it carries the densest traffic).
pub fn partition_devices(topo: &Topology, hint: PartitionHint, shards: usize) -> Vec<usize> {
    let n = usize::from(topo.num_switches());
    let shards = shards.max(1);
    // Balanced contiguous chunks: floor(idx * shards / total).
    let chunk =
        |idx: usize, total: usize| -> usize { (idx * shards).checked_div(total).unwrap_or(0) };
    (0..n)
        .map(|d| match hint {
            PartitionHint::Generic => chunk(d, n),
            PartitionHint::LeafSpine { leaves } => {
                let leaves = usize::from(leaves).min(n);
                if d < leaves {
                    chunk(d, leaves)
                } else {
                    (d - leaves) % shards
                }
            }
            PartitionHint::FatTree { k } => {
                let k = usize::from(k.max(2));
                let half = k / 2;
                let pod_devices = 2 * half * k; // edges + aggs
                if d < pod_devices {
                    // Edge `e` is in pod `e / half`; agg `a` is in pod
                    // `(a - num_edge) / half`. Keep each pod whole.
                    let pod = if d < half * k {
                        d / half
                    } else {
                        (d - half * k) / half
                    };
                    chunk(pod, k)
                } else {
                    (d - pod_devices) % shards
                }
            }
        })
        .collect()
}

/// Count the inter-switch links whose endpoints land on different shards
/// under `assign` (each cable counted once). The partitioner's quality
/// metric: cut edges are the only cross-shard packet paths.
pub fn cut_edges(topo: &Topology, assign: &[usize]) -> usize {
    let mut cut = 0;
    for (sw, ports) in topo.ports.iter().enumerate() {
        for (port, peer) in ports.iter().enumerate() {
            if let PortPeer::Switch {
                switch: peer_sw,
                port: peer_port,
            } = *peer
            {
                let a = (sw, port);
                let b = (usize::from(peer_sw), usize::from(peer_port));
                if a < b && assign.get(sw) != assign.get(usize::from(peer_sw)) {
                    cut += 1;
                }
            }
        }
    }
    cut
}

/// The partition-independent lookahead for `topo`: the minimum one-way
/// propagation delay over every attached link. Every packet that crosses
/// domains rides a link, so its delay is naturally at least this;
/// control-plane cross-domain traffic is clamped to it by the network's
/// sharded mode.
pub fn lookahead_of(topo: &Topology) -> Duration {
    let mut min_ns = u64::MAX;
    for (sw, ports) in topo.ports.iter().enumerate() {
        for (port, peer) in ports.iter().enumerate() {
            if matches!(peer, PortPeer::Unused) {
                continue;
            }
            if let Some(props) = topo.link_props.get(sw).and_then(|row| row.get(port)) {
                min_ns = min_ns.min(props.prop_ns);
            }
        }
    }
    assert!(
        min_ns != u64::MAX && min_ns > 0,
        "topology has no usable links (or a zero-propagation link): \
         cannot derive a positive lookahead"
    );
    Duration::from_nanos(min_ns)
}

/// Assemble the schema'd `speedlight-profile/v1` artifact from a
/// classification table and a (possibly merged) accounting core. Rows
/// cover every real domain — devices, hosts, control — in dense id
/// order; the external pseudo-domain only keys injections
/// ([`DomainTable::of`] never returns it) and is excluded.
pub(crate) fn profile_of(
    table: &DomainTable,
    core: &obs::profile::DomainProfiler,
    pipeline: Option<obs::profile::PipelineSection>,
) -> obs::profile::Profile {
    assert_eq!(
        core.domains(),
        table.count() as usize,
        "profiler sized for a different domain table"
    );
    let domains = (0..table.external())
        .map(|d| obs::profile::DomainRow {
            id: d,
            kind: if d < table.num_switches {
                "device"
            } else if d < table.num_switches + table.num_hosts {
                "host"
            } else {
                "control"
            },
            events: core.events_of(d as usize),
            msgs_out: core.msgs_out_of(d as usize),
            msgs_in: core.msgs_in_of(d as usize),
            stall_ns: core.stall_ns_of(d as usize),
        })
        .collect();
    obs::profile::Profile {
        lookahead_ns: core.lookahead_ns(),
        windows: core.windows(),
        domains,
        pipeline,
    }
}

/// One shard's world fragment: a full network replica, the domain table,
/// the owner map, and the per-domain emission sequence counters that
/// stamp canonical keys.
struct NetShard {
    net: Network,
    table: DomainTable,
    /// `owners[domain]` → shard index, for every domain in the table.
    owners: Vec<usize>,
    /// This shard's index.
    shard: usize,
    /// `seqs[domain]` → next emission sequence number. Only the owned
    /// domains' slots advance, and they advance identically at any shard
    /// count (a domain's event stream is packing-independent).
    seqs: Vec<u64>,
    /// Trampoline scheduler handed to `Network::handle`; parked at the
    /// current event's time and drained after each dispatch.
    sched: Scheduler<NetEvent>,
}

impl NetShard {
    fn owner_of(&self, domain: u32) -> usize {
        let Some(&owner) = self.owners.get(domain as usize) else {
            panic!("domain {domain} has no owner entry");
        };
        owner
    }
}

impl ShardWorld for NetShard {
    type Event = NetEvent;

    fn dispatch(&mut self, now: Instant, event: NetEvent, out: &mut Vec<Emit<NetEvent>>) {
        let domain = self.table.of(&event);
        if self.owner_of(domain) != self.shard {
            // The only event delivered off-owner is the link-state shadow:
            // both endpoints of a flapped cable must see the outage, so
            // the testbed mirrors `LinkSet` to the peer's shard and the
            // replica applies the state change without the owner-side
            // metrics/trace.
            if let NetEvent::LinkSet { sw, port, up } = event {
                self.net.apply_link_shadow(sw, port, up);
                return;
            }
            panic!(
                "shard {} received an event for domain {} owned by shard {}",
                self.shard,
                domain,
                self.owner_of(domain)
            );
        }
        self.net.set_current_domain(domain);
        self.net.profile_observe(domain, now.as_nanos());
        self.sched.repark(now);
        World::handle(&mut self.net, now, event, &mut self.sched);
        let Some(seq) = self.seqs.get_mut(domain as usize) else {
            panic!("domain {domain} has no sequence counter");
        };
        while let Some((time, ev)) = self.sched.drain_next() {
            let key = pack_key(domain, *seq);
            *seq += 1;
            let dest_domain = self.table.of(&ev);
            self.net.profile_msg(domain, dest_domain);
            let Some(&dest) = self.owners.get(dest_domain as usize) else {
                panic!("domain {dest_domain} has no owner entry");
            };
            out.push(Emit {
                dest,
                time,
                key,
                event: ev,
            });
        }
    }

    fn window_close(&mut self, horizon: Instant) {
        // Fires on every shard at the end of every window (even eventless
        // ones), so each replica's window count — and therefore the
        // merged profile — is shard-count-invariant.
        self.net.profile_window_close(horizon.as_nanos());
    }
}

/// A sharded deployment of the fig-8 testbed: the same construction
/// surface as [`crate::testbed::Testbed`], executed by N shard workers
/// with shard-count-independent merged outputs.
pub struct ShardedTestbed {
    sim: ShardedSim<NetShard>,
    table: DomainTable,
    owners: Vec<usize>,
    topo: Topology,
    /// Next external-injection sequence number (one per *logical*
    /// injection: a mirrored `LinkSet` reuses its original's key, so the
    /// key stream never depends on how endpoints are packed).
    ext_seq: u64,
    _seed_echo: SeedEcho,
}

impl ShardedTestbed {
    /// Build a sharded testbed over `topo` with `shards` shards and start
    /// the driver loops on the control domain. `shards` is a simulation
    /// *configuration* (it selects the partition); worker threads are
    /// chosen separately from `SPEEDLIGHT_JOBS` at run time.
    pub fn new(
        topo: Topology,
        cfg: TestbedConfig,
        hint: PartitionHint,
        shards: usize,
    ) -> ShardedTestbed {
        let shards = shards.max(1);
        let table = DomainTable::new(&topo);
        let lookahead = lookahead_of(&topo);
        let assign = partition_devices(&topo, hint, shards);

        let mut owners = vec![0usize; table.count() as usize];
        owners.iter_mut().zip(&assign).for_each(|(o, &s)| *o = s);
        for (h, &(sw, _)) in topo.hosts.iter().enumerate() {
            // Hosts are co-located with their attached device.
            let Some(&dev_shard) = assign.get(usize::from(sw)) else {
                panic!("host {h} attached to unknown switch {sw}");
            };
            owners[table.num_switches as usize + h] = dev_shard;
        }
        // Control is pinned to shard 0; the external pseudo-domain only
        // keys injections and owns nothing.
        owners[table.control() as usize] = 0;
        owners[table.external() as usize] = 0;

        let worlds: Vec<NetShard> = (0..shards)
            .map(|shard| {
                let mut net = Network::new(
                    topo.clone(),
                    cfg.snapshot.clone(),
                    cfg.lb,
                    cfg.latency.clone(),
                    cfg.driver.clone(),
                    cfg.queue_capacity_bytes,
                    cfg.seed,
                );
                if cfg.reference_observer {
                    net.use_reference_observer();
                }
                net.enable_sharded_mode(lookahead, table.count());
                NetShard {
                    net,
                    table,
                    owners: owners.clone(),
                    shard,
                    seqs: vec![0; table.count() as usize],
                    sched: Scheduler::parked_at(Instant::ZERO),
                }
            })
            .collect();
        let sim = ShardedSim::new(worlds, lookahead);

        let mut tb = ShardedTestbed {
            sim,
            table,
            owners,
            topo,
            ext_seq: 0,
            _seed_echo: SeedEcho::new("fabric::shard::testbed", cfg.seed),
        };
        tb.inject(Instant::ZERO, NetEvent::ObserverTick);
        if cfg.driver.keepalive_period.is_some() {
            tb.inject(Instant::ZERO, NetEvent::KeepaliveTick);
        }
        if let Some(first) = cfg.driver.snapshot_period {
            tb.inject(Instant::ZERO + first, NetEvent::ScheduleSnapshot);
        }
        if let Some(first) = cfg.driver.poll_period {
            tb.inject(Instant::ZERO + first, NetEvent::PollSweep);
        }
        tb
    }

    /// Number of shards (the simulation configuration, not thread count).
    pub fn num_shards(&self) -> usize {
        self.sim.num_shards()
    }

    /// The conservative lookahead in force.
    pub fn lookahead(&self) -> Duration {
        lookahead_of(&self.topo)
    }

    fn ext_key(&mut self) -> u64 {
        let key = pack_key(self.table.external(), self.ext_seq);
        self.ext_seq += 1;
        key
    }

    fn owner(&self, domain: u32) -> usize {
        let Some(&owner) = self.owners.get(domain as usize) else {
            panic!("domain {domain} has no owner entry");
        };
        owner
    }

    /// Inject one external event, routed to its domain's owner and keyed
    /// from the external pseudo-domain's counter. The counter advances
    /// once per call, independent of the partition, so injection keys —
    /// and therefore queue order — are shard-count-invariant.
    fn inject(&mut self, at: Instant, ev: NetEvent) {
        let shard = self.owner(self.table.of(&ev));
        let key = self.ext_key();
        self.sim.inject(shard, at, key, ev);
    }

    /// Inject a link-state change: the owning shard gets the full handler
    /// (state + metrics + trace); if the cable's peer endpoint lives on a
    /// different shard, that shard gets a state-only mirror under the
    /// *same* key so both replicas see the flip at the same point in the
    /// event order.
    fn inject_link(&mut self, at: Instant, sw: u16, port: u16, up: bool) {
        let owner = self.owner(self.table.device(sw));
        let key = self.ext_key();
        self.sim
            .inject(owner, at, key, NetEvent::LinkSet { sw, port, up });
        if let Some(PortPeer::Switch { switch: peer, .. }) = self
            .topo
            .ports
            .get(usize::from(sw))
            .and_then(|ports| ports.get(usize::from(port)))
            .copied()
        {
            let peer_owner = self.owner(self.table.device(peer));
            if peer_owner != owner {
                self.sim
                    .inject(peer_owner, at, key, NetEvent::LinkSet { sw, port, up });
            }
        }
    }

    /// Attach a traffic source to `host` (installed on the owning
    /// replica) and schedule its first wake.
    pub fn set_source(&mut self, host: u32, start: Instant, source: Box<dyn Source>) {
        let owner = self.owner(self.table.host(host));
        self.sim.world_mut(owner).net.set_source(host, source);
        self.inject(start, NetEvent::HostWake { host });
    }

    /// Ask the observer to initiate one snapshot at `at`.
    pub fn snapshot_at(&mut self, at: Instant) {
        self.inject(at, NetEvent::ScheduleSnapshot);
    }

    /// Start one polling sweep at `at`.
    pub fn poll_at(&mut self, at: Instant) {
        self.inject(at, NetEvent::PollSweep);
    }

    /// Kill device `dev`'s snapshot participation at `at`.
    pub fn fail_device_at(&mut self, at: Instant, dev: u16) {
        self.inject(at, NetEvent::DeviceFault { sw: dev });
    }

    /// Flap the link at (`dev`, `port`): down at `at`, back up after
    /// `down_for`. Both endpoint replicas observe the change.
    pub fn flap_link_at(&mut self, at: Instant, dev: u16, port: u16, down_for: Duration) {
        self.inject_link(at, dev, port, false);
        self.inject_link(at + down_for, dev, port, true);
    }

    /// Crash device `dev`'s control plane at `at`; it restarts after
    /// `down_for` and resyncs via the control domain.
    pub fn crash_cp_at(&mut self, at: Instant, dev: u16, down_for: Duration) {
        self.inject(at, NetEvent::CpCrash { sw: dev });
        self.inject(at + down_for, NetEvent::CpRecover { sw: dev });
    }

    /// Install a notification-export fault on device `dev` (owner
    /// replica only — the fault intercepts the device's own exports).
    pub fn set_notif_fault(&mut self, dev: u16, cfg: NotifFaultConfig) {
        let owner = self.owner(self.table.device(dev));
        self.sim.world_mut(owner).net.set_notif_fault(dev, cfg);
    }

    /// Degrade the PTP time plane for every subsequent initiation
    /// fan-out. Applied to every replica: the offsets are consulted on
    /// the control domain, but the configuration is global static state.
    pub fn set_ptp_degradation(&mut self, deg: timesync::PtpDegradation) {
        for i in 0..self.sim.num_shards() {
            self.sim.world_mut(i).net.set_ptp_degradation(deg);
        }
    }

    /// Enable the per-delivery replay log on every replica.
    pub fn enable_delivery_log(&mut self) {
        for i in 0..self.sim.num_shards() {
            self.sim.world_mut(i).net.enable_delivery_log();
        }
    }

    /// Enable JSONL tracing on every replica. Shard 0 stamps the
    /// `trace.meta` header; the other shards install a bare sink so the
    /// merged stream has exactly one header.
    pub fn enable_trace(&mut self) {
        let t = self.sim.now().as_nanos();
        self.sim
            .world_mut(0)
            .net
            .set_trace(obs::sinks::TraceSink::jsonl(), t);
        for i in 1..self.sim.num_shards() {
            self.sim.world_mut(i).net.instr.trace = obs::sinks::TraceSink::jsonl();
        }
    }

    /// Apply the `SPEEDLIGHT_OBS` environment selection; a no-op when
    /// unset or `off` (mirrors `Testbed::apply_obs_env`, jsonl only — a
    /// ring sink's eviction would break the deterministic merge).
    pub fn apply_obs_env(&mut self) {
        if matches!(
            obs::sinks::TraceSink::from_env(),
            obs::sinks::TraceSink::Jsonl(_)
        ) {
            self.enable_trace();
        }
    }

    /// Run the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: Instant) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.sim.now()
    }

    /// Total events dispatched across all shards. Includes link-shadow
    /// mirror deliveries, so the count may differ (slightly) across shard
    /// counts; it is a throughput measure, not a merged artifact.
    pub fn events_dispatched(&mut self) -> u64 {
        self.sim.events_dispatched()
    }

    /// Pending events across all shards.
    pub fn pending(&mut self) -> u64 {
        self.sim.pending()
    }

    /// Window/message statistics (shard-count-dependent by nature; never
    /// merged into simulation metrics).
    pub fn shard_stats(&self) -> netsim::shard::ShardStats {
        self.sim.stats()
    }

    /// The network replica owned by `shard` (inspection and tests).
    pub fn network_mut(&mut self, shard: usize) -> &mut Network {
        &mut self.sim.world_mut(shard).net
    }

    /// Completed snapshots. Observer state lives on the control domain,
    /// so shard 0's replica holds the only populated record list.
    pub fn snapshots(&mut self) -> &[SnapshotRecord] {
        &self.sim.world_mut(0).net.instr.snapshots
    }

    /// Packets delivered per host: elementwise sum over replicas (each
    /// host's slot is only ever touched by its owner).
    pub fn host_rx(&mut self) -> Vec<u64> {
        let mut merged: Vec<u64> = Vec::new();
        for i in 0..self.sim.num_shards() {
            let rx = &self.sim.world_mut(i).net.instr.host_rx;
            if merged.len() < rx.len() {
                merged.resize(rx.len(), 0);
            }
            for (m, v) in merged.iter_mut().zip(rx) {
                *m += v;
            }
        }
        merged
    }

    /// Fig. 9's synchronization metric over the merged per-epoch sync
    /// map: min of earliest, max of latest, sum of counts — the same
    /// fold the per-notification updates apply, so any grouping of
    /// devices onto shards reconstructs the same map.
    pub fn sync_spreads(&mut self, min_units: u64) -> Vec<(Epoch, Duration)> {
        let mut merged: std::collections::BTreeMap<Epoch, (Instant, Instant, u64)> =
            std::collections::BTreeMap::new();
        for i in 0..self.sim.num_shards() {
            for (&epoch, &(lo, hi, n)) in &self.sim.world_mut(i).net.instr.sync {
                let e = merged.entry(epoch).or_insert((lo, hi, 0));
                e.0 = e.0.min(lo);
                e.1 = e.1.max(hi);
                e.2 += n;
            }
        }
        merged
            .iter()
            .filter(|(_, (_, _, n))| *n >= min_units)
            .map(|(&e, &(lo, hi, _))| (e, hi.saturating_since(lo)))
            .collect()
    }

    /// Polling sweeps, merged: per sweep, the union of every shard's
    /// samples in `(read_time, unit)` order (a canonical order no serial
    /// interleaving is needed for).
    pub fn polls(&mut self) -> Vec<PollSweepRecord> {
        let mut sweeps = 0;
        for i in 0..self.sim.num_shards() {
            sweeps = sweeps.max(self.sim.world_mut(i).net.instr.polls.len());
        }
        let mut merged = vec![PollSweepRecord::default(); sweeps];
        for i in 0..self.sim.num_shards() {
            for (sweep, rec) in self.sim.world_mut(i).net.instr.polls.iter().enumerate() {
                if let Some(m) = merged.get_mut(sweep) {
                    m.samples.extend(rec.samples.iter().copied());
                }
            }
        }
        for rec in &mut merged {
            rec.samples.sort_by_key(|&(unit, _, at)| (at, unit));
        }
        merged
    }

    /// The merged per-delivery replay log, if enabled: per-shard logs
    /// grouped by receiving device (stable, so each device's processing
    /// order — which is shard-count-invariant — is preserved), devices in
    /// id order. Returns `None` when the log was never enabled.
    pub fn delivery_log(&mut self) -> Option<Vec<DeliveryEvent>> {
        let mut merged: Vec<DeliveryEvent> = Vec::new();
        let mut enabled = false;
        for i in 0..self.sim.num_shards() {
            if let Some(log) = &self.sim.world_mut(i).net.instr.delivery_log {
                enabled = true;
                merged.extend(log.iter().copied());
            }
        }
        if !enabled {
            return None;
        }
        merged.sort_by_key(|d| d.unit.device);
        Some(merged)
    }

    /// Drain and merge every replica's trace buffer into the canonical
    /// stream (header first, then `(time, content)` order; see
    /// [`obs::sinks::merge_shard_lines`]).
    pub fn take_trace_lines(&mut self) -> Vec<String> {
        let per_shard: Vec<Vec<String>> = (0..self.sim.num_shards())
            .map(|i| self.sim.world_mut(i).net.take_trace_lines())
            .collect();
        obs::sinks::merge_shard_lines(per_shard)
    }

    /// Take the merged metrics registry: each replica's folded registry
    /// combined under [`obs::metrics::Metrics::merge_from`] (counter and
    /// histogram sums, `_max` gauges as maxima). Inert replicas fold
    /// zeros, so the merged totals equal a single-process run's.
    pub fn take_metrics(&mut self) -> obs::metrics::Metrics {
        let mut merged = self.sim.world_mut(0).net.take_metrics();
        for i in 1..self.sim.num_shards() {
            merged.merge_from(&self.sim.world_mut(i).net.take_metrics());
        }
        merged
    }

    /// Export the merged metrics registry as JSON.
    pub fn export_metrics(&mut self) -> String {
        self.take_metrics().to_json()
    }

    /// Enable the deterministic profiler on every replica. Call before
    /// the first `run_until` — the accounting must cover the whole run.
    pub fn enable_profiling(&mut self) {
        for i in 0..self.sim.num_shards() {
            self.sim.world_mut(i).net.enable_profiler();
        }
    }

    /// Take the merged profile: per-replica accounting cores summed
    /// domainwise. Each domain's counters live on exactly one replica
    /// (the owner's — inert replicas hold zeros), and every replica
    /// counts every window (the barrier closes windows on all shards),
    /// so the merge asserts window-count agreement and sums the rest.
    /// The observer-pipeline section comes from shard 0, where the
    /// control domain is pinned.
    ///
    /// # Panics
    /// If profiling was never enabled.
    pub fn take_profile(&mut self) -> obs::profile::Profile {
        let Some(mut merged) = self.sim.world_mut(0).net.take_net_profiler() else {
            panic!("take_profile called but profiling was never enabled");
        };
        for i in 1..self.sim.num_shards() {
            let Some(other) = self.sim.world_mut(i).net.take_net_profiler() else {
                panic!("shard {i} was built without profiling");
            };
            merged.core.merge_from(&other.core);
        }
        let pipeline = self
            .sim
            .world_mut(0)
            .net
            .observer
            .pipeline_stats()
            .map(|s| s.profile_section());
        profile_of(&merged.table, &merged.core, pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switchmod::SnapshotConfig;
    use crate::traffic::Emission;
    use netsim::rng::SimRng;
    use telemetry::MetricKind;
    use wire::FlowKey;

    struct Cbr {
        src: u32,
        dst: u32,
        rate_pps: u64,
    }

    impl Source for Cbr {
        fn on_wake(
            &mut self,
            now: Instant,
            _rng: &mut SimRng,
            out: &mut Vec<Emission>,
        ) -> Option<Instant> {
            out.push(Emission {
                flow: FlowKey::tcp(self.src, self.dst, 10_000, 80),
                bytes: 1_000,
            });
            Some(now + Duration::from_nanos(1_000_000_000 / self.rate_pps))
        }
    }

    fn sharded_leaf_spine(shards: usize, channel_state: bool) -> ShardedTestbed {
        let topo = Topology::leaf_spine(2, 2, 3);
        let snap = SnapshotConfig {
            modulus: 16,
            channel_state,
            ingress_metric: MetricKind::PacketCount,
            egress_metric: MetricKind::PacketCount,
        };
        let mut tb = ShardedTestbed::new(
            topo,
            TestbedConfig::new(snap),
            PartitionHint::LeafSpine { leaves: 2 },
            shards,
        );
        for h in 0..3u32 {
            tb.set_source(
                h,
                Instant::ZERO,
                Box::new(Cbr {
                    src: h,
                    dst: h + 3,
                    rate_pps: 50_000,
                }),
            );
            tb.set_source(
                h + 3,
                Instant::ZERO,
                Box::new(Cbr {
                    src: h + 3,
                    dst: h,
                    rate_pps: 50_000,
                }),
            );
        }
        tb
    }

    /// Everything a run produces that the equivalence contract covers,
    /// rendered to comparable bytes.
    fn run_artifacts(shards: usize, channel_state: bool) -> (String, String, String) {
        let mut tb = sharded_leaf_spine(shards, channel_state);
        tb.enable_trace();
        tb.enable_delivery_log();
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        let snaps = format!("{:?}", tb.snapshots());
        let misc = format!(
            "rx={:?} sync={:?} log={:?}",
            tb.host_rx(),
            tb.sync_spreads(1),
            tb.delivery_log().map(|l| l.len()),
        );
        let trace = tb.take_trace_lines().join("\n");
        (snaps, misc, trace)
    }

    #[test]
    fn partition_assigns_every_device_in_range() {
        for (topo, hint) in [
            (
                Topology::leaf_spine(2, 2, 3),
                PartitionHint::LeafSpine { leaves: 2 },
            ),
            (Topology::fat_tree(4), PartitionHint::FatTree { k: 4 }),
            (Topology::line(5), PartitionHint::Generic),
        ] {
            for shards in [1, 2, 3, 4, 8] {
                let assign = partition_devices(&topo, hint, shards);
                assert_eq!(assign.len(), usize::from(topo.num_switches()));
                assert!(assign.iter().all(|&s| s < shards));
                if shards == 1 {
                    assert_eq!(cut_edges(&topo, &assign), 0);
                }
            }
        }
    }

    #[test]
    fn fat_tree_partition_keeps_pods_whole() {
        let topo = Topology::fat_tree(4);
        let assign = partition_devices(&topo, PartitionHint::FatTree { k: 4 }, 4);
        // k=4: edges 0..8 (2 per pod), aggs 8..16 (2 per pod).
        for pod in 0..4usize {
            let edge0 = assign[pod * 2];
            assert_eq!(assign[pod * 2 + 1], edge0, "pod {pod} edge split");
            assert_eq!(assign[8 + pod * 2], edge0, "pod {pod} agg split");
            assert_eq!(assign[8 + pod * 2 + 1], edge0, "pod {pod} agg split");
        }
        // Pod-internal links (edge<->agg) are never cut; only agg<->core.
        let cut = cut_edges(&topo, &assign);
        assert!(cut > 0 && cut <= 16, "agg-core cut edges only, got {cut}");
    }

    #[test]
    fn lookahead_is_min_link_propagation() {
        assert_eq!(
            lookahead_of(&Topology::leaf_spine(2, 2, 3)),
            Duration::from_nanos(300)
        );
        assert_eq!(
            lookahead_of(&Topology::single_switch(2)),
            Duration::from_nanos(500)
        );
    }

    #[test]
    fn sharded_run_completes_snapshots() {
        let mut tb = sharded_leaf_spine(2, false);
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        assert_eq!(tb.snapshots().len(), 1, "snapshot must complete");
        assert!(!tb.snapshots()[0].forced);
        assert!(tb.snapshots()[0].snapshot.fully_consistent());
        let rx: u64 = tb.host_rx().iter().sum();
        assert!(rx > 2_000, "expected steady delivery, got {rx}");
    }

    #[test]
    fn artifacts_are_identical_at_any_shard_count() {
        let reference = run_artifacts(1, true);
        for shards in [2, 3, 4] {
            let got = run_artifacts(shards, true);
            assert_eq!(got.0, reference.0, "snapshots diverge at {shards} shards");
            assert_eq!(
                got.1, reference.1,
                "merged outputs diverge at {shards} shards"
            );
            assert_eq!(got.2, reference.2, "traces diverge at {shards} shards");
        }
    }

    #[test]
    fn profiles_are_identical_at_any_shard_count() {
        let render = |shards: usize| {
            let mut tb = sharded_leaf_spine(shards, true);
            tb.enable_profiling();
            tb.snapshot_at(Instant::from_nanos(2_000_000));
            tb.run_until(Instant::from_nanos(50_000_000));
            tb.take_profile().to_json()
        };
        let reference = render(1);
        assert!(reference.contains("\"schema\": \"speedlight-profile/v1\""));
        assert!(reference.contains("\"kind\":\"device\""));
        assert!(reference.contains("\"kind\":\"host\""));
        assert!(reference.contains("\"kind\":\"control\""));
        assert!(
            reference.contains("\"pipeline\": {"),
            "staged pipeline section missing"
        );
        for shards in [2, 3, 4] {
            assert_eq!(
                render(shards),
                reference,
                "profile diverges at {shards} shards"
            );
        }
    }

    #[test]
    fn profiling_does_not_change_sharded_artifacts() {
        // Same scenario as `run_artifacts`, but with the profiler on:
        // the dispatch hooks are pure accounting, so every merged
        // artifact must be byte-identical to the unprofiled run.
        let reference = run_artifacts(2, true);
        let mut tb = sharded_leaf_spine(2, true);
        tb.enable_profiling();
        tb.enable_trace();
        tb.enable_delivery_log();
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        let snaps = format!("{:?}", tb.snapshots());
        let misc = format!(
            "rx={:?} sync={:?} log={:?}",
            tb.host_rx(),
            tb.sync_spreads(1),
            tb.delivery_log().map(|l| l.len()),
        );
        let trace = tb.take_trace_lines().join("\n");
        assert_eq!(snaps, reference.0, "profiling changed snapshots");
        assert_eq!(misc, reference.1, "profiling changed merged outputs");
        assert_eq!(trace, reference.2, "profiling changed the trace");
        let profile = tb.take_profile();
        assert!(profile.windows > 0, "no windows accounted");
        assert!(
            profile.domains.iter().any(|d| d.events > 0),
            "no events accounted"
        );
    }

    #[test]
    fn merged_metrics_are_identical_at_any_shard_count() {
        let render = |shards: usize| {
            let mut tb = sharded_leaf_spine(shards, false);
            tb.snapshot_at(Instant::from_nanos(2_000_000));
            tb.run_until(Instant::from_nanos(50_000_000));
            tb.export_metrics()
        };
        let reference = render(1);
        assert!(reference.contains("\"snapshots.completed\": 1"));
        for shards in [2, 4] {
            assert_eq!(
                render(shards),
                reference,
                "metrics diverge at {shards} shards"
            );
        }
    }
}
