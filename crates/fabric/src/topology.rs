//! Network topology: switches, hosts, links, and routing.
//!
//! Ports are numbered per switch. A port is connected either to a host, to
//! a peer switch port, or left unused. Routing is all-shortest-paths: each
//! switch's FIB maps a destination host to the set of equal-cost next-hop
//! ports (the ECMP group handed to the load balancer).

use std::collections::VecDeque;

/// What a switch port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPeer {
    /// Nothing attached.
    Unused,
    /// A host NIC.
    Host(u32),
    /// Port `port` of switch `switch`.
    Switch {
        /// Peer switch ID.
        switch: u16,
        /// Peer port number.
        port: u16,
    },
}

/// Per-link physical properties.
#[derive(Debug, Clone, Copy)]
pub struct LinkProps {
    /// Bandwidth in gigabits per second.
    pub gbps: f64,
    /// One-way propagation delay in nanoseconds.
    pub prop_ns: u64,
}

impl LinkProps {
    /// The testbed's host links: 25 GbE, ~500 ns of cable+PHY.
    pub fn host_25g() -> LinkProps {
        LinkProps {
            gbps: 25.0,
            prop_ns: 500,
        }
    }

    /// The testbed's inter-switch links: 100 GbE passive copper.
    pub fn fabric_100g() -> LinkProps {
        LinkProps {
            gbps: 100.0,
            prop_ns: 300,
        }
    }

    /// Serialization time of `bytes` on this link, nanoseconds.
    pub fn serialize_ns(&self, bytes: u32) -> u64 {
        ((f64::from(bytes) * 8.0) / self.gbps).ceil() as u64
    }
}

/// Which load balancer the switches run (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbKind {
    /// Per-flow ECMP.
    Ecmp,
    /// Flowlet switching with the given gap in microseconds.
    Flowlet {
        /// Inactivity gap that splits flowlets, microseconds.
        gap_us: u64,
    },
}

/// A whole network: switch port maps, link properties, host attachments.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `ports[s][p]` = what switch `s` port `p` connects to.
    pub ports: Vec<Vec<PortPeer>>,
    /// `link_props[s][p]` = physical properties of that port's link.
    pub link_props: Vec<Vec<LinkProps>>,
    /// Host attachment points: `hosts[h] = (switch, port)`.
    pub hosts: Vec<(u16, u16)>,
}

impl Topology {
    /// A topology of `switches` switches with `ports` ports each, all
    /// unused; wire it up with [`Topology::connect`] / [`Topology::attach_host`].
    pub fn empty(switches: u16, ports: u16) -> Topology {
        Topology {
            ports: vec![vec![PortPeer::Unused; usize::from(ports)]; usize::from(switches)],
            link_props: vec![
                vec![LinkProps::fabric_100g(); usize::from(ports)];
                usize::from(switches)
            ],
            hosts: Vec::new(),
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u16 {
        self.ports.len() as u16
    }

    /// Number of ports on switch `s`.
    pub fn num_ports(&self, s: u16) -> u16 {
        self.ports[usize::from(s)].len() as u16
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// Wire switch `a` port `pa` to switch `b` port `pb` (both directions).
    pub fn connect(&mut self, a: u16, pa: u16, b: u16, pb: u16, props: LinkProps) {
        assert_eq!(
            self.ports[usize::from(a)][usize::from(pa)],
            PortPeer::Unused,
            "port {a}:{pa} already wired"
        );
        assert_eq!(
            self.ports[usize::from(b)][usize::from(pb)],
            PortPeer::Unused,
            "port {b}:{pb} already wired"
        );
        self.ports[usize::from(a)][usize::from(pa)] = PortPeer::Switch {
            switch: b,
            port: pb,
        };
        self.ports[usize::from(b)][usize::from(pb)] = PortPeer::Switch {
            switch: a,
            port: pa,
        };
        self.link_props[usize::from(a)][usize::from(pa)] = props;
        self.link_props[usize::from(b)][usize::from(pb)] = props;
    }

    /// Attach a new host to switch `s` port `p`; returns the host ID.
    pub fn attach_host(&mut self, s: u16, p: u16, props: LinkProps) -> u32 {
        assert_eq!(
            self.ports[usize::from(s)][usize::from(p)],
            PortPeer::Unused,
            "port {s}:{p} already wired"
        );
        let id = self.hosts.len() as u32;
        self.ports[usize::from(s)][usize::from(p)] = PortPeer::Host(id);
        self.link_props[usize::from(s)][usize::from(p)] = props;
        self.hosts.push((s, p));
        id
    }

    /// The paper's testbed (Fig. 8): a leaf-spine with `leaves` leaf
    /// switches, `spines` spine switches, and `hosts_per_leaf` hosts on
    /// each leaf. Port layout per leaf: ports `0..spines` are uplinks
    /// (port `i` → spine `i`), ports `spines..spines+hosts_per_leaf` are
    /// host-facing. Spine port `j` connects to leaf `j`.
    pub fn leaf_spine(leaves: u16, spines: u16, hosts_per_leaf: u16) -> Topology {
        let leaf_ports = spines + hosts_per_leaf;
        let ports = leaf_ports.max(leaves);
        let mut t = Topology::empty(leaves + spines, ports);
        for leaf in 0..leaves {
            for spine in 0..spines {
                t.connect(leaf, spine, leaves + spine, leaf, LinkProps::fabric_100g());
            }
            for h in 0..hosts_per_leaf {
                t.attach_host(leaf, spines + h, LinkProps::host_25g());
            }
        }
        t
    }

    /// A single switch with `host_count` hosts on ports `0..host_count`.
    pub fn single_switch(host_count: u16) -> Topology {
        let mut t = Topology::empty(1, host_count);
        for p in 0..host_count {
            t.attach_host(0, p, LinkProps::host_25g());
        }
        t
    }

    /// A k-ary fat-tree (k even): `k` pods of `k/2` edge + `k/2` aggregation
    /// switches, `(k/2)^2` core switches, and `k/2` hosts per edge switch —
    /// the canonical scale-out topology for partial-deployment and routing
    /// studies beyond the paper's 2×2 testbed.
    ///
    /// Port layout: edge/aggregation switches use ports `0..k/2` for
    /// uplinks and `k/2..k` for downlinks; core switch `c` connects pod
    /// `p` on port `p`.
    pub fn fat_tree(k: u16) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        let half = k / 2;
        let edges_per_pod = half;
        let aggs_per_pod = half;
        let num_edge = k * edges_per_pod;
        let num_agg = k * aggs_per_pod;
        let num_core = half * half;
        // IDs: edges [0, num_edge), aggs [num_edge, num_edge+num_agg),
        // cores after that.
        let agg0 = num_edge;
        let core0 = num_edge + num_agg;
        let ports = k.max(half + half);
        let mut t = Topology::empty(num_edge + num_agg + num_core, ports);
        for pod in 0..k {
            for e in 0..edges_per_pod {
                let edge = pod * edges_per_pod + e;
                // Uplinks to every aggregation switch in the pod.
                for a in 0..aggs_per_pod {
                    let agg = agg0 + pod * aggs_per_pod + a;
                    t.connect(edge, a, agg, half + e, LinkProps::fabric_100g());
                }
                // Hosts on the downlink ports.
                for h in 0..half {
                    t.attach_host(edge, half + h, LinkProps::host_25g());
                }
            }
            // Aggregation to core: agg `a` of each pod connects to cores
            // [a*half, (a+1)*half) on its uplink ports.
            for a in 0..aggs_per_pod {
                let agg = agg0 + pod * aggs_per_pod + a;
                for c in 0..half {
                    let core = core0 + a * half + c;
                    t.connect(agg, c, core, pod, LinkProps::fabric_100g());
                }
            }
        }
        t
    }

    /// A linear chain of `n` switches, one host at each end.
    /// Switch i port 0 faces "left", port 1 faces "right".
    pub fn line(n: u16) -> Topology {
        assert!(n >= 1);
        let mut t = Topology::empty(n, 2);
        for i in 0..n - 1 {
            t.connect(i, 1, i + 1, 0, LinkProps::fabric_100g());
        }
        t.attach_host(0, 0, LinkProps::host_25g());
        t.attach_host(n - 1, 1, LinkProps::host_25g());
        t
    }

    /// Compute each switch's FIB: destination host → equal-cost next-hop
    /// ports, via BFS over the switch graph from each host's attachment
    /// switch.
    pub fn build_fibs(&self) -> Vec<Fib> {
        let n = usize::from(self.num_switches());
        let num_hosts = self.hosts.len();
        let mut fibs: Vec<Fib> = (0..n)
            .map(|_| Fib {
                routes: vec![Vec::new(); num_hosts],
                version: 0,
            })
            .collect();

        for (host, &(hsw, hport)) in self.hosts.iter().enumerate() {
            // BFS distances to `hsw` over switch-switch links.
            let mut dist = vec![u32::MAX; n];
            dist[usize::from(hsw)] = 0;
            let mut queue = VecDeque::from([hsw]);
            while let Some(s) = queue.pop_front() {
                for peer in &self.ports[usize::from(s)] {
                    if let PortPeer::Switch { switch, .. } = peer {
                        let d = dist[usize::from(s)] + 1;
                        if d < dist[usize::from(*switch)] {
                            dist[usize::from(*switch)] = d;
                            queue.push_back(*switch);
                        }
                    }
                }
            }
            // Next hops: the attachment switch delivers on the host port;
            // everyone else uses every port that decreases the distance.
            for s in 0..n as u16 {
                let entry = if s == hsw {
                    vec![hport]
                } else if dist[usize::from(s)] == u32::MAX {
                    Vec::new()
                } else {
                    let mut ports = Vec::new();
                    for (p, peer) in self.ports[usize::from(s)].iter().enumerate() {
                        if let PortPeer::Switch { switch, .. } = peer {
                            if dist[usize::from(*switch)] + 1 == dist[usize::from(s)] {
                                ports.push(p as u16);
                            }
                        }
                    }
                    ports
                };
                fibs[usize::from(s)].routes[host] = entry;
            }
        }
        fibs
    }
}

/// A switch's forwarding table with a version tag (§10 "Measuring
/// Forwarding State": the version can itself be snapshotted).
///
/// Host IDs are small and dense, so routes live in a host-indexed vector:
/// the per-packet lookup on the forwarding hot path is one bounds check
/// and a slice borrow instead of a tree walk.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    /// `routes[dst]` = equal-cost next-hop ports (empty = unreachable).
    pub routes: Vec<Vec<u16>>,
    /// Version number, bumped on every update.
    pub version: u64,
}

impl Fib {
    /// Next-hop ports for `dst`, empty if unreachable.
    #[inline]
    pub fn next_hops(&self, dst: u32) -> &[u16] {
        self.routes
            .get(dst as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Replace the route for one destination (bumps the version).
    pub fn set_route(&mut self, dst: u32, ports: Vec<u16>) {
        let slot = dst as usize;
        if slot >= self.routes.len() {
            self.routes.resize_with(slot + 1, Vec::new);
        }
        self.routes[slot] = ports;
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_shape_matches_testbed() {
        // The paper's testbed: 2 leaves… actually Fig. 8 shows 2 spines and
        // 2 leaves with hosts under the leaves; our default experiments use
        // 2x2 with 3 hosts per leaf (6 servers).
        let t = Topology::leaf_spine(2, 2, 3);
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.num_hosts(), 6);
        // Leaf 0 uplinks to both spines.
        assert_eq!(t.ports[0][0], PortPeer::Switch { switch: 2, port: 0 });
        assert_eq!(t.ports[0][1], PortPeer::Switch { switch: 3, port: 0 });
        assert_eq!(t.ports[0][2], PortPeer::Host(0));
    }

    #[test]
    fn fib_local_delivery_uses_host_port() {
        let t = Topology::leaf_spine(2, 2, 3);
        let fibs = t.build_fibs();
        // Host 0 is on leaf 0 port 2.
        assert_eq!(fibs[0].next_hops(0), &[2]);
    }

    #[test]
    fn fib_cross_leaf_uses_all_uplinks() {
        let t = Topology::leaf_spine(2, 2, 3);
        let fibs = t.build_fibs();
        // Host 3 lives on leaf 1: from leaf 0 both uplinks are equal cost.
        assert_eq!(fibs[0].next_hops(3), &[0, 1]);
        // From spine 0, the path to host 3 goes to leaf 1 (its port 1).
        assert_eq!(fibs[2].next_hops(3), &[1]);
    }

    #[test]
    fn line_topology_routes_end_to_end() {
        let t = Topology::line(3);
        let fibs = t.build_fibs();
        // Host 1 is at the far right; every switch forwards right.
        assert_eq!(fibs[0].next_hops(1), &[1]);
        assert_eq!(fibs[1].next_hops(1), &[1]);
        assert_eq!(fibs[2].next_hops(1), &[1]);
        // And host 0 leftwards.
        assert_eq!(fibs[2].next_hops(0), &[0]);
        assert_eq!(fibs[0].next_hops(0), &[0]);
    }

    #[test]
    fn serialization_time_scales_with_size_and_speed() {
        let l = LinkProps::host_25g();
        assert_eq!(l.serialize_ns(1_500), (1500.0 * 8.0 / 25.0) as u64);
        let f = LinkProps::fabric_100g();
        assert!(f.serialize_ns(1_500) < l.serialize_ns(1_500));
    }

    #[test]
    fn fib_version_bumps_on_update() {
        let mut fib = Fib::default();
        assert_eq!(fib.version, 0);
        fib.set_route(5, vec![1, 2]);
        assert_eq!(fib.version, 1);
        assert_eq!(fib.next_hops(5), &[1, 2]);
        assert!(fib.next_hops(9).is_empty());
    }

    #[test]
    fn fat_tree_k4_shape_and_routing() {
        let t = Topology::fat_tree(4);
        // k=4: 8 edge + 8 agg + 4 core = 20 switches, 16 hosts.
        assert_eq!(t.num_switches(), 20);
        assert_eq!(t.num_hosts(), 16);
        let fibs = t.build_fibs();
        // Same-edge delivery: host 1 lives on edge 0, port 3.
        assert_eq!(fibs[0].next_hops(1), &[3]);
        // Cross-pod: edge 0 reaches a host in the last pod via both
        // aggregation uplinks (ECMP group of size k/2 = 2).
        let far = t.num_hosts() - 1;
        assert_eq!(fibs[0].next_hops(far).len(), 2);
        // Every host reaches every other host from every edge switch.
        for sw in 0..8u16 {
            for h in 0..t.num_hosts() {
                assert!(
                    !fibs[usize::from(sw)].next_hops(h).is_empty(),
                    "edge {sw} cannot reach host {h}"
                );
            }
        }
        // Aggregation switches see k/2-way ECMP toward remote pods via the
        // core.
        let agg = 8usize;
        assert_eq!(fibs[agg].next_hops(far).len(), 2);
    }

    #[test]
    fn fat_tree_carries_traffic_end_to_end() {
        use crate::switchmod::SnapshotConfig;
        use crate::testbed::{Testbed, TestbedConfig};
        use crate::traffic::{Emission, Source};
        use netsim::rng::SimRng;
        use netsim::time::{Duration, Instant};
        use wire::FlowKey;

        struct Cbr(u32, u32);
        impl Source for Cbr {
            fn on_wake(
                &mut self,
                now: Instant,
                _: &mut SimRng,
                out: &mut Vec<Emission>,
            ) -> Option<Instant> {
                out.push(Emission {
                    flow: FlowKey::tcp(self.0, self.1, 9_000, 80),
                    bytes: 800,
                });
                Some(now + Duration::from_micros(20))
            }
        }

        let topo = Topology::fat_tree(4);
        let hosts = topo.num_hosts();
        let mut tb = Testbed::new(
            topo,
            TestbedConfig::new(SnapshotConfig::packet_count_cs(64)),
        );
        // Cross-pod flows in both directions.
        tb.set_source(0, Instant::ZERO, Box::new(Cbr(0, hosts - 1)));
        tb.set_source(hosts - 1, Instant::ZERO, Box::new(Cbr(hosts - 1, 0)));
        tb.snapshot_at(Instant::ZERO + Duration::from_millis(2));
        tb.run_until(Instant::ZERO + Duration::from_millis(60));
        assert_eq!(tb.network().instr.unroutable_drops, 0);
        let rx: u64 = tb.network().instr.host_rx.iter().sum();
        assert!(rx > 1_000, "fat-tree delivery failed: {rx}");
        // The snapshot completes across all 20 devices.
        assert_eq!(tb.snapshots().len(), 1);
        assert!(!tb.snapshots()[0].forced);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_is_rejected() {
        let mut t = Topology::empty(2, 2);
        t.connect(0, 0, 1, 0, LinkProps::fabric_100g());
        t.connect(0, 0, 1, 1, LinkProps::fabric_100g());
    }

    #[test]
    fn single_switch_attaches_hosts() {
        let t = Topology::single_switch(4);
        assert_eq!(t.num_hosts(), 4);
        let fibs = t.build_fibs();
        for h in 0..4u32 {
            assert_eq!(fibs[0].next_hops(h), &[h as u16]);
        }
    }
}
