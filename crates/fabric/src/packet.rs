//! The simulated packet.
//!
//! Payload bytes are not materialized — only the metadata the data plane
//! acts on: the flow five-tuple (routing + load balancing), the wire size
//! (queueing + serialization), and the snapshot shim header (§5.1). The
//! shim is stored decoded; [`Packet::header_bytes`] exercises the real
//! codec for the wire-format tests.

use wire::{FlowKey, PacketType, SnapshotHeader};

/// Why a packet exists (workload vs. protocol machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketRole {
    /// Application traffic from a host workload.
    Data,
    /// A control-plane snapshot initiation (CPU → ingress → egress → drop).
    Initiation,
    /// A liveness broadcast injected to propagate snapshot IDs (§6).
    Keepalive,
}

/// A packet traversing the fabric.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique ID (debugging / audit logs).
    pub id: u64,
    /// Flow five-tuple.
    pub flow: FlowKey,
    /// Destination host (routing key; `flow.dst` for data traffic).
    pub dst_host: u32,
    /// Wire size in bytes (includes the shim when present).
    pub size: u32,
    /// The snapshot shim header, once a snapshot-enabled device added it.
    pub snapshot: Option<SnapshotHeader>,
    /// Data / initiation / keepalive.
    pub role: PacketRole,
}

impl Packet {
    /// A data packet from a host (no shim yet).
    pub fn data(id: u64, flow: FlowKey, size: u32) -> Packet {
        Packet {
            id,
            flow,
            dst_host: flow.dst,
            size,
            snapshot: None,
            role: PacketRole::Data,
        }
    }

    /// A snapshot initiation for (wrapped) epoch `sid`.
    pub fn initiation(id: u64, sid: u16) -> Packet {
        Packet {
            id,
            flow: FlowKey::tcp(u32::MAX, u32::MAX, 0, 0),
            dst_host: u32::MAX,
            size: 64,
            snapshot: Some(SnapshotHeader::initiation(sid)),
            role: PacketRole::Initiation,
        }
    }

    /// A liveness keepalive broadcast (§6), carrying the sender's sid via
    /// normal egress processing.
    pub fn keepalive(id: u64, dst_host: u32) -> Packet {
        Packet {
            id,
            flow: FlowKey::tcp(u32::MAX - 1, dst_host, 0, 1),
            dst_host,
            size: 64,
            snapshot: None,
            role: PacketRole::Keepalive,
        }
    }

    /// Whether this packet is a snapshot initiation.
    pub fn is_initiation(&self) -> bool {
        self.role == PacketRole::Initiation
    }

    /// Encode the shim header (exercises the codec; the simulator otherwise
    /// keeps it decoded).
    pub fn header_bytes(&self) -> Option<Vec<u8>> {
        self.snapshot.map(|h| h.encode_to_vec())
    }

    /// Whether the packet carries a data-type shim (not initiation).
    pub fn has_data_shim(&self) -> bool {
        matches!(
            self.snapshot,
            Some(SnapshotHeader {
                packet_type: PacketType::Data,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_routes_to_flow_dst() {
        let p = Packet::data(1, FlowKey::tcp(3, 9, 1000, 80), 1500);
        assert_eq!(p.dst_host, 9);
        assert!(p.snapshot.is_none());
        assert!(!p.is_initiation());
        assert!(p.header_bytes().is_none());
    }

    #[test]
    fn initiation_packet_carries_shim() {
        let p = Packet::initiation(2, 7);
        assert!(p.is_initiation());
        let hdr = p.snapshot.unwrap();
        assert_eq!(hdr.packet_type, PacketType::Initiation);
        assert_eq!(hdr.snapshot_id, 7);
        assert!(!p.has_data_shim());
        // Round-trips through the codec.
        let bytes = p.header_bytes().unwrap();
        let decoded = SnapshotHeader::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn shim_classification() {
        let mut p = Packet::data(3, FlowKey::tcp(0, 1, 1, 1), 64);
        assert!(!p.has_data_shim());
        p.snapshot = Some(SnapshotHeader::data(4));
        assert!(p.has_data_shim());
    }
}
