//! The user-facing testbed harness.
//!
//! Wraps a [`Network`] in a [`Simulation`], wires up the periodic driver
//! events (observer maintenance, keepalives, optional periodic snapshots
//! and polling sweeps), and exposes the measurement outputs the experiment
//! binaries consume.

use crate::latency::LatencyModel;
use crate::network::{
    DriverConfig, NetEvent, Network, NotifFaultConfig, PollSweepRecord, SnapshotRecord,
};
use crate::switchmod::SnapshotConfig;
use crate::topology::{LbKind, Topology};
use crate::traffic::Source;
use netsim::rng::SeedEcho;
use netsim::sim::Simulation;
use netsim::time::{Duration, Instant};
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::Epoch;

/// Everything needed to stand a testbed up.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Snapshot protocol configuration.
    pub snapshot: SnapshotConfig,
    /// Load balancer run by every switch.
    pub lb: LbKind,
    /// Latency/capacity models.
    pub latency: LatencyModel,
    /// Observer/driver timing.
    pub driver: DriverConfig,
    /// Egress queue capacity per port, bytes.
    pub queue_capacity_bytes: u64,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
    /// Run the monolithic reference observer instead of the staged
    /// pipeline (differential/equivalence testing).
    pub reference_observer: bool,
}

impl TestbedConfig {
    /// A testbed with the given snapshot configuration and defaults
    /// everywhere else.
    pub fn new(snapshot: SnapshotConfig) -> TestbedConfig {
        TestbedConfig {
            snapshot,
            lb: LbKind::Ecmp,
            latency: LatencyModel::default(),
            driver: DriverConfig::default(),
            queue_capacity_bytes: 300_000, // ~200 MTU packets
            seed: 0xC0FFEE,
            reference_observer: false,
        }
    }
}

/// A ready-to-run simulated deployment.
pub struct Testbed {
    sim: Simulation<Network>,
    /// Echoes the master seed if a test panics while the testbed is alive,
    /// so any failing deterministic run is replayable.
    _seed_echo: SeedEcho,
}

impl Testbed {
    /// Build a testbed over `topo` and start the driver loops.
    pub fn new(topo: Topology, cfg: TestbedConfig) -> Testbed {
        let mut network = Network::new(
            topo,
            cfg.snapshot,
            cfg.lb,
            cfg.latency,
            cfg.driver.clone(),
            cfg.queue_capacity_bytes,
            cfg.seed,
        );
        if cfg.reference_observer {
            network.use_reference_observer();
        }
        let mut sim = Simulation::new(network);
        sim.schedule_at(Instant::ZERO, NetEvent::ObserverTick);
        if cfg.driver.keepalive_period.is_some() {
            sim.schedule_at(Instant::ZERO, NetEvent::KeepaliveTick);
        }
        if let Some(first) = cfg.driver.snapshot_period {
            sim.schedule_after(first, NetEvent::ScheduleSnapshot);
        }
        if let Some(first) = cfg.driver.poll_period {
            sim.schedule_after(first, NetEvent::PollSweep);
        }
        Testbed {
            sim,
            _seed_echo: SeedEcho::new("fabric::testbed", cfg.seed),
        }
    }

    /// Attach a traffic source to `host` and schedule its first wake.
    pub fn set_source(&mut self, host: u32, start: Instant, source: Box<dyn Source>) {
        self.sim.world_mut().set_source(host, source);
        self.sim.schedule_at(start, NetEvent::HostWake { host });
    }

    /// Ask the observer to initiate one snapshot at `at`.
    pub fn snapshot_at(&mut self, at: Instant) {
        self.sim.schedule_at(at, NetEvent::ScheduleSnapshot);
    }

    /// Start one polling sweep at `at`.
    pub fn poll_at(&mut self, at: Instant) {
        self.sim.schedule_at(at, NetEvent::PollSweep);
    }

    /// Run the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: Instant) {
        self.sim.run_until(deadline);
        // Close any profile window left open at the boundary — mirrors
        // the sharded engine's deadline-truncated final window. A no-op
        // when profiling is disabled.
        self.sim.world_mut().profile_run_boundary();
    }

    /// Enable the deterministic profiler (see `obs::profile`). Call
    /// before the first `run_until` so the accounting covers the run.
    pub fn enable_profiling(&mut self) {
        self.sim.world_mut().enable_profiler();
    }

    /// Render and consume the profile.
    ///
    /// # Panics
    /// If profiling was never enabled.
    pub fn take_profile(&mut self) -> obs::profile::Profile {
        self.sim.world_mut().take_profile()
    }

    /// Kill device `dev`'s snapshot participation at `at` (it keeps
    /// forwarding, but stops answering snapshot traffic).
    pub fn fail_device_at(&mut self, at: Instant, dev: u16) {
        self.sim.schedule_at(at, NetEvent::DeviceFault { sw: dev });
    }

    /// Flap the link at (`dev`, `port`): down at `at`, back up after
    /// `down_for`. Both endpoints of the cable are affected.
    pub fn flap_link_at(&mut self, at: Instant, dev: u16, port: u16, down_for: Duration) {
        self.sim.schedule_at(
            at,
            NetEvent::LinkSet {
                sw: dev,
                port,
                up: false,
            },
        );
        self.sim.schedule_at(
            at + down_for,
            NetEvent::LinkSet {
                sw: dev,
                port,
                up: true,
            },
        );
    }

    /// Crash device `dev`'s control plane at `at`; it restarts with
    /// pristine tracking state after `down_for` and resyncs to the latest
    /// issued epoch.
    pub fn crash_cp_at(&mut self, at: Instant, dev: u16, down_for: Duration) {
        self.sim.schedule_at(at, NetEvent::CpCrash { sw: dev });
        self.sim
            .schedule_at(at + down_for, NetEvent::CpRecover { sw: dev });
    }

    /// Install a notification-export fault (drop / duplicate / reorder
    /// every `cfg.every`-th notification) on device `dev`.
    pub fn set_notif_fault(&mut self, dev: u16, cfg: NotifFaultConfig) {
        self.sim.world_mut().set_notif_fault(dev, cfg);
    }

    /// Degrade the PTP time plane for every subsequent initiation fan-out.
    pub fn set_ptp_degradation(&mut self, deg: timesync::PtpDegradation) {
        self.sim.world_mut().set_ptp_degradation(deg);
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.sim.now()
    }

    /// Total events the underlying simulation has dispatched.
    pub fn events_dispatched(&self) -> u64 {
        self.sim.events_dispatched()
    }

    /// Number of pending events in the simulation queue.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// The network (for inspection and advanced setup).
    pub fn network(&self) -> &Network {
        self.sim.world()
    }

    /// Mutable access to the network.
    pub fn network_mut(&mut self) -> &mut Network {
        self.sim.world_mut()
    }

    /// Completed snapshots so far.
    pub fn snapshots(&self) -> &[SnapshotRecord] {
        &self.sim.world().instr.snapshots
    }

    /// Polling sweeps so far.
    pub fn polls(&self) -> &[PollSweepRecord] {
        &self.sim.world().instr.polls
    }

    /// Enable the per-delivery replay log (conformance tests).
    pub fn enable_delivery_log(&mut self) {
        self.sim.world_mut().enable_delivery_log();
    }

    /// The replay log, if enabled.
    pub fn delivery_log(&self) -> Option<&[DeliveryEvent]> {
        self.sim.world().instr.delivery_log.as_deref()
    }

    /// Enable JSONL tracing, stamping the `trace.meta` header at the
    /// current simulated time. Call before the run whose events you want.
    pub fn enable_trace(&mut self) {
        let t = self.sim.now().as_nanos();
        self.sim
            .world_mut()
            .set_trace(obs::sinks::TraceSink::jsonl(), t);
    }

    /// Install an explicit trace sink (ring / jsonl / off).
    pub fn set_trace(&mut self, sink: obs::sinks::TraceSink) {
        let t = self.sim.now().as_nanos();
        self.sim.world_mut().set_trace(sink, t);
    }

    /// Apply the `SPEEDLIGHT_OBS` environment selection (`off`/`ring`/
    /// `jsonl`); a no-op when unset or `off`.
    pub fn apply_obs_env(&mut self) {
        let sink = obs::sinks::TraceSink::from_env();
        if !sink.is_off() {
            self.set_trace(sink);
        }
    }

    /// Buffered trace lines (empty when tracing is off).
    pub fn trace_lines(&self) -> Vec<String> {
        self.sim.world().trace_lines()
    }

    /// Drain the buffered trace lines, leaving the sink active.
    pub fn take_trace_lines(&mut self) -> Vec<String> {
        self.sim.world_mut().take_trace_lines()
    }

    /// Export the metrics registry (plus switch/observer totals) as JSON.
    pub fn export_metrics(&mut self) -> String {
        self.sim.world_mut().export_metrics()
    }

    /// Fig. 9's synchronization metric: for each epoch with at least
    /// `min_units` progress notifications, the spread between the earliest
    /// and latest data-plane timestamp.
    pub fn sync_spreads(&self, min_units: u64) -> Vec<(Epoch, Duration)> {
        self.sim
            .world()
            .instr
            .sync
            .iter()
            .filter(|(_, (_, _, n))| *n >= min_units)
            .map(|(&e, &(lo, hi, _))| (e, hi.saturating_since(lo)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Emission;
    use netsim::rng::SimRng;
    use speedlight_core::observer::UnitOutcome;
    use telemetry::MetricKind;
    use wire::FlowKey;

    /// A steady CBR source: `rate_pps` packets/s of `bytes`-byte packets
    /// to a fixed destination.
    struct Cbr {
        dst: u32,
        src: u32,
        rate_pps: u64,
        bytes: u32,
    }

    impl Source for Cbr {
        fn on_wake(
            &mut self,
            now: Instant,
            _rng: &mut SimRng,
            out: &mut Vec<Emission>,
        ) -> Option<Instant> {
            out.push(Emission {
                flow: FlowKey::tcp(self.src, self.dst, 10_000, 80),
                bytes: self.bytes,
            });
            Some(now + Duration::from_nanos(1_000_000_000 / self.rate_pps))
        }
    }

    fn cbr(src: u32, dst: u32, rate_pps: u64) -> Box<Cbr> {
        Box::new(Cbr {
            dst,
            src,
            rate_pps,
            bytes: 1_000,
        })
    }

    fn leaf_spine_testbed(channel_state: bool) -> Testbed {
        let topo = Topology::leaf_spine(2, 2, 3);
        let snap = if channel_state {
            SnapshotConfig::packet_count_cs(16)
        } else {
            SnapshotConfig {
                modulus: 16,
                channel_state: false,
                ingress_metric: MetricKind::PacketCount,
                egress_metric: MetricKind::PacketCount,
            }
        };
        let mut tb = Testbed::new(topo, TestbedConfig::new(snap));
        // Cross-leaf traffic both ways keeps every uplink busy.
        for h in 0..3u32 {
            tb.set_source(h, Instant::ZERO, cbr(h, h + 3, 50_000));
            tb.set_source(h + 3, Instant::ZERO, cbr(h + 3, h, 50_000));
        }
        tb
    }

    #[test]
    fn traffic_flows_end_to_end() {
        let mut tb = leaf_spine_testbed(false);
        tb.run_until(Instant::from_nanos(10_000_000)); // 10 ms
        let rx: u64 = tb.network().instr.host_rx.iter().sum();
        assert!(rx > 2_000, "expected steady delivery, got {rx}");
        assert_eq!(tb.network().instr.unroutable_drops, 0);
        for sw in &tb.network().switches {
            assert!(sw.stats.ingress_packets > 0, "switch {} idle", sw.id);
        }
    }

    #[test]
    fn snapshot_completes_without_channel_state() {
        let mut tb = leaf_spine_testbed(false);
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        let snaps = tb.snapshots();
        assert_eq!(snaps.len(), 1, "snapshot must complete");
        let rec = &snaps[0];
        assert!(!rec.forced, "no timeout should be needed");
        assert_eq!(rec.snapshot.epoch, 1);
        // 4 switches × (uplinks+hosts ports vary) × 2 directions units.
        assert_eq!(rec.snapshot.units.len(), tb.network().observer_expected());
        assert!(rec.snapshot.fully_consistent());
    }

    #[test]
    fn snapshot_completes_with_channel_state() {
        let mut tb = leaf_spine_testbed(true);
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(100_000_000));
        let snaps = tb.snapshots();
        assert_eq!(
            snaps.len(),
            1,
            "CS snapshot must complete, even if it \
                                    needs keepalives"
        );
        assert!(!snaps[0].forced);
        // Consistent packet-count snapshots: every unit usable.
        assert!(
            snaps[0].snapshot.fully_consistent(),
            "outcomes: {:?}",
            snaps[0]
                .snapshot
                .units
                .values()
                .filter(|o| !matches!(o, UnitOutcome::Value { .. }))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshot_conservation_audit_passes() {
        let mut tb = leaf_spine_testbed(true);
        tb.network_mut().enable_audit();
        for i in 1..=3u64 {
            tb.snapshot_at(Instant::from_nanos(2_000_000 * i));
        }
        tb.run_until(Instant::from_nanos(150_000_000));
        let snaps = tb.snapshots().to_vec();
        assert_eq!(snaps.len(), 3);
        let audit = tb.network().instr.audit.as_ref().unwrap();
        let mut reports = Vec::new();
        for rec in &snaps {
            for (uid, outcome) in &rec.snapshot.units {
                if let UnitOutcome::Value { local, channel } = outcome {
                    reports.push((*uid, rec.snapshot.epoch, *local, Some(*channel)));
                }
            }
        }
        assert!(!reports.is_empty());
        let violations = audit.audit(reports);
        assert!(violations.is_empty(), "violations: {violations:#?}");
    }

    #[test]
    fn sync_spread_is_recorded_and_small() {
        let mut tb = leaf_spine_testbed(false);
        tb.snapshot_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        let spreads = tb.sync_spreads(8);
        assert!(!spreads.is_empty());
        let (_, spread) = spreads[0];
        // Initiation-driven sync: tens of microseconds (Fig. 9 territory),
        // far below a polling sweep.
        assert!(
            spread < Duration::from_micros(200),
            "sync spread {spread} too large"
        );
    }

    #[test]
    fn polling_sweep_collects_every_unit() {
        let mut tb = leaf_spine_testbed(false);
        tb.poll_at(Instant::from_nanos(2_000_000));
        tb.run_until(Instant::from_nanos(100_000_000));
        let polls = tb.polls();
        assert_eq!(polls.len(), 1);
        assert_eq!(polls[0].samples.len(), tb.network().observer_expected());
        // Polling spread: milliseconds, orders of magnitude above snapshots.
        let lo = polls[0].samples.iter().map(|s| s.2).min().unwrap();
        let hi = polls[0].samples.iter().map(|s| s.2).max().unwrap();
        assert!(hi.saturating_since(lo) > Duration::from_millis(1));
    }

    #[test]
    fn periodic_snapshots_accumulate() {
        let topo = Topology::leaf_spine(2, 2, 3);
        let mut cfg = TestbedConfig::new(SnapshotConfig {
            modulus: 64,
            channel_state: false,
            ingress_metric: MetricKind::PacketCount,
            egress_metric: MetricKind::PacketCount,
        });
        cfg.driver.snapshot_period = Some(Duration::from_millis(5));
        let mut tb = Testbed::new(topo, cfg);
        for h in 0..3u32 {
            tb.set_source(h, Instant::ZERO, cbr(h, h + 3, 50_000));
            tb.set_source(h + 3, Instant::ZERO, cbr(h + 3, h, 50_000));
        }
        tb.run_until(Instant::from_nanos(100_000_000)); // 100 ms
        assert!(
            tb.snapshots().len() >= 15,
            "expected ~19 periodic snapshots, got {}",
            tb.snapshots().len()
        );
        // Monotone epochs, all complete.
        for (i, rec) in tb.snapshots().iter().enumerate() {
            assert!(!rec.forced, "snapshot {i} forced");
        }
    }

    #[test]
    fn packet_counters_are_causally_consistent_totals() {
        // With a packet-count metric and channel state, the network-wide
        // consistent total (local + channel) must equal the omniscient
        // expected total at the cut — spot-checked via audit above; here we
        // sanity-check that totals grow across epochs.
        let mut tb = leaf_spine_testbed(true);
        for i in 1..=2u64 {
            tb.snapshot_at(Instant::from_nanos(3_000_000 * i));
        }
        tb.run_until(Instant::from_nanos(150_000_000));
        let snaps = tb.snapshots();
        assert_eq!(snaps.len(), 2);
        let t1 = snaps[0].snapshot.consistent_total();
        let t2 = snaps[1].snapshot.consistent_total();
        assert!(t1 > 0);
        assert!(t2 > t1, "totals must grow with traffic: {t1} vs {t2}");
    }

    #[test]
    fn trace_captures_snapshot_lifecycle() {
        let mut tb = leaf_spine_testbed(true);
        tb.enable_trace();
        tb.snapshot_at(Instant::from_nanos(3_000_000));
        tb.run_until(Instant::from_nanos(50_000_000));
        assert_eq!(tb.snapshots().len(), 1);

        let lines = tb.trace_lines();
        assert!(!lines.is_empty());
        let parsed: Vec<_> = lines
            .iter()
            .map(|l| obs::json::parse_line(l).expect("trace line parses"))
            .collect();

        // Header first, then nondecreasing sim-time stamps.
        assert_eq!(
            obs::json::field(&parsed[0], "ev").and_then(|v| v.as_str()),
            Some("trace.meta")
        );
        assert_eq!(
            obs::json::field(&parsed[0], "schema").and_then(|v| v.as_str()),
            Some(obs::TRACE_SCHEMA)
        );
        let mut last_t = 0u64;
        for ev in &parsed {
            let t = obs::json::field(ev, "t")
                .and_then(|v| v.as_u64())
                .expect("t field");
            assert!(t >= last_t, "timestamps must be nondecreasing");
            last_t = t;
        }

        // Every lifecycle stage shows up at least once.
        let kinds: std::collections::BTreeSet<&str> = parsed
            .iter()
            .filter_map(|e| obs::json::field(e, "ev").and_then(|v| v.as_str()))
            .collect();
        for kind in [
            "snap.initiate",
            "dev.initiate",
            "unit.initiate",
            "unit.save",
            "marker.seen",
            "notify.export",
            "cp.process",
            "cp.report",
            "report.arrive",
            "obs.finalize",
            "snap.complete",
        ] {
            assert!(kinds.contains(kind), "missing lifecycle event {kind}");
        }

        let metrics = tb.export_metrics();
        assert!(metrics.contains("\"snapshots.initiated\": 1"));
        assert!(metrics.contains("\"snapshots.completed\": 1"));
        assert!(metrics.contains("snapshot.completion_latency_ns"));
        assert!(metrics.contains("cp.queue_depth"));
    }
}
