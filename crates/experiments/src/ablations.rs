//! Design ablations beyond the paper's evaluation.
//!
//! Three knobs DESIGN.md calls out:
//!
//! 1. **Snapshot-ID modulus** — smaller register arrays save SRAM but cap
//!    the outstanding-snapshot window (no-lapping); this quantifies the
//!    trade-off using the resource model.
//! 2. **Channel state on/off** — the notification volume and completion
//!    latency cost of the richer variant, measured on the testbed.
//! 3. **Keepalive injection on/off** — whether channel-state snapshots
//!    still complete (and how fast) when traffic alone must propagate IDs.

use crate::common::{render_table, standard_testbed, testbed_topology};
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::topology::LbKind;
use netsim::dist::Dist;
use netsim::time::{Duration, Instant};
use pipeline_model::{allocate, speedlight_pipeline, Variant};
use telemetry::MetricKind;
use workloads::PoissonSource;

/// Modulus sweep row.
#[derive(Debug, Clone, Copy)]
pub struct ModulusRow {
    /// Snapshot ID modulus.
    pub modulus: u16,
    /// SRAM of the 64-port channel-state pipeline, KB.
    pub sram_kb: f64,
    /// Maximum outstanding snapshots (no-lapping cap).
    pub max_outstanding: u16,
}

/// Ablation 1: modulus vs. memory vs. outstanding window.
pub fn modulus_sweep(moduli: &[u16]) -> Vec<ModulusRow> {
    moduli
        .iter()
        .map(|&m| ModulusRow {
            modulus: m,
            sram_kb: allocate(&speedlight_pipeline(Variant::ChannelState, 64, m)).sram_kb,
            max_outstanding: m - 1,
        })
        .collect()
}

/// Channel-state cost row.
#[derive(Debug, Clone, Copy)]
pub struct CsCostRow {
    /// Whether channel state was enabled.
    pub channel_state: bool,
    /// Median issue→completion latency, microseconds.
    pub median_completion_us: f64,
    /// Notifications processed per snapshot (network-wide).
    pub notifications_per_snapshot: f64,
}

fn run_completion(channel_state: bool, keepalives: bool, seed: u64) -> (Vec<f64>, f64, usize) {
    let snapshot = SnapshotConfig {
        modulus: 512,
        channel_state,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    };
    let n_snapshots = 40u64;
    let period = Duration::from_millis(8);
    let driver = DriverConfig {
        snapshot_period: Some(period),
        keepalive_period: keepalives.then(|| Duration::from_millis(2)),
        ..DriverConfig::default()
    };
    let mut tb = standard_testbed(snapshot, LbKind::Ecmp, driver, seed);
    let topo = testbed_topology();
    for h in 0..topo.num_hosts() {
        let dsts: Vec<u32> = (0..topo.num_hosts()).filter(|&d| d != h).collect();
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(
                PoissonSource::new(
                    h,
                    dsts,
                    60_000.0,
                    Dist::constant(700.0),
                    seed ^ u64::from(h),
                )
                // One flow per destination: with so few flows, ECMP can
                // leave considered channels silent — the condition the
                // keepalive ablation probes.
                .flows_per_dst(1),
            ),
        );
    }
    tb.run_until(Instant::ZERO + period * (n_snapshots + 15));
    let completions: Vec<f64> = tb
        .snapshots()
        .iter()
        .filter(|r| !r.forced)
        .map(|r| r.completed_at.saturating_since(r.issued_at).as_micros_f64())
        .collect();
    let notifications: u64 = tb
        .network()
        .switches
        .iter()
        .map(|s| s.cp.stats().notifications + s.cp.stats().duplicates)
        .sum();
    let n = tb.snapshots().len();
    (completions, notifications as f64 / n.max(1) as f64, n)
}

/// Ablation 2: the cost of channel state. The two arms are independent
/// seeded runs and fan out across cores.
pub fn channel_state_cost(seed: u64) -> Vec<CsCostRow> {
    let arms = [false, true];
    parfan::map_labeled(
        &arms,
        |_, &cs| format!("ablation channel-state cs={cs} seed={seed}"),
        |_, &cs| {
            let (completions, notifs, _) = run_completion(cs, true, seed);
            CsCostRow {
                channel_state: cs,
                median_completion_us: sim_stats::percentile(&completions, 0.5),
                notifications_per_snapshot: notifs,
            }
        },
    )
}

/// Keepalive ablation row.
#[derive(Debug, Clone, Copy)]
pub struct KeepaliveRow {
    /// Whether keepalive injection ran.
    pub keepalives: bool,
    /// Snapshots completed (not forced).
    pub completed: usize,
    /// Median completion latency, microseconds.
    pub median_completion_us: f64,
}

/// Ablation 3: keepalives vs. traffic-only ID propagation (channel state).
/// The two arms fan out across cores.
pub fn keepalive_ablation(seed: u64) -> Vec<KeepaliveRow> {
    let arms = [true, false];
    parfan::map_labeled(
        &arms,
        |_, &ka| format!("ablation keepalive ka={ka} seed={seed}"),
        |_, &ka| {
            let (completions, _, _) = run_completion(true, ka, seed);
            KeepaliveRow {
                keepalives: ka,
                completed: completions.len(),
                median_completion_us: sim_stats::percentile(&completions, 0.5),
            }
        },
    )
}

/// Render all three ablations.
pub fn render_all(seed: u64) -> String {
    let mut out = String::new();
    let rows: Vec<Vec<String>> = modulus_sweep(&[4, 16, 64, 256, 1024, 4096])
        .into_iter()
        .map(|r| {
            vec![
                r.modulus.to_string(),
                format!("{:.0}", r.sram_kb),
                r.max_outstanding.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Ablation 1: snapshot-ID modulus vs. SRAM (64-port, +Chnl.State) \
         vs. outstanding-snapshot window",
        &["Modulus", "SRAM (KB)", "Max outstanding"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = channel_state_cost(seed)
        .into_iter()
        .map(|r| {
            vec![
                r.channel_state.to_string(),
                format!("{:.0}", r.median_completion_us),
                format!("{:.1}", r.notifications_per_snapshot),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Ablation 2: channel-state cost",
        &[
            "Channel state",
            "Median completion (us)",
            "Notifications/snapshot",
        ],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = keepalive_ablation(seed)
        .into_iter()
        .map(|r| {
            vec![
                r.keepalives.to_string(),
                r.completed.to_string(),
                format!("{:.0}", r.median_completion_us),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Ablation 3: keepalive injection (channel-state liveness)",
        &["Keepalives", "Completed", "Median completion (us)"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_trades_memory_for_window() {
        let rows = modulus_sweep(&[4, 256, 4096]);
        assert!(rows[0].sram_kb < rows[1].sram_kb);
        assert!(rows[1].sram_kb < rows[2].sram_kb);
        assert_eq!(rows[0].max_outstanding, 3);
        assert_eq!(rows[2].max_outstanding, 4095);
    }

    #[test]
    fn channel_state_costs_notifications_and_latency() {
        let rows = channel_state_cost(99);
        let no_cs = rows[0];
        let cs = rows[1];
        assert!(!no_cs.channel_state && cs.channel_state);
        assert!(
            cs.notifications_per_snapshot > 1.5 * no_cs.notifications_per_snapshot,
            "CS {} vs no-CS {}",
            cs.notifications_per_snapshot,
            no_cs.notifications_per_snapshot
        );
        assert!(
            cs.median_completion_us >= no_cs.median_completion_us,
            "CS completion {} should not beat no-CS {}",
            cs.median_completion_us,
            no_cs.median_completion_us
        );
    }

    #[test]
    fn keepalives_rescue_channels_that_traffic_leaves_silent() {
        // With few flows, ECMP can leave a considered (ingress, uplink)
        // channel entirely flow-free, so channel-state completion stalls —
        // exactly the "lack of traffic" liveness problem of §6. Broadcast
        // injection must rescue it; without injection, stalls (forced
        // finalizations) are expected and completions cannot be better.
        let rows = keepalive_ablation(99);
        let with = rows[0];
        let without = rows[1];
        assert!(with.keepalives && !without.keepalives);
        assert!(with.completed > 20, "with keepalives: {}", with.completed);
        assert!(
            with.completed >= without.completed,
            "keepalives can only help: with {} vs without {}",
            with.completed,
            without.completed
        );
    }
}
