//! Shared scenario builders and rendering helpers.

use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::{LbKind, Topology};
use netsim::time::Instant;
use sim_stats::Cdf;
use workloads::graphx::{GraphXConfig, GraphXWorker};
use workloads::hadoop::{HadoopConfig, HadoopMapper};
use workloads::memcache::{MemcacheClient, MemcacheConfig, MemcacheServer};

/// The paper's testbed shape (Fig. 8): 2 leaves × 2 spines, 3 servers per
/// leaf (6 servers total, like the hardware testbed).
pub fn testbed_topology() -> Topology {
    Topology::leaf_spine(2, 2, 3)
}

/// Leaf uplink ports in [`testbed_topology`]: `(switch, port)` pairs whose
/// egress EWMA the load-balancing study compares (§8.3, "uplinks were
/// compared only to other uplinks on the same switch").
pub fn leaf_uplinks() -> Vec<(u16, Vec<u16>)> {
    vec![(0, vec![0, 1]), (1, vec![0, 1])]
}

/// Which application drives the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Terasort-style shuffle (10 mappers / 8 reducers roles folded onto
    /// 6 hosts: every host maps and reduces).
    Hadoop,
    /// PageRank supersteps on 5 workers (host 5 is the idle master).
    GraphX,
    /// mc-crusher multi-get: hosts 0–2 clients, hosts 3–5 servers.
    Memcache,
}

impl Workload {
    /// All three workloads in Fig. 12 order.
    pub fn all() -> [Workload; 3] {
        [Workload::Hadoop, Workload::GraphX, Workload::Memcache]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Hadoop => "hadoop",
            Workload::GraphX => "graphx",
            Workload::Memcache => "memcache",
        }
    }
}

/// Attach `workload`'s sources to the 6 hosts of the standard testbed.
///
/// Every workload also gets sparse cluster-control background traffic
/// (heartbeats, RPCs, ACK-ish chatter): real deployments always have it,
/// and it is what keeps an otherwise-idle uplink's interarrival EWMA
/// *live* — an idle port then reads as "millisecond interarrivals" rather
/// than freezing at its last busy-period value, which is essential to the
/// imbalance signal of Fig. 12.
pub fn attach_workload(tb: &mut Testbed, workload: Workload, seed: u64) {
    attach_workload_load(tb, workload, seed, 1);
}

/// [`attach_workload`] with a traffic multiplier: `load` scales the
/// memcache request rate and the background chatter above the
/// paper-calibrated baseline (the conformance tier's incast knob). The
/// open-loop workloads (Hadoop/GraphX) run their own transfer schedules
/// and only see the scaled chatter.
pub fn attach_workload_load(tb: &mut Testbed, workload: Workload, seed: u64, load: u32) {
    for (h, source) in workload_sources(workload, seed, load) {
        tb.set_source(h, Instant::ZERO, source);
    }
}

/// The per-host source list behind [`attach_workload_load`], engine-
/// agnostic: the serial [`Testbed`] and the sharded testbed attach the
/// identical seeded sources, so workload generation can never depend on
/// the execution engine.
pub fn workload_sources(
    workload: Workload,
    seed: u64,
    load: u32,
) -> Vec<(u32, Box<dyn fabric::traffic::Source>)> {
    use fabric::traffic::{MultiSource, Source};
    use workloads::PoissonSource;

    // Application sources per host.
    let mut app: Vec<Vec<Box<dyn Source>>> = (0..6).map(|_| Vec::new()).collect();
    match workload {
        Workload::Hadoop => {
            // Every host maps to every other host (all-to-all shuffle,
            // collapsing the 10-mapper/8-reducer roles onto 6 servers).
            for h in 0..6u32 {
                let reducers: Vec<u32> = (0..6).filter(|&r| r != h).collect();
                app[h as usize].push(Box::new(HadoopMapper::new(
                    h,
                    reducers,
                    HadoopConfig::default(),
                    seed,
                )));
            }
        }
        Workload::GraphX => {
            // 5 workers exchange; host 5 is the master and stays silent.
            for h in 0..5u32 {
                let peers: Vec<u32> = (0..5).filter(|&p| p != h).collect();
                app[h as usize].push(Box::new(GraphXWorker::new(
                    h,
                    peers,
                    GraphXConfig::default(),
                    seed,
                )));
            }
        }
        Workload::Memcache => {
            let mut cfg = MemcacheConfig::default();
            cfg.rate_rps *= f64::from(load);
            let servers: Vec<u32> = vec![3, 4, 5];
            for c in 0..3u32 {
                app[c as usize].push(Box::new(MemcacheClient::new(
                    c,
                    servers.clone(),
                    cfg.clone(),
                    seed,
                )));
            }
            for (i, &s) in servers.iter().enumerate() {
                app[s as usize].push(Box::new(MemcacheServer::new(
                    s,
                    i,
                    servers.len(),
                    vec![0, 1, 2],
                    cfg.clone(),
                    seed,
                )));
            }
        }
    }

    // Background chatter runs among the application's participants; the
    // GraphX master (host 5) is deliberately left silent so the Fig. 13
    // ground truth ("no correlations with the master port") is meaningful.
    let chatter_hosts: Vec<u32> = match workload {
        Workload::GraphX => (0..5).collect(),
        _ => (0..6).collect(),
    };
    let mut out: Vec<(u32, Box<dyn Source>)> = Vec::new();
    for (h, mut sources) in app.into_iter().enumerate() {
        let h = h as u32;
        if chatter_hosts.contains(&h) {
            let dsts: Vec<u32> = chatter_hosts.iter().copied().filter(|&d| d != h).collect();
            sources.push(Box::new(
                PoissonSource::new(
                    h + 100, // distinct src space for the background flows
                    dsts,
                    2_000.0 * f64::from(load),
                    netsim::dist::Dist::constant(120.0),
                    seed ^ (0xBA5E + u64::from(h)),
                )
                .flows_per_dst(4),
            ));
        }
        if sources.is_empty() {
            continue;
        }
        out.push((h, Box::new(MultiSource::new(sources))));
    }
    out
}

/// Build a standard testbed with the given snapshot config, LB, and driver.
pub fn standard_testbed(
    snapshot: SnapshotConfig,
    lb: LbKind,
    driver: DriverConfig,
    seed: u64,
) -> Testbed {
    let mut cfg = TestbedConfig::new(snapshot);
    cfg.lb = lb;
    cfg.driver = driver;
    cfg.seed = seed;
    Testbed::new(testbed_topology(), cfg)
}

/// Render a fixed-width text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render a CDF as `(value, quantile)` rows at the given resolution.
pub fn render_cdf(label: &str, cdf: &Cdf, points: usize, unit: &str) -> String {
    let mut out = format!(
        "# {label}: n={}, median={:.2}{unit}, p99={:.2}{unit}, max={:.2}{unit}\n",
        cdf.len(),
        cdf.median(),
        cdf.quantile(0.99),
        cdf.max(),
    );
    for (x, q) in cdf.curve(points) {
        out.push_str(&format!("{x:>12.3} {q:>6.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns_columns() {
        let s = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("a") && lines[1].contains("bbbb"));
        assert!(lines[2].starts_with('-'));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn cdf_renderer_includes_summary() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        let s = render_cdf("x", &cdf, 3, "us");
        assert!(s.contains("median=2.00us"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn topology_matches_testbed_shape() {
        let t = testbed_topology();
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.num_hosts(), 6);
        for (sw, ports) in leaf_uplinks() {
            for p in ports {
                assert!(matches!(
                    t.ports[usize::from(sw)][usize::from(p)],
                    fabric::topology::PortPeer::Switch { .. }
                ));
            }
        }
    }
}
