//! Fig. 10: maximum sustained snapshot rate vs. ports per router.
//!
//! "In the experiment, we initiated a series of snapshots on a single
//! switch with fixed interval. Snapshot frequencies that were too high
//! eventually resulted in notification drops. The graphs plot the highest
//! frequency without drops." (§8.2). The bottleneck is the unoptimized
//! (serial, ~110 µs/notification) control plane, not the ASIC-CPU channel.
//!
//! Paper shape: >70 snapshots/s at 64 ports, scaling roughly inversely
//! with port count (log-log straight line from ~1000+ Hz at 4 ports).

use crate::common::render_table;
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::Topology;
use netsim::time::{Duration, Instant};
use telemetry::MetricKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Port counts to sweep.
    pub port_counts: Vec<u16>,
    /// Simulated seconds per trial.
    pub trial_secs: u64,
    /// Binary-search resolution (Hz).
    pub resolution_hz: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            port_counts: vec![4, 8, 16, 32, 64],
            trial_secs: 1,
            resolution_hz: 4.0,
            seed: 10,
        }
    }
}

/// One point on the curve.
#[derive(Debug, Clone, Copy)]
pub struct RatePoint {
    /// Ports per router.
    pub ports: u16,
    /// Maximum sustained snapshot rate, Hz.
    pub max_rate_hz: f64,
}

/// The Fig. 10 curve.
#[derive(Debug)]
pub struct Fig10 {
    /// Max sustained rate per port count.
    pub points: Vec<RatePoint>,
}

/// Whether a single `ports`-port switch sustains snapshots at `rate_hz`:
/// every issued snapshot completes, nothing is force-finalized, no
/// notification drops, and the CP queue has drained by the end.
fn sustainable(ports: u16, rate_hz: f64, secs: u64, seed: u64) -> bool {
    let topo = Topology::single_switch(ports);
    let mut cfg = TestbedConfig::new(SnapshotConfig {
        modulus: 4_096,
        channel_state: false,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    });
    cfg.seed = seed;
    cfg.driver = DriverConfig {
        snapshot_period: Some(Duration::from_nanos((1e9 / rate_hz) as u64)),
        device_timeout: Duration::from_secs(3600), // never force-finalize
        ..DriverConfig::default()
    };
    let mut tb = Testbed::new(topo, cfg);
    let horizon = Instant::ZERO + Duration::from_secs(secs);
    tb.run_until(horizon);
    let expected = (rate_hz * secs as f64 * 0.9) as usize; // startup slack
    let issued_enough = tb.snapshots().len() >= expected;
    let net = tb.network();
    let sw = &net.switches[0];
    let drained = sw.cp_queue.len() < usize::from(2 * ports);
    issued_enough && sw.stats.notify_drops == 0 && drained
}

/// Find the sustainability frontier for one port count: bracket with a
/// coarse geometric probe, then binary-search. Each trial builds its own
/// testbed from `seed`, so one point is a pure function of its inputs.
fn search_point(ports: u16, trial_secs: u64, resolution_hz: f64, seed: u64) -> RatePoint {
    let lo = 1.0f64;
    let mut hi = 20_000.0f64;
    while hi / 2.0 > lo && !sustainable(ports, hi / 2.0, trial_secs, seed) {
        hi /= 2.0;
    }
    let mut lo_ok = lo;
    let mut hi_bad = hi;
    while hi_bad - lo_ok > resolution_hz {
        let mid = (lo_ok + hi_bad) / 2.0;
        if sustainable(ports, mid, trial_secs, seed) {
            lo_ok = mid;
        } else {
            hi_bad = mid;
        }
    }
    RatePoint {
        ports,
        max_rate_hz: lo_ok,
    }
}

/// Run the experiment. The rate search per port count is sequential (each
/// probe brackets the next), but the sweep points are independent and fan
/// out across cores.
pub fn run(cfg: &Fig10Config) -> Fig10 {
    let points = parfan::map_labeled(
        &cfg.port_counts,
        |_, &ports| format!("fig10 ports={ports} seed={}", cfg.seed),
        |_, &ports| search_point(ports, cfg.trial_secs, cfg.resolution_hz, cfg.seed),
    );
    Fig10 { points }
}

impl Fig10 {
    /// Render the curve.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| vec![p.ports.to_string(), format!("{:.0}", p.max_rate_hz)])
            .collect();
        render_table(
            "Fig. 10: max sustained snapshot rate before notification queue \
             buildup (no channel state)",
            &["Ports/Router", "Max Rate (Hz)"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_four_ports_sustain_over_70_hz() {
        let cfg = Fig10Config {
            port_counts: vec![64],
            trial_secs: 1,
            resolution_hz: 8.0,
            seed: 10,
        };
        let f = run(&cfg);
        let rate = f.points[0].max_rate_hz;
        // Paper: "Even for 64 ports (a full linecard), Speedlight can
        // sustain over 70 snapshots per second."
        assert!(rate > 70.0, "64-port max rate {rate:.0} Hz");
        assert!(rate < 400.0, "rate {rate:.0} Hz implausibly high");
    }

    #[test]
    fn rate_scales_inversely_with_ports() {
        let cfg = Fig10Config {
            port_counts: vec![4, 16, 64],
            trial_secs: 1,
            resolution_hz: 16.0,
            seed: 10,
        };
        let f = run(&cfg);
        let r4 = f.points[0].max_rate_hz;
        let r16 = f.points[1].max_rate_hz;
        let r64 = f.points[2].max_rate_hz;
        assert!(r4 > r16 && r16 > r64, "{r4:.0} / {r16:.0} / {r64:.0}");
        // Roughly inverse: 16x the ports cuts the rate by ~8-32x.
        let ratio = r4 / r64;
        assert!((6.0..50.0).contains(&ratio), "r4/r64 = {ratio:.1}");
    }

    #[test]
    fn unsustainable_rates_are_detected() {
        // 64 ports at 5 kHz cannot possibly drain through a ~110 µs/notif
        // control plane.
        assert!(!sustainable(64, 5_000.0, 1, 10));
        assert!(sustainable(4, 20.0, 1, 10));
    }
}
