//! Fig. 12: evaluating load balancing with snapshots vs. polling.
//!
//! For each workload (Hadoop, GraphX, memcache) and each load balancer
//! (ECMP, flowlet), take a series of snapshots of the **EWMA of packet
//! interarrival time** at egress and compute, per snapshot, the standard
//! deviation across the uplink ports of each leaf ("uplinks were compared
//! only to other uplinks on the same switch", §8.3). The polling baseline
//! computes the same statistic from asynchronous sweep reads.
//!
//! Paper shapes to reproduce:
//! * Hadoop — flowlets balance much better than ECMP, but *polling shows
//!   little-to-no gain for flowlets*;
//! * GraphX — polling consistently *underestimates* the imbalance;
//! * memcache — load is nearly perfectly balanced (µs-scale deviations),
//!   and polling *overestimates* the imbalance.

use crate::common::{attach_workload, leaf_uplinks, render_cdf, standard_testbed, Workload};
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::topology::LbKind;
use netsim::time::{Duration, Instant};
use sim_stats::{std_dev, Cdf};
use speedlight_core::types::{Direction, UnitId};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig12Config {
    /// Measured duration per run.
    pub duration: Duration,
    /// Snapshot period.
    pub snapshot_period: Duration,
    /// Polling sweep period.
    pub poll_period: Duration,
    /// Warm-up to skip (EWMA priming).
    pub warmup: Duration,
    /// Flowlet gap (µs) for the flowlet arm.
    pub flowlet_gap_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            duration: Duration::from_millis(2_000),
            snapshot_period: Duration::from_millis(2),
            poll_period: Duration::from_millis(5),
            warmup: Duration::from_millis(100),
            flowlet_gap_us: 60,
            seed: 12,
        }
    }
}

/// One panel (workload) of Fig. 12: the four CDFs, stddev in microseconds.
#[derive(Debug)]
pub struct Fig12Panel {
    /// The workload.
    pub workload: Workload,
    /// ECMP measured by polling.
    pub ecmp_polling: Cdf,
    /// ECMP measured by snapshots.
    pub ecmp_snapshots: Cdf,
    /// Flowlet measured by polling.
    pub flowlet_polling: Cdf,
    /// Flowlet measured by snapshots.
    pub flowlet_snapshots: Cdf,
}

/// All three panels.
#[derive(Debug)]
pub struct Fig12 {
    /// Hadoop, GraphX, memcache panels.
    pub panels: Vec<Fig12Panel>,
}

/// Run one (workload, lb) cell; returns (snapshot stddevs, polling
/// stddevs) in microseconds. Public for the examples and debug bins.
pub fn run_cell(cfg: &Fig12Config, workload: Workload, lb: LbKind) -> (Vec<f64>, Vec<f64>) {
    let (snap, poll, _) = run_cell_inner(cfg, workload, lb, false);
    (snap, poll)
}

/// [`run_cell`] with the snapshot-lifecycle trace captured as JSONL lines.
pub fn run_cell_traced(
    cfg: &Fig12Config,
    workload: Workload,
    lb: LbKind,
) -> (Vec<f64>, Vec<f64>, Vec<String>) {
    run_cell_inner(cfg, workload, lb, true)
}

fn run_cell_inner(
    cfg: &Fig12Config,
    workload: Workload,
    lb: LbKind,
    trace: bool,
) -> (Vec<f64>, Vec<f64>, Vec<String>) {
    let snapshot = SnapshotConfig::ewma(512);
    let driver = DriverConfig {
        snapshot_period: Some(cfg.snapshot_period),
        poll_period: Some(cfg.poll_period),
        ..DriverConfig::default()
    };
    let mut tb = standard_testbed(snapshot, lb, driver, cfg.seed);
    attach_workload(&mut tb, workload, cfg.seed);
    if trace {
        tb.enable_trace();
    }
    tb.run_until(Instant::ZERO + cfg.warmup + cfg.duration);
    let trace_lines = tb.take_trace_lines();

    let uplinks = leaf_uplinks();
    let warm = Instant::ZERO + cfg.warmup;

    // Per-snapshot, per-leaf stddev across uplink egress EWMAs.
    let mut snap_devs = Vec::new();
    for rec in tb.snapshots() {
        if rec.completed_at < warm {
            continue;
        }
        for (sw, ports) in &uplinks {
            let values: Vec<f64> = ports
                .iter()
                .filter_map(|&p| {
                    rec.snapshot
                        .units
                        .get(&UnitId::egress(*sw, p))
                        .and_then(|o| o.local())
                })
                .map(|ns| ns as f64 / 1e3)
                .collect();
            if values.len() == ports.len() && values.iter().all(|&v| v > 0.0) {
                snap_devs.push(std_dev(&values));
            }
        }
    }

    // Per-sweep, per-leaf stddev from the asynchronous polled reads.
    let mut poll_devs = Vec::new();
    for sweep in tb.polls() {
        if sweep.samples.iter().any(|s| s.2 < warm) || sweep.samples.is_empty() {
            continue;
        }
        for (sw, ports) in &uplinks {
            let values: Vec<f64> = sweep
                .samples
                .iter()
                .filter(|(u, _, _)| {
                    u.device == *sw && u.direction == Direction::Egress && ports.contains(&u.port)
                })
                .map(|&(_, v, _)| v as f64 / 1e3)
                .collect();
            if values.len() == ports.len() && values.iter().all(|&v| v > 0.0) {
                poll_devs.push(std_dev(&values));
            }
        }
    }
    (snap_devs, poll_devs, trace_lines)
}

/// The workload × load-balancer grid, flattened into six independent cells
/// in `Workload::all()` order (ECMP before flowlet within each workload).
fn grid_cells(cfg: &Fig12Config) -> Vec<(Workload, LbKind)> {
    Workload::all()
        .into_iter()
        .flat_map(|w| {
            [
                (w, LbKind::Ecmp),
                (
                    w,
                    LbKind::Flowlet {
                        gap_us: cfg.flowlet_gap_us,
                    },
                ),
            ]
        })
        .collect()
}

/// Run the full grid with tracing on and merge the per-cell traces in cell
/// (input) order, so the result is byte-identical at any `SPEEDLIGHT_JOBS`.
pub fn grid_trace(cfg: &Fig12Config) -> Vec<String> {
    let cells = grid_cells(cfg);
    let traces = parfan::map_labeled(
        &cells,
        |_, &(w, lb)| format!("fig12-trace workload={w:?} lb={lb:?} seed={}", cfg.seed),
        |_, &(w, lb)| run_cell_traced(cfg, w, lb).2,
    );
    obs::sinks::merge_job_lines(traces)
}

/// Run the experiment. Each cell builds its own testbed from `cfg.seed` and
/// fans out across cores; panels reassemble in `Workload::all()` order.
pub fn run(cfg: &Fig12Config) -> Fig12 {
    let cells = grid_cells(cfg);
    let results = parfan::map_labeled(
        &cells,
        |_, &(w, lb)| format!("fig12 workload={w:?} lb={lb:?} seed={}", cfg.seed),
        |_, &(w, lb)| run_cell(cfg, w, lb),
    );
    let mut cells_out = results.into_iter();
    let panels = Workload::all()
        .into_iter()
        .map(|workload| {
            let (es, ep) = cells_out.next().expect("ecmp cell");
            let (fs, fp) = cells_out.next().expect("flowlet cell");
            Fig12Panel {
                workload,
                ecmp_polling: Cdf::new(ep),
                ecmp_snapshots: Cdf::new(es),
                flowlet_polling: Cdf::new(fp),
                flowlet_snapshots: Cdf::new(fs),
            }
        })
        .collect();
    Fig12 { panels }
}

impl Fig12 {
    /// Render all panels.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 12: stddev of uplink EWMA-of-interarrival across same-leaf \
             uplinks (us)\n",
        );
        for p in &self.panels {
            out.push_str(&format!("\n== ({}) ==\n", p.workload.label()));
            out.push_str(&render_cdf("ECMP Polling", &p.ecmp_polling, 15, "us"));
            out.push_str(&render_cdf("ECMP Snapshots", &p.ecmp_snapshots, 15, "us"));
            out.push_str(&render_cdf("Flowlet Polling", &p.flowlet_polling, 15, "us"));
            out.push_str(&render_cdf(
                "Flowlet Snapshots",
                &p.flowlet_snapshots,
                15,
                "us",
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig12Config {
        Fig12Config {
            duration: Duration::from_millis(500),
            snapshot_period: Duration::from_millis(2),
            poll_period: Duration::from_millis(5),
            warmup: Duration::from_millis(80),
            flowlet_gap_us: 60,
            seed: 12,
        }
    }

    #[test]
    fn hadoop_flowlets_beat_ecmp_under_snapshots_but_polling_understates_it() {
        let cfg = small();
        let (ecmp_snap, ecmp_poll) = run_cell(&cfg, Workload::Hadoop, LbKind::Ecmp);
        let (fl_snap, fl_poll) = run_cell(&cfg, Workload::Hadoop, LbKind::Flowlet { gap_us: 60 });
        assert!(ecmp_snap.len() > 50 && fl_snap.len() > 50);
        let snap_ratio =
            sim_stats::percentile(&ecmp_snap, 0.5) / sim_stats::percentile(&fl_snap, 0.5).max(1e-9);
        let poll_ratio =
            sim_stats::percentile(&ecmp_poll, 0.5) / sim_stats::percentile(&fl_poll, 0.5).max(1e-9);
        // "in reality flowlets improve balance significantly" (§8.3):
        assert!(
            snap_ratio > 3.0,
            "snapshots should show a large flowlet gain, got {snap_ratio:.1}x"
        );
        // "polling shows little-to-no gain for flowlets": the asynchronous
        // view understates the improvement.
        assert!(
            poll_ratio < snap_ratio * 0.85,
            "polling should understate the gain: poll {poll_ratio:.1}x vs              snapshots {snap_ratio:.1}x"
        );
    }

    #[test]
    fn memcache_is_far_better_balanced_than_hadoop() {
        let cfg = small();
        let (hadoop, _) = run_cell(&cfg, Workload::Hadoop, LbKind::Ecmp);
        let (mc, _) = run_cell(&cfg, Workload::Memcache, LbKind::Ecmp);
        assert!(!hadoop.is_empty() && !mc.is_empty());
        let mh = sim_stats::percentile(&hadoop, 0.5);
        let mm = sim_stats::percentile(&mc, 0.5);
        assert!(
            mm * 3.0 < mh,
            "memcache median {mm:.2} us vs hadoop {mh:.2} us"
        );
    }

    #[test]
    fn memcache_polling_overestimates_the_imbalance() {
        // "Our Memcache workload is very evenly distributed, but … polling
        //  consistently overestimates the imbalance" (§8.3).
        let cfg = small();
        let (snap, poll) = run_cell(&cfg, Workload::Memcache, LbKind::Ecmp);
        let ms = sim_stats::percentile(&snap, 0.5);
        let mp = sim_stats::percentile(&poll, 0.5);
        assert!(
            mp > ms,
            "polling median {mp:.2} us should exceed snapshot median {ms:.2} us"
        );
    }

    #[test]
    fn graphx_polling_misestimates_the_imbalance() {
        // The figure's very point: asynchronous polling measures a
        // different distribution than consistent snapshots (for GraphX the
        // paper reports consistent underestimation).
        let cfg = small();
        let (snaps, polls) = run_cell(&cfg, Workload::GraphX, LbKind::Ecmp);
        assert!(snaps.len() > 30, "snapshots: {}", snaps.len());
        assert!(polls.len() > 10, "polls: {}", polls.len());
        let ms = sim_stats::percentile(&snaps, 0.5);
        let mp = sim_stats::percentile(&polls, 0.5);
        assert!(
            mp < ms && (ms - mp) / ms > 0.02,
            "for barrier-synchronized bursts polling smears the imbalance \
             downward: poll {mp:.2} vs snap {ms:.2}"
        );
    }
}
