//! Fig. 11: average synchronization of snapshots in larger deployments.
//!
//! The paper could not build a 10,000-router testbed either; it simulated
//! one from distributions measured on the hardware: "Our simulation
//! included PTP time drift, OpenNetworkLinux scheduling effects, and the
//! latency between initiation and data plane snapshot execution" (§8.2).
//! We do exactly the same Monte-Carlo with the `timesync` model: per
//! router, one clock-offset + scheduling draw; per unit (64 ports × 2),
//! one CPU→data-plane draw; synchronization = max − min execution instant
//! across the whole network; averaged over trials.
//!
//! Paper shape: grows slowly (extreme-value statistics of the jitter
//! tail), staying under ~100 µs even at 10,000 routers.

use crate::common::render_table;
use netsim::rng::SimRng;
use netsim::time::Instant;
use timesync::InitiationModel;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// Router counts to sweep.
    pub router_counts: Vec<usize>,
    /// Processing units per router (64 ports × ingress+egress).
    pub units_per_router: usize,
    /// Trials per point (scaled down for the largest networks).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            router_counts: vec![10, 30, 100, 300, 1_000, 3_000, 10_000],
            units_per_router: 128,
            trials: 20,
            seed: 11,
        }
    }
}

/// One point of the curve.
#[derive(Debug, Clone, Copy)]
pub struct SyncPoint {
    /// Network size in routers.
    pub routers: usize,
    /// Average whole-network synchronization, microseconds.
    pub avg_sync_us: f64,
}

/// The Fig. 11 curve.
#[derive(Debug)]
pub struct Fig11 {
    /// Average sync per network size.
    pub points: Vec<SyncPoint>,
}

/// Sample the synchronization of one network-wide snapshot.
fn one_snapshot(model: &InitiationModel, routers: usize, units: usize, rng: &mut SimRng) -> f64 {
    let scheduled = Instant::from_nanos(1_000_000_000);
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for _ in 0..routers {
        let dev = model.sample_device(rng);
        for _ in 0..units {
            let s = model.sample_unit(scheduled, &dev, rng);
            lo = lo.min(s.executes_at.as_nanos());
            hi = hi.max(s.executes_at.as_nanos());
        }
    }
    (hi - lo) as f64 / 1e3
}

/// Run the experiment. Every sweep point forks its own RNG stream from the
/// seed (rather than threading one generator through the sweep), so a
/// point's result depends only on its own inputs — not on which points ran
/// before it — and the sweep fans out across cores.
pub fn run(cfg: &Fig11Config) -> Fig11 {
    let model = InitiationModel::testbed();
    let points = parfan::map_labeled(
        &cfg.router_counts,
        |idx, &routers| format!("fig11 routers={routers} point={idx} seed={}", cfg.seed),
        |idx, &routers| {
            let mut rng = SimRng::new(cfg.seed).fork_idx("fig11-point", idx as u64);
            // Cap total unit-draws per point so the largest networks do not
            // dominate the runtime; ≥3 trials always.
            let budget = 4_000_000usize;
            let trials = cfg
                .trials
                .min(budget / (routers * cfg.units_per_router))
                .max(3);
            let total: f64 = (0..trials)
                .map(|_| one_snapshot(&model, routers, cfg.units_per_router, &mut rng))
                .sum();
            SyncPoint {
                routers,
                avg_sync_us: total / trials as f64,
            }
        },
    );
    Fig11 { points }
}

impl Fig11 {
    /// Render the curve.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| vec![p.routers.to_string(), format!("{:.1}", p.avg_sync_us)])
            .collect();
        render_table(
            "Fig. 11: average synchronization vs. network size \
             (64-port routers, no channel state)",
            &["Routers", "Avg Sync (us)"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig11Config {
        Fig11Config {
            router_counts: vec![10, 100, 1_000, 10_000],
            units_per_router: 128,
            trials: 8,
            seed: 11,
        }
    }

    #[test]
    fn sync_grows_slowly_and_stays_under_100us() {
        let f = run(&small());
        for p in &f.points {
            assert!(
                p.avg_sync_us < 100.0,
                "{} routers: {:.1} us exceeds the paper's bound",
                p.routers,
                p.avg_sync_us
            );
        }
        // Monotone non-decreasing in expectation (max-min over more draws).
        for w in f.points.windows(2) {
            assert!(
                w[1].avg_sync_us >= w[0].avg_sync_us * 0.9,
                "sync should not shrink with size: {:?}",
                f.points
            );
        }
        // And the growth is sub-linear: 1000x routers < 4x sync.
        let first = f.points.first().unwrap().avg_sync_us;
        let last = f.points.last().unwrap().avg_sync_us;
        assert!(
            last < 4.0 * first,
            "asymptotic growth violated: {first:.1} -> {last:.1}"
        );
    }

    #[test]
    fn testbed_scale_matches_fig9() {
        // 4 routers of 28 units ≈ the testbed: average sync should sit in
        // the same few-µs regime Fig. 9 reports.
        let f = run(&Fig11Config {
            router_counts: vec![4],
            units_per_router: 28,
            trials: 200,
            seed: 11,
        });
        let avg = f.points[0].avg_sync_us;
        assert!((4.0..20.0).contains(&avg), "testbed-scale avg {avg:.1} us");
    }
}
