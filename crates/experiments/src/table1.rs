//! Table 1: resource usage of the Speedlight data plane on the Tofino.
//!
//! Regenerated from the pipeline resource model (`pipeline-model`), which
//! is calibrated against the paper's published numbers (see that crate's
//! docs). Also reports the 14-port evaluation configuration quoted in
//! §7.1's text and the <25%-of-any-resource utilization check.

use crate::common::render_table;
use pipeline_model::{allocate, speedlight_pipeline, ResourceReport, TofinoCapacity, Variant};

/// The default snapshot-ID modulus assumed by the calibration.
pub const DEFAULT_MODULUS: u16 = 256;

/// Table 1 plus the §7.1 extras.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Per-variant reports at 64 ports.
    pub columns: Vec<(Variant, ResourceReport)>,
    /// The 14-port channel-state configuration used in the evaluation.
    pub eval_config: ResourceReport,
    /// Whether every variant fits under 25% of a Tofino's resources.
    pub fits: bool,
}

/// Run the experiment.
pub fn run() -> Table1 {
    let columns: Vec<(Variant, ResourceReport)> = Variant::all()
        .into_iter()
        .map(|v| (v, allocate(&speedlight_pipeline(v, 64, DEFAULT_MODULUS))))
        .collect();
    let eval_config = allocate(&speedlight_pipeline(
        Variant::ChannelState,
        14,
        DEFAULT_MODULUS,
    ));
    let cap = TofinoCapacity::default();
    let fits = columns.iter().all(|(_, r)| r.fits_comfortably(&cap));
    Table1 {
        columns,
        eval_config,
        fits,
    }
}

impl Table1 {
    /// Render in the paper's row order.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = std::iter::once("Variant")
            .chain(self.columns.iter().map(|(v, _)| v.label()))
            .collect();
        let row = |name: &str, f: &dyn Fn(&ResourceReport) -> String| -> Vec<String> {
            std::iter::once(name.to_string())
                .chain(self.columns.iter().map(|(_, r)| f(r)))
                .collect()
        };
        let rows = vec![
            row("Stateless ALUs", &|r| r.stateless_alus.to_string()),
            row("Stateful ALUs", &|r| r.stateful_alus.to_string()),
            row("Logical Table IDs", &|r| r.logical_tables.to_string()),
            row("Conditional Gateways", &|r| r.gateways.to_string()),
            row("Physical Stages", &|r| r.physical_stages.to_string()),
            row("SRAM", &|r| format!("{:.0}KB", r.sram_kb)),
            row("TCAM", &|r| format!("{:.0}KB", r.tcam_kb)),
        ];
        let mut out = render_table(
            "Table 1: Speedlight data plane resource usage (64-port snapshots)",
            &headers,
            &rows,
        );
        out.push_str(&format!(
            "\n14-port +Chnl.State evaluation config: {:.0}KB SRAM, {:.0}KB TCAM \
             (paper: 638KB / 90KB)\n",
            self.eval_config.sram_kb, self.eval_config.tcam_kb
        ));
        out.push_str(&format!(
            "All variants under 25% of every dedicated Tofino resource: {}\n",
            self.fits
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_every_published_cell() {
        let t = run();
        let by_variant = |v: Variant| {
            t.columns
                .iter()
                .find(|(var, _)| *var == v)
                .map(|(_, r)| *r)
                .unwrap()
        };
        let pc = by_variant(Variant::PacketCount);
        assert_eq!(
            (
                pc.stateless_alus,
                pc.stateful_alus,
                pc.logical_tables,
                pc.gateways,
                pc.physical_stages
            ),
            (17, 9, 27, 15, 10)
        );
        assert_eq!(pc.sram_kb.round() as u32, 606);
        assert_eq!(pc.tcam_kb.round() as u32, 42);

        let wa = by_variant(Variant::WrapAround);
        assert_eq!(
            (
                wa.stateless_alus,
                wa.stateful_alus,
                wa.logical_tables,
                wa.gateways,
                wa.physical_stages
            ),
            (19, 9, 35, 19, 10)
        );
        assert_eq!(wa.sram_kb.round() as u32, 671);
        assert_eq!(wa.tcam_kb.round() as u32, 59);

        let cs = by_variant(Variant::ChannelState);
        assert_eq!(
            (
                cs.stateless_alus,
                cs.stateful_alus,
                cs.logical_tables,
                cs.gateways,
                cs.physical_stages
            ),
            (24, 11, 37, 19, 12)
        );
        assert_eq!(cs.sram_kb.round() as u32, 770);
        assert_eq!(cs.tcam_kb.round() as u32, 244);

        assert_eq!(t.eval_config.sram_kb.round() as u32, 638);
        assert_eq!(t.eval_config.tcam_kb.round() as u32, 90);
        assert!(t.fits);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = run().render();
        for needle in [
            "Stateless ALUs",
            "Stateful ALUs",
            "Logical Table IDs",
            "Conditional Gateways",
            "Physical Stages",
            "SRAM",
            "TCAM",
            "638KB",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
