//! Fig. 13: detecting synchronized traffic via pairwise correlation.
//!
//! "We measured EWMA of packet rates at egress of all ports, in 100
//! snapshots … We then calculated pairwise correlation between ports using
//! Spearman tests" (§8.4), keeping coefficients with p < 0.1. Ground
//! truths: (1) the port egressing to the idle master server correlates
//! with nothing; (2) ECMP next-hop pairs (a leaf's two uplinks) correlate
//! positively. Paper result: snapshots find ~43% more significant pairs
//! and match both ground truths; polling misses or even *negates* the
//! ECMP-pair correlations.

use crate::common::{attach_workload, render_table, standard_testbed, Workload};
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::topology::{LbKind, PortPeer};
use netsim::time::{Duration, Instant};
use sim_stats::spearman;
use speedlight_core::types::UnitId;
use std::collections::BTreeMap;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig13Config {
    /// Number of measurement rounds (paper: 100).
    pub rounds: usize,
    /// Interval between rounds (paper: 1 s; we default shorter to keep the
    /// simulation tractable — the GraphX superstep period scales likewise).
    pub interval: Duration,
    /// Significance level (paper: 0.1).
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig13Config {
    fn default() -> Self {
        Fig13Config {
            rounds: 100,
            interval: Duration::from_millis(100),
            alpha: 0.1,
            seed: 13,
        }
    }
}

/// A correlation matrix over egress ports.
#[derive(Debug)]
pub struct CorrelationMatrix {
    /// The ports (matrix axis order).
    pub ports: Vec<UnitId>,
    /// `(i, j, rho)` for significant pairs only (i < j).
    pub significant: Vec<(usize, usize, f64)>,
    /// Every pair's `(rho, p)` (i < j).
    pub all: BTreeMap<(usize, usize), (f64, f64)>,
    /// Total pairs tested.
    pub pairs: usize,
}

impl CorrelationMatrix {
    /// The rho of a pair regardless of significance.
    pub fn rho(&self, i: usize, j: usize) -> f64 {
        self.all
            .get(&(i.min(j), i.max(j)))
            .map(|&(rho, _)| rho)
            .unwrap_or(0.0)
    }
}

/// The Fig. 13 comparison.
#[derive(Debug)]
pub struct Fig13 {
    /// Correlations from snapshots.
    pub snapshots: CorrelationMatrix,
    /// Correlations from polling.
    pub polling: CorrelationMatrix,
    /// Leaf uplink ("same ECMP path") pairs, as matrix indices.
    pub ecmp_pairs: Vec<(usize, usize)>,
    /// Index of the master-facing egress port.
    pub master_port: usize,
}

fn correlate(
    series: &BTreeMap<UnitId, Vec<f64>>,
    ports: &[UnitId],
    alpha: f64,
) -> CorrelationMatrix {
    // One job per matrix row i (all pairs (i, j > i)); rows are independent
    // and merge back in row order, so `significant` keeps its (i, j)
    // lexicographic order regardless of worker count.
    let rows: Vec<usize> = (0..ports.len()).collect();
    let row_results = parfan::map(&rows, |_, &i| {
        ((i + 1)..ports.len())
            .map(|j| {
                let r = spearman(&series[&ports[i]], &series[&ports[j]]);
                (j, r.rho, r.p_value, r.significant(alpha))
            })
            .collect::<Vec<_>>()
    });
    let mut significant = Vec::new();
    let mut all = BTreeMap::new();
    let mut pairs = 0;
    for (i, row) in row_results.into_iter().enumerate() {
        for (j, rho, p, sig) in row {
            pairs += 1;
            all.insert((i, j), (rho, p));
            if sig {
                significant.push((i, j, rho));
            }
        }
    }
    CorrelationMatrix {
        ports: ports.to_vec(),
        significant,
        all,
        pairs,
    }
}

/// Run the experiment.
pub fn run(cfg: &Fig13Config) -> Fig13 {
    // The paper's §8 counter: the short-memory interarrival EWMA, viewed
    // as a rate. Its ~4-packet memory is exactly why asynchronous polling
    // (reads of different switches hundreds of µs apart) decorrelates
    // pairs that snapshots capture.
    let snapshot = SnapshotConfig::ewma(512);
    let driver = DriverConfig {
        snapshot_period: Some(cfg.interval),
        poll_period: Some(cfg.interval),
        ..DriverConfig::default()
    };
    let mut tb = standard_testbed(snapshot, LbKind::Ecmp, driver, cfg.seed);
    attach_workload(&mut tb, Workload::GraphX, cfg.seed);
    let horizon = cfg.interval * (cfg.rounds as u64 + 5);
    tb.run_until(Instant::ZERO + horizon);

    // All wired egress units, in deterministic order.
    let topo = tb.network().topology().clone();
    let mut ports: Vec<UnitId> = Vec::new();
    let mut master_port = 0usize;
    for sw in 0..topo.num_switches() {
        for p in 0..topo.num_ports(sw) {
            match topo.ports[usize::from(sw)][usize::from(p)] {
                PortPeer::Unused => {}
                PortPeer::Host(h) => {
                    if h == 5 {
                        master_port = ports.len();
                    }
                    ports.push(UnitId::egress(sw, p));
                }
                PortPeer::Switch { .. } => ports.push(UnitId::egress(sw, p)),
            }
        }
    }
    // "Port pairs on the same ECMP paths": along-path pairs — a leaf's
    // uplink egress and the corresponding spine's onward egress carry the
    // *same* packet stream (store-and-forward), so they must correlate
    // strongly and positively. One pair per (leaf, spine): leaf L's uplink
    // s egress ↔ spine s's egress toward the other leaf.
    let mut ecmp_pairs: Vec<(usize, usize)> = Vec::new();
    for leaf in 0..2u16 {
        for spine in 0..2u16 {
            let a = ports
                .iter()
                .position(|u| *u == UnitId::egress(leaf, spine))
                .unwrap();
            // Spine `spine` is switch 2 + spine; its port toward leaf X is
            // port X; the onward port for traffic from `leaf` is 1 - leaf.
            let b = ports
                .iter()
                .position(|u| *u == UnitId::egress(2 + spine, 1 - leaf))
                .unwrap();
            ecmp_pairs.push((a.min(b), a.max(b)));
        }
    }

    // Snapshot series: per-round EWMA converted to a rate (pps).
    let to_rate = |ewma_ns: u64| {
        if ewma_ns == 0 {
            0.0
        } else {
            1e9 / ewma_ns as f64
        }
    };
    let mut snap_series: BTreeMap<UnitId, Vec<f64>> =
        ports.iter().map(|&u| (u, Vec::new())).collect();
    for rec in tb.snapshots().iter().take(cfg.rounds) {
        for &u in &ports {
            let v = rec
                .snapshot
                .units
                .get(&u)
                .and_then(|o| o.local())
                .unwrap_or(0);
            snap_series.get_mut(&u).unwrap().push(to_rate(v));
        }
    }
    // Polling series.
    let mut poll_series: BTreeMap<UnitId, Vec<f64>> =
        ports.iter().map(|&u| (u, Vec::new())).collect();
    for sweep in tb.polls().iter().take(cfg.rounds) {
        let by_unit: BTreeMap<UnitId, u64> =
            sweep.samples.iter().map(|&(u, v, _)| (u, v)).collect();
        for &u in &ports {
            poll_series
                .get_mut(&u)
                .unwrap()
                .push(to_rate(by_unit.get(&u).copied().unwrap_or(0)));
        }
    }

    Fig13 {
        snapshots: correlate(&snap_series, &ports, cfg.alpha),
        polling: correlate(&poll_series, &ports, cfg.alpha),
        ecmp_pairs,
        master_port,
    }
}

impl Fig13 {
    /// Significant-pair count found by snapshots relative to polling.
    pub fn snapshot_gain(&self) -> f64 {
        if self.polling.significant.is_empty() {
            f64::INFINITY
        } else {
            self.snapshots.significant.len() as f64 / self.polling.significant.len() as f64
        }
    }

    /// Mean rho over the ground-truth same-path pairs in `m`.
    pub fn mean_ecmp_rho(&self, m: &CorrelationMatrix) -> f64 {
        let sum: f64 = self.ecmp_pairs.iter().map(|&(a, b)| m.rho(a, b)).sum();
        sum / self.ecmp_pairs.len().max(1) as f64
    }

    /// Check ground truth 1: the master port correlates with nothing.
    pub fn master_is_uncorrelated(&self, m: &CorrelationMatrix) -> bool {
        m.significant
            .iter()
            .all(|&(i, j, _)| i != self.master_port && j != self.master_port)
    }

    /// Check ground truth 2: every ECMP pair is significantly *positively*
    /// correlated in `m`.
    pub fn ecmp_pairs_positive(&self, m: &CorrelationMatrix) -> usize {
        self.ecmp_pairs
            .iter()
            .filter(|&&(a, b)| {
                m.significant
                    .iter()
                    .any(|&(i, j, rho)| i == a && j == b && rho > 0.0)
            })
            .count()
    }

    /// Render the comparison summary.
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                "significant pairs".into(),
                self.snapshots.significant.len().to_string(),
                self.polling.significant.len().to_string(),
            ],
            vec![
                "pairs tested".into(),
                self.snapshots.pairs.to_string(),
                self.polling.pairs.to_string(),
            ],
            vec![
                "ECMP pairs found positive".into(),
                format!(
                    "{}/{}",
                    self.ecmp_pairs_positive(&self.snapshots),
                    self.ecmp_pairs.len()
                ),
                format!(
                    "{}/{}",
                    self.ecmp_pairs_positive(&self.polling),
                    self.ecmp_pairs.len()
                ),
            ],
            vec![
                "master port uncorrelated".into(),
                self.master_is_uncorrelated(&self.snapshots).to_string(),
                self.master_is_uncorrelated(&self.polling).to_string(),
            ],
        ];
        let mut out = render_table(
            "Fig. 13: pairwise Spearman correlations of egress packet rates \
             under GraphX (p < 0.1)",
            &["", "Snapshots", "Polling"],
            &rows,
        );
        out.push_str(&format!(
            "\nSnapshots vs polling, significant pairs: {} vs {} \
             (paper: snapshots found ~43% more).\n",
            self.snapshots.significant.len(),
            self.polling.significant.len(),
        ));
        out.push_str(&format!(
            "Mean rho over same-path ground-truth pairs: snapshots {:.3} \
             vs polling {:.3} — asynchronous reads of different switches \
             visibly erode correlations of physically identical streams.\n",
            self.mean_ecmp_rho(&self.snapshots),
            self.mean_ecmp_rho(&self.polling),
        ));
        out.push_str("\nSignificant snapshot correlations (i, j, rho):\n");
        for &(i, j, rho) in &self.snapshots.significant {
            out.push_str(&format!(
                "  {} ~ {}: {rho:+.2}\n",
                self.snapshots.ports[i], self.snapshots.ports[j]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig13Config {
        Fig13Config {
            rounds: 60,
            interval: Duration::from_millis(60),
            alpha: 0.1,
            seed: 13,
        }
    }

    #[test]
    fn snapshots_match_both_ground_truths() {
        let f = run(&small());
        assert!(
            !f.snapshots.significant.is_empty(),
            "snapshots must find correlations in synchronized traffic"
        );
        assert!(
            f.master_is_uncorrelated(&f.snapshots),
            "idle master must not correlate: {:?}",
            f.snapshots.significant
        );
        assert_eq!(
            f.ecmp_pairs_positive(&f.snapshots),
            f.ecmp_pairs.len(),
            "every same-path pair must correlate positively under snapshots"
        );
    }

    #[test]
    fn polling_degrades_same_path_correlations() {
        // The paper's polling failed to identify the positive ECMP-path
        // correlations outright; at our (smaller) testbed scale the effect
        // appears as a systematic erosion of the correlation strength of
        // physically identical streams, while snapshots hold rho ≈ 1.
        let f = run(&small());
        let snap = f.mean_ecmp_rho(&f.snapshots);
        let poll = f.mean_ecmp_rho(&f.polling);
        assert!(snap > 0.97, "snapshots should see rho ≈ 1, got {snap:.3}");
        assert!(
            snap - poll > 0.08,
            "polling should erode the pairs: snap {snap:.3} vs poll {poll:.3}"
        );
    }
}
