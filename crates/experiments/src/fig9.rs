//! Fig. 9: synchronization of network-wide measurements.
//!
//! "Synchronization of a snapshot ID is defined as the difference between
//! the earliest and latest timestamps on any notification with that ID"
//! (§8.1). Three curves: Speedlight without channel state, with channel
//! state, and the traditional polling baseline (first-to-last read of a
//! sweep).
//!
//! Paper numbers to match in shape: snapshot median ≈ 6.4 µs, max ≈ 22 µs
//! (no CS) / 27 µs (CS, longer tail); polling median ≈ 2.6 ms.

use crate::common::{render_cdf, standard_testbed, testbed_topology};
use fabric::network::DriverConfig;
use fabric::switchmod::SnapshotConfig;
use fabric::topology::LbKind;
use netsim::time::{Duration, Instant};
use sim_stats::Cdf;
use telemetry::MetricKind;
use workloads::PoissonSource;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Snapshots per variant.
    pub snapshots: usize,
    /// Polling sweeps.
    pub sweeps: usize,
    /// Inter-snapshot period.
    pub period: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            snapshots: 200,
            sweeps: 200,
            period: Duration::from_millis(4),
            seed: 9,
        }
    }
}

/// The three curves (all in microseconds).
#[derive(Debug)]
pub struct Fig9 {
    /// Speedlight, switch state only.
    pub switch_state: Cdf,
    /// Speedlight, switch + channel state.
    pub channel_state: Cdf,
    /// Traditional counter polling.
    pub polling: Cdf,
}

fn run_variant(cfg: &Fig9Config, channel_state: bool, poll: bool) -> (Cdf, Cdf) {
    let snapshot = SnapshotConfig {
        modulus: 512,
        channel_state,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    };
    let driver = DriverConfig {
        snapshot_period: Some(cfg.period),
        poll_period: poll.then_some(cfg.period),
        ..DriverConfig::default()
    };
    let mut tb = standard_testbed(snapshot, LbKind::Ecmp, driver, cfg.seed);
    // All-to-all background traffic so snapshot IDs piggyback promptly on
    // every internal and external channel (the testbed measured while its
    // workloads ran; channel-state catch-up times depend on this).
    let topo = testbed_topology();
    for h in 0..topo.num_hosts() {
        let dsts: Vec<u32> = (0..topo.num_hosts()).filter(|&d| d != h).collect();
        tb.set_source(
            h,
            Instant::ZERO,
            Box::new(
                PoissonSource::new(
                    h,
                    dsts,
                    // Dense traffic, as on the paper's loaded testbed:
                    // channel-state catch-up latency is bounded by the
                    // per-channel packet inter-arrival time.
                    600_000.0,
                    netsim::dist::Dist::constant(700.0),
                    cfg.seed ^ u64::from(h),
                )
                .flows_per_dst(8),
            ),
        );
    }
    let horizon = cfg.period * (cfg.snapshots.max(cfg.sweeps) as u64 + 10);
    tb.run_until(Instant::ZERO + horizon);

    // Snapshot synchronization: spreads for epochs where every unit made
    // progress (at least one notification per unit).
    let min_units = tb.network().observer_expected() as u64;
    let spreads: Vec<f64> = tb
        .sync_spreads(min_units)
        .into_iter()
        .take(cfg.snapshots)
        .map(|(_, d)| d.as_micros_f64())
        .collect();
    let polls: Vec<f64> = tb
        .polls()
        .iter()
        .take(cfg.sweeps)
        .filter_map(polling::sweep_spread)
        .map(|d| d.as_micros_f64())
        .collect();
    (Cdf::new(spreads), Cdf::new(polls))
}

/// Run the experiment. The two variant simulations are independent seeded
/// runs (each builds its own testbed from `cfg.seed`), so they fan out
/// across cores; results are identical at any `SPEEDLIGHT_JOBS`.
pub fn run(cfg: &Fig9Config) -> Fig9 {
    // (channel_state, poll) per variant, in output order.
    let variants = [(false, true), (true, false)];
    let mut results = parfan::map_labeled(
        &variants,
        |_, &(cs, _)| format!("fig9 variant cs={cs} seed={}", cfg.seed),
        |_, &(cs, poll)| run_variant(cfg, cs, poll),
    );
    let (channel_state, _) = results.pop().expect("two variants");
    let (switch_state, polling) = results.pop().expect("two variants");
    Fig9 {
        switch_state,
        channel_state,
        polling,
    }
}

impl Fig9 {
    /// Render the three CDFs.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 9: CDF of synchronization of network-wide measurements (us)\n\n");
        out.push_str(&render_cdf("Switch State", &self.switch_state, 20, "us"));
        out.push('\n');
        out.push_str(&render_cdf(
            "Switch + Channel State",
            &self.channel_state,
            20,
            "us",
        ));
        out.push('\n');
        out.push_str(&render_cdf("Polling", &self.polling, 20, "us"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig9Config {
        Fig9Config {
            snapshots: 60,
            sweeps: 40,
            period: Duration::from_millis(5),
            seed: 9,
        }
    }

    #[test]
    fn snapshot_sync_is_microseconds_polling_is_milliseconds() {
        let f = run(&small());
        assert!(f.switch_state.len() >= 30, "n={}", f.switch_state.len());
        assert!(f.channel_state.len() >= 30);
        assert!(f.polling.len() >= 30);
        let m_ss = f.switch_state.median();
        let m_cs = f.channel_state.median();
        let m_poll = f.polling.median();
        // Paper ballpark: medians a handful of µs, polling ~2.6 ms.
        assert!((2.0..25.0).contains(&m_ss), "switch-state median {m_ss} us");
        assert!(
            (2.0..150.0).contains(&m_cs),
            "channel-state median {m_cs} us"
        );
        // Our virtual switches have 10 units each (the paper's had 28),
        // so the sweep is proportionally shorter than 2.6 ms; the
        // 28-unit/4-device configuration is cross-checked in
        // `polling::model::tests::paper_scale_sweep_is_milliseconds`.
        assert!(
            (700.0..5_000.0).contains(&m_poll),
            "polling median {m_poll} us"
        );
        // Two-plus orders of magnitude between snapshots and polling.
        assert!(m_poll > 50.0 * m_ss);
    }

    #[test]
    fn channel_state_has_the_longer_tail() {
        let f = run(&small());
        // "channel state synchronization has a longer tail as completion
        //  depends on all upstream neighbors advancing" (§8.1).
        assert!(
            f.channel_state.quantile(0.99) >= f.switch_state.quantile(0.99),
            "cs p99 {} < ss p99 {}",
            f.channel_state.quantile(0.99),
            f.switch_state.quantile(0.99)
        );
        // And the no-CS max stays within testbed scale (tens of µs).
        assert!(f.switch_state.max() < 120.0, "max {}", f.switch_state.max());
    }
}
