//! Experiment harness: one module per table/figure of the paper's
//! evaluation (§7.1, §8).
//!
//! Each module exposes a `run(cfg)` returning a typed result plus a
//! `render()` that prints the same rows/series the paper reports. The
//! `bench` crate wraps each in a binary (`cargo run -p bench --bin figN`)
//! and `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — Tofino resource usage per variant |
//! | [`fig9`] | Fig. 9 — synchronization CDF (snapshots vs polling) |
//! | [`fig10`] | Fig. 10 — max sustained snapshot rate vs port count |
//! | [`fig11`] | Fig. 11 — synchronization vs network size |
//! | [`fig12`] | Fig. 12 — load-balance stddev CDFs, 3 workloads |
//! | [`fig13`] | Fig. 13 — pairwise Spearman correlation of egress rates |
//! | [`ablations`] | beyond-paper design ablations (modulus, drops, …) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod table1;
