//! Trace determinism across worker counts: the merged JSONL trace of the
//! fig. 12 grid must be byte-identical at any `SPEEDLIGHT_JOBS`.
//!
//! This is the observability analogue of `parallel_equivalence`: each grid
//! cell buffers its own trace, and `fig12::grid_trace` merges the per-cell
//! buffers in input order, so neither scheduling nor worker count may leak
//! into the output.

use experiments::fig12;
use netsim::time::Duration;

fn small() -> fig12::Fig12Config {
    fig12::Fig12Config {
        duration: Duration::from_millis(60),
        snapshot_period: Duration::from_millis(2),
        poll_period: Duration::from_millis(5),
        warmup: Duration::from_millis(20),
        flowlet_gap_us: 60,
        seed: 12,
    }
}

#[test]
fn fig12_trace_is_byte_identical_across_job_counts() {
    let cfg = small();
    let serial = parfan::with_jobs(1, || fig12::grid_trace(&cfg));
    let two = parfan::with_jobs(2, || fig12::grid_trace(&cfg));
    let four = parfan::with_jobs(4, || fig12::grid_trace(&cfg));

    assert!(!serial.is_empty(), "trace must not be empty");
    // Six cells, each opening with its own trace.meta header.
    assert_eq!(
        serial
            .iter()
            .filter(|l| l.contains("\"trace.meta\""))
            .count(),
        6
    );
    assert!(serial[0].contains("\"trace.meta\""));

    assert_eq!(serial, two, "jobs=1 vs jobs=2 trace diverged");
    assert_eq!(serial, four, "jobs=1 vs jobs=4 trace diverged");
}
