//! Serial-vs-parallel equivalence: every parallelized experiment must
//! produce byte-identical results at any worker count.
//!
//! Equality is checked on the `Debug` rendering of the full result structs,
//! which covers every field (including the raw sorted CDF samples) bit for
//! bit — f64s format losslessly enough to distinguish any accumulation-order
//! difference, and a mismatch fails with a readable diff. Worker counts are
//! pinned with `parfan::with_jobs`, which overrides `SPEEDLIGHT_JOBS`
//! race-free per thread.

use experiments::{fig11, fig12, fig9};
use fabric::topology::LbKind;
use netsim::time::Duration;

fn fig9_small() -> fig9::Fig9Config {
    fig9::Fig9Config {
        snapshots: 30,
        sweeps: 20,
        period: Duration::from_millis(3),
        seed: 9,
    }
}

fn fig12_small() -> fig12::Fig12Config {
    fig12::Fig12Config {
        duration: Duration::from_millis(150),
        snapshot_period: Duration::from_millis(2),
        poll_period: Duration::from_millis(5),
        warmup: Duration::from_millis(40),
        flowlet_gap_us: 60,
        seed: 12,
    }
}

#[test]
fn fig9_parallel_matches_serial() {
    let cfg = fig9_small();
    let serial = parfan::with_jobs(1, || format!("{:?}", fig9::run(&cfg)));
    let parallel = parfan::with_jobs(4, || format!("{:?}", fig9::run(&cfg)));
    assert_eq!(serial, parallel);
}

#[test]
fn fig11_parallel_matches_serial() {
    let cfg = fig11::Fig11Config {
        router_counts: vec![10, 100, 1_000],
        units_per_router: 64,
        trials: 5,
        seed: 11,
    };
    let serial = parfan::with_jobs(1, || format!("{:?}", fig11::run(&cfg)));
    let parallel = parfan::with_jobs(4, || format!("{:?}", fig11::run(&cfg)));
    assert_eq!(serial, parallel);
}

#[test]
fn fig12_parallel_matches_serial() {
    let cfg = fig12_small();
    let serial = parfan::with_jobs(1, || format!("{:?}", fig12::run(&cfg)));
    let parallel = parfan::with_jobs(4, || format!("{:?}", fig12::run(&cfg)));
    assert_eq!(serial, parallel);
}

#[test]
fn concurrent_fig12_cells_do_not_alias_state() {
    // Regression test for the hidden-shared-state audit: a grid cell run
    // concurrently with a different cell must equal the same cell run
    // alone. If cell setup leaked state between jobs (shared RNG, shared
    // builder scratch), the co-scheduled run would diverge.
    use experiments::common::Workload;
    let cfg = fig12_small();
    let alone = format!(
        "{:?}",
        fig12::run_cell(&cfg, Workload::Hadoop, LbKind::Ecmp)
    );
    let cells = [
        (Workload::Hadoop, LbKind::Ecmp),
        (Workload::Memcache, LbKind::Flowlet { gap_us: 60 }),
    ];
    let co_scheduled = parfan::with_jobs(2, || {
        parfan::map(&cells, |_, &(w, lb)| {
            format!("{:?}", fig12::run_cell(&cfg, w, lb))
        })
    });
    assert_eq!(co_scheduled[0], alone);
}
