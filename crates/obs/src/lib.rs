//! Deterministic structured tracing + metrics.
//!
//! Every evaluation number in this repository comes out of a deterministic
//! simulation, and DESIGN.md §10's contract says results are byte-identical
//! at any `SPEEDLIGHT_JOBS`. This crate extends that contract to
//! *introspection*: structured events ([`Event`]), spans ([`Span`]), and a
//! metrics registry ([`metrics::Metrics`]) whose serialized output is part
//! of the deterministic surface.
//!
//! The rules that make that work:
//!
//! * **Sim-time timestamps.** Deterministic crates (netsim, core, fabric,
//!   conformance, experiments) stamp events with simulated nanoseconds.
//!   Wall-clock timestamps are legal only inside the threaded emulation and
//!   the bench binaries — never in a trace that claims byte-equality.
//! * **Static-dispatch sinks.** Instrumented code is generic over
//!   [`Sink`]; the [`NoopSink`] monomorphization has `enabled() == false`
//!   as a constant, so the disabled path folds to nothing. Hot loops pay
//!   one predictable branch at most (see the bench regression gate).
//! * **No floats in events.** [`Value`] carries integers, booleans, and
//!   strings only; float formatting is locale/rounding bait and has no
//!   place in a byte-compared artifact.
//! * **Input-order merge.** Parallel fan-outs buffer per job and merge
//!   with [`sinks::merge_job_lines`], inheriting parfan's input-order
//!   result contract — the merged trace is identical at any job count.
//!
//! ```
//! use obs::{event, NoopSink, Sink};
//! let mut sink = obs::sinks::JsonlSink::new();
//! event!(&mut sink, 1_000, "snap.initiate", epoch = 1u64, devices = 4u64);
//! assert_eq!(
//!     sink.lines(),
//!     [r#"{"t":1000,"ev":"snap.initiate","epoch":1,"devices":4}"#]
//! );
//! // The disabled path does not even construct the event:
//! event!(&mut NoopSink, 1_000, "never", cost = 0u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod sinks;

/// Environment variable selecting the default trace sink
/// (`off` | `ring` | `jsonl`).
pub const OBS_ENV: &str = "SPEEDLIGHT_OBS";

/// Environment variable naming the JSONL trace output path.
pub const TRACE_ENV: &str = "SPEEDLIGHT_TRACE";

/// Schema tag carried by the `trace.meta` header event of every trace.
pub const TRACE_SCHEMA: &str = "speedlight-trace/v1";

/// A field value. Deliberately float-free: traces are compared
/// byte-for-byte, and integer/bool/string rendering is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Static string (event vocabulary, enum labels).
    Str(&'static str),
    /// Owned string (rare: labels built at runtime).
    Owned(String),
}

impl Value {
    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Owned(s) => Some(s),
            _ => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => json::push_quoted(out, s),
            Value::Owned(s) => json::push_quoted(out, s),
        }
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::U64(v as u64)
            }
        }
    )*};
}
value_from_uint!(u64, u32, u16, u8, usize);

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Owned(v)
    }
}

/// One structured event: a sim-time (or, in emulation, wall-clock)
/// timestamp in nanoseconds, a static name, and ordered fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Timestamp, nanoseconds.
    pub t_ns: u64,
    /// Event name (dotted vocabulary, e.g. `snap.initiate`).
    pub name: &'static str,
    /// Fields, in emission order (the JSONL field order).
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Start an event with no fields.
    pub fn new(t_ns: u64, name: &'static str) -> Event {
        Event {
            t_ns,
            name,
            fields: Vec::new(),
        }
    }

    /// Append a field (builder-style; order is preserved into the JSONL).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Look a field up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Render as one JSONL line: `{"t":<ns>,"ev":"<name>",<fields...>}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * self.fields.len());
        out.push_str("{\"t\":");
        out.push_str(&self.t_ns.to_string());
        out.push_str(",\"ev\":");
        json::push_quoted(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            json::push_quoted(&mut out, key);
            out.push(':');
            value.render(&mut out);
        }
        out.push('}');
        out
    }
}

/// An event consumer. Instrumented code is generic over this trait so that
/// the [`NoopSink`] instantiation constant-folds: `enabled()` is `false`
/// at compile time and the `event!` body disappears entirely.
pub trait Sink {
    /// Whether events should be constructed at all. Implementations must
    /// keep this cheap — it guards hot paths.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event. Only called when [`Sink::enabled`] is true.
    fn record(&mut self, ev: Event);
}

/// The disabled sink: `enabled()` is a compile-time `false`, so generic
/// instrumentation instantiated with it compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ev: Event) {}
}

impl<S: Sink + ?Sized> Sink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, ev: Event) {
        (**self).record(ev)
    }
}

/// Emit one event into a sink, constructing it only when the sink is
/// enabled.
///
/// `event!(sink, t_ns, "name", key = value, ...)` — `sink` is any
/// `&mut impl Sink` expression; field keys become JSONL keys verbatim.
#[macro_export]
macro_rules! event {
    ($sink:expr, $t:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let obs_sink = &mut *$sink;
        if $crate::Sink::enabled(obs_sink) {
            let obs_event = $crate::Event::new($t, $name)$(.with(stringify!($key), $val))*;
            $crate::Sink::record(obs_sink, obs_event);
        }
    }};
}

/// An in-flight span. Created by [`span!`] (or [`Span::begin`]); calling
/// [`Span::end`] emits a single event carrying the start timestamp and a
/// `dur_ns` field. Creation allocates nothing until a field is attached,
/// so an un-ended span on the disabled path is free.
#[derive(Debug, Clone)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Open a span at `t_ns`.
    pub fn begin(name: &'static str, t_ns: u64) -> Span {
        Span {
            name,
            start_ns: t_ns,
            fields: Vec::new(),
        }
    }

    /// Attach a field (recorded on the close event).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Close the span at `t_ns`, emitting one event stamped with the span's
    /// *start* time plus a `dur_ns` field (saturating if clocks regress).
    pub fn end(self, sink: &mut impl Sink, t_ns: u64) {
        if !sink.enabled() {
            return;
        }
        let mut ev = Event {
            t_ns: self.start_ns,
            name: self.name,
            fields: self.fields,
        };
        ev.fields
            .push(("dur_ns", Value::U64(t_ns.saturating_sub(self.start_ns))));
        sink.record(ev);
    }
}

/// Open a [`Span`]: `span!("name", t_ns, key = value, ...)`.
#[macro_export]
macro_rules! span {
    ($name:expr, $t:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::Span::begin($name, $t)$(.with(stringify!($key), $val))*
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::JsonlSink;

    #[test]
    fn event_renders_fields_in_order() {
        let ev = Event::new(42, "snap.complete")
            .with("epoch", 7u64)
            .with("forced", false)
            .with("why", "ok");
        assert_eq!(
            ev.to_jsonl(),
            r#"{"t":42,"ev":"snap.complete","epoch":7,"forced":false,"why":"ok"}"#
        );
        assert_eq!(ev.get("epoch").and_then(Value::as_u64), Some(7));
        assert_eq!(ev.get("missing"), None);
    }

    #[test]
    fn noop_sink_is_disabled_and_event_macro_skips_it() {
        let mut sink = NoopSink;
        assert!(!Sink::enabled(&sink));
        // The side effect in the field expression must not run: the macro
        // guards construction behind `enabled()`.
        let mut evaluated = false;
        event!(
            &mut sink,
            1,
            "never",
            cost = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "disabled sink must not evaluate field values");
    }

    #[test]
    fn event_macro_records_into_enabled_sink() {
        let mut sink = JsonlSink::new();
        event!(&mut sink, 5, "a", x = 1u64);
        event!(&mut sink, 6, "b");
        assert_eq!(
            sink.lines(),
            [r#"{"t":5,"ev":"a","x":1}"#, r#"{"t":6,"ev":"b"}"#]
        );
    }

    #[test]
    fn span_emits_start_time_and_duration() {
        let mut sink = JsonlSink::new();
        let span = span!("epoch", 100, epoch = 3u64);
        span.end(&mut sink, 250);
        assert_eq!(
            sink.lines(),
            [r#"{"t":100,"ev":"epoch","epoch":3,"dur_ns":150}"#]
        );
        // Disabled path: nothing recorded, no panic.
        span!("never", 0).end(&mut NoopSink, 10);
    }

    #[test]
    fn span_duration_saturates_on_clock_regression() {
        let mut sink = JsonlSink::new();
        Span::begin("s", 100).end(&mut sink, 40);
        assert_eq!(sink.lines(), [r#"{"t":100,"ev":"s","dur_ns":0}"#]);
    }

    #[test]
    fn signed_and_string_values_render_exactly() {
        let ev = Event::new(0, "v")
            .with("neg", -3i64)
            .with("owned", String::from("a\"b"));
        assert_eq!(ev.to_jsonl(), r#"{"t":0,"ev":"v","neg":-3,"owned":"a\"b"}"#);
    }
}
