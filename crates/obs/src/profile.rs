//! Deterministic profiling: per-domain sim-time accounting for the
//! sharded DES plus observer-pipeline stage series, exported as a
//! schema'd `speedlight-profile/v1` JSON artifact with an FNV digest.
//!
//! Everything here is integer sim-time arithmetic — the profile is part
//! of the byte-identical surface and must render the same bytes at any
//! `SPEEDLIGHT_JOBS` × shard count. The key to that is accounting **per
//! partition domain**, not per OS shard: a domain's event stream is the
//! sharded engine's invariant unit (DESIGN.md §15), while the packing of
//! domains onto shards is exactly what varies. Per-shard views are a
//! presentation-layer fold the bench binaries print for humans.
//!
//! **Stall definition.** The conservative window barrier opens each
//! window at the global minimum next-event time `T` with horizon
//! `H = T + lookahead`. A domain that exhausts its local work at
//! sim-time `t < H` conceptually idles for `H − t` of sim-time until the
//! barrier; a domain untouched by a window idles for the full window.
//! We fold that as
//!
//! ```text
//! stall(d) = active_stall(d) + (windows − touched_windows(d)) · lookahead
//! ```
//!
//! where `active_stall(d)` sums `H − last_event_time(d)` over windows in
//! which `d` executed at least one event. Every counted window processes
//! at least one event somewhere, and the window sequence is a function of
//! the merged event timeline alone, so the totals are shard-invariant.

use crate::json;

/// Schema tag written into every profile export.
pub const PROFILE_SCHEMA: &str = "speedlight-profile/v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64 over a byte slice. Inlined here because `obs` is
/// dependency-free by design; matches `parfan::digest` bit-for-bit.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Sentinel in `last_event`: domain untouched in the current window.
const UNTOUCHED: u64 = u64::MAX;

/// Per-domain sim-time accounting for one engine replica. The sharded
/// fabric keeps one per shard and [`DomainProfiler::merge_from`]s them;
/// the serial engine keeps one and reconstructs the window sequence
/// itself via [`DomainProfiler::observe_windowed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainProfiler {
    lookahead_ns: u64,
    windows: u64,
    events: Vec<u64>,
    msgs_out: Vec<u64>,
    msgs_in: Vec<u64>,
    active_stall: Vec<u64>,
    touched_windows: Vec<u64>,
    /// Time of the domain's most recent event in the open window, or
    /// [`UNTOUCHED`].
    last_event: Vec<u64>,
    /// Scratch list of domains touched in the open window, so closing a
    /// window costs O(touched), not O(domains).
    touched: Vec<u32>,
    /// Serial-engine window reconstruction: is a window open, and where
    /// is its horizon. Unused by the sharded engine (the barrier tells it
    /// the horizons directly).
    win_open: bool,
    win_horizon: u64,
}

impl DomainProfiler {
    /// A profiler over `domains` partition domains with the engine's
    /// window lookahead.
    pub fn new(domains: usize, lookahead_ns: u64) -> DomainProfiler {
        DomainProfiler {
            lookahead_ns,
            windows: 0,
            events: vec![0; domains],
            msgs_out: vec![0; domains],
            msgs_in: vec![0; domains],
            active_stall: vec![0; domains],
            touched_windows: vec![0; domains],
            last_event: vec![UNTOUCHED; domains],
            touched: Vec::new(),
            win_open: false,
            win_horizon: 0,
        }
    }

    /// Record one executed event for `domain` at sim-time `t_ns`.
    /// Sharded path: the engine closes windows via
    /// [`DomainProfiler::window_close`].
    #[inline]
    pub fn observe(&mut self, domain: usize, t_ns: u64) {
        self.events[domain] += 1;
        if self.last_event[domain] == UNTOUCHED {
            self.touched.push(domain as u32);
        }
        self.last_event[domain] = t_ns;
    }

    /// Record one executed event for `domain` at `t_ns` on the **serial**
    /// engine, reconstructing the window sequence: a window opens at the
    /// first event time `T` with horizon `T + lookahead`, and the first
    /// event at or past the horizon closes it and opens the next. This
    /// reproduces the barrier engine's windows exactly, because a window
    /// holds precisely the chronological events in `[T, T + lookahead)`.
    #[inline]
    pub fn observe_windowed(&mut self, domain: usize, t_ns: u64) {
        if self.win_open && t_ns >= self.win_horizon {
            let horizon = self.win_horizon;
            self.window_close(horizon);
            self.win_open = false;
        }
        if !self.win_open {
            self.win_open = true;
            self.win_horizon = t_ns.saturating_add(self.lookahead_ns);
        }
        self.observe(domain, t_ns);
    }

    /// Record one cross-domain emission from `src` to `dst`.
    #[inline]
    pub fn msg(&mut self, src: usize, dst: usize) {
        self.msgs_out[src] += 1;
        self.msgs_in[dst] += 1;
    }

    /// Close the window whose horizon is `horizon_ns`: charge each
    /// touched domain its barrier gap and bump the window count. The
    /// sharded engine calls this on **every** shard at **every** window
    /// (event-less shards included), so every replica counts the same
    /// window total and the merge can insist on it.
    pub fn window_close(&mut self, horizon_ns: u64) {
        self.windows += 1;
        for &d in &self.touched {
            let d = d as usize;
            let last = self.last_event[d];
            self.active_stall[d] += horizon_ns.saturating_sub(last);
            self.touched_windows[d] += 1;
            self.last_event[d] = UNTOUCHED;
        }
        self.touched.clear();
    }

    /// Close any window left open by [`DomainProfiler::observe_windowed`]
    /// at its recorded horizon. The serial engine calls this at run
    /// boundaries, mirroring the barrier engine's deadline truncation.
    pub fn close_boundary(&mut self) {
        if self.win_open {
            let horizon = self.win_horizon;
            self.window_close(horizon);
            self.win_open = false;
        }
    }

    /// Fold another replica's accounting into this one. Windows are a
    /// global property — every replica must have counted the same number
    /// — so they are checked, not summed; all per-domain series sum.
    ///
    /// # Panics
    /// If the replicas disagree on domain count, lookahead, or windows.
    pub fn merge_from(&mut self, other: &DomainProfiler) {
        assert_eq!(
            self.events.len(),
            other.events.len(),
            "profiler merge: domain count mismatch"
        );
        assert_eq!(
            self.lookahead_ns, other.lookahead_ns,
            "profiler merge: lookahead mismatch"
        );
        assert_eq!(
            self.windows, other.windows,
            "profiler merge: window count mismatch (barrier desync?)"
        );
        for (a, b) in self.events.iter_mut().zip(&other.events) {
            *a += b;
        }
        for (a, b) in self.msgs_out.iter_mut().zip(&other.msgs_out) {
            *a += b;
        }
        for (a, b) in self.msgs_in.iter_mut().zip(&other.msgs_in) {
            *a += b;
        }
        for (a, b) in self.active_stall.iter_mut().zip(&other.active_stall) {
            *a += b;
        }
        for (a, b) in self.touched_windows.iter_mut().zip(&other.touched_windows) {
            *a += b;
        }
    }

    /// Number of partition domains tracked.
    pub fn domains(&self) -> usize {
        self.events.len()
    }

    /// Window lookahead in nanoseconds.
    pub fn lookahead_ns(&self) -> u64 {
        self.lookahead_ns
    }

    /// Closed windows so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Events executed by `domain`.
    pub fn events_of(&self, domain: usize) -> u64 {
        self.events[domain]
    }

    /// Cross-domain messages emitted by `domain`.
    pub fn msgs_out_of(&self, domain: usize) -> u64 {
        self.msgs_out[domain]
    }

    /// Cross-domain messages destined for `domain`.
    pub fn msgs_in_of(&self, domain: usize) -> u64 {
        self.msgs_in[domain]
    }

    /// Total barrier stall for `domain` in sim-nanoseconds (see the
    /// module docs for the definition).
    pub fn stall_ns_of(&self, domain: usize) -> u64 {
        let idle_windows = self.windows - self.touched_windows[domain];
        self.active_stall[domain] + idle_windows.saturating_mul(self.lookahead_ns)
    }
}

/// One domain's row in the rendered profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRow {
    /// Domain id (partition-table index).
    pub id: u32,
    /// Domain kind label: `device`, `host`, or `control`.
    pub kind: &'static str,
    /// Events executed.
    pub events: u64,
    /// Cross-domain messages emitted.
    pub msgs_out: u64,
    /// Cross-domain messages received.
    pub msgs_in: u64,
    /// Barrier stall, sim-nanoseconds.
    pub stall_ns: u64,
}

/// Observer-pipeline stage occupancy at one seal point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRow {
    /// Epoch sealed at this sample.
    pub epoch: u64,
    /// Peak collect-queue depth since the previous seal.
    pub collect: u64,
    /// Peak validated-queue depth since the previous seal.
    pub validated: u64,
    /// Peak ready-queue depth since the previous seal.
    pub ready: u64,
    /// Peak sealed-queue depth since the previous seal.
    pub sealed: u64,
    /// Peak pending-value count since the previous seal.
    pub pending_values: u64,
}

/// Observer-pipeline section of the profile (absent when the reference
/// observer is in use).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineSection {
    /// Reports offered to the pipeline.
    pub offered: u64,
    /// Reports rejected by collect-stage backpressure.
    pub backpressure_rejects: u64,
    /// Reports accepted into collect.
    pub accepted: u64,
    /// Whole-run peak collect depth.
    pub peak_collect: u64,
    /// Whole-run peak validated depth.
    pub peak_validated: u64,
    /// Whole-run peak ready depth.
    pub peak_ready: u64,
    /// Whole-run peak sealed depth.
    pub peak_sealed: u64,
    /// Whole-run peak pending-value count.
    pub peak_pending_values: u64,
    /// Per-seal interval peaks, in seal order.
    pub stages: Vec<StageRow>,
    /// Stage samples dropped after the series cap was hit.
    pub stages_dropped: u64,
}

/// A complete profile, ready to render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Window lookahead (0 when no DES accounting was active).
    pub lookahead_ns: u64,
    /// Window count.
    pub windows: u64,
    /// Per-domain rows, in domain-id order.
    pub domains: Vec<DomainRow>,
    /// Observer-pipeline section, when the staged pipeline ran.
    pub pipeline: Option<PipelineSection>,
}

impl Profile {
    /// Render the schema'd JSON artifact. The trailing `digest` field is
    /// FNV-1a 64 over every byte that precedes it, so two profiles agree
    /// iff their digests do.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": ");
        out.push_str(&json::quoted(PROFILE_SCHEMA));
        out.push_str(",\n  \"lookahead_ns\": ");
        out.push_str(&self.lookahead_ns.to_string());
        out.push_str(",\n  \"windows\": ");
        out.push_str(&self.windows.to_string());
        let events_total: u64 = self.domains.iter().map(|d| d.events).sum();
        let msgs_total: u64 = self.domains.iter().map(|d| d.msgs_out).sum();
        out.push_str(",\n  \"events_total\": ");
        out.push_str(&events_total.to_string());
        out.push_str(",\n  \"msgs_total\": ");
        out.push_str(&msgs_total.to_string());
        out.push_str(",\n  \"domains\": [");
        for (i, d) in self.domains.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"id\":{},\"kind\":\"{}\",\"events\":{},\"msgs_out\":{},\"msgs_in\":{},\"stall_ns\":{}}}",
                d.id, d.kind, d.events, d.msgs_out, d.msgs_in, d.stall_ns
            ));
        }
        if !self.domains.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        match &self.pipeline {
            None => out.push_str(",\n  \"pipeline\": null"),
            Some(p) => {
                out.push_str(",\n  \"pipeline\": {");
                out.push_str(&format!("\n    \"offered\": {}", p.offered));
                out.push_str(&format!(
                    ",\n    \"backpressure_rejects\": {}",
                    p.backpressure_rejects
                ));
                out.push_str(&format!(",\n    \"accepted\": {}", p.accepted));
                out.push_str(&format!(",\n    \"peak_collect\": {}", p.peak_collect));
                out.push_str(&format!(",\n    \"peak_validated\": {}", p.peak_validated));
                out.push_str(&format!(",\n    \"peak_ready\": {}", p.peak_ready));
                out.push_str(&format!(",\n    \"peak_sealed\": {}", p.peak_sealed));
                out.push_str(&format!(
                    ",\n    \"peak_pending_values\": {}",
                    p.peak_pending_values
                ));
                out.push_str(",\n    \"stages\": [");
                for (i, s) in p.stages.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&format!(
                        "      {{\"epoch\":{},\"collect\":{},\"validated\":{},\"ready\":{},\"sealed\":{},\"pending_values\":{}}}",
                        s.epoch, s.collect, s.validated, s.ready, s.sealed, s.pending_values
                    ));
                }
                if !p.stages.is_empty() {
                    out.push_str("\n    ");
                }
                out.push(']');
                out.push_str(&format!(
                    ",\n    \"stages_dropped\": {}\n  }}",
                    p.stages_dropped
                ));
            }
        }
        let digest = fnv64(out.as_bytes());
        out.push_str(&format!(",\n  \"digest\": \"{digest:016x}\"\n}}\n"));
        out
    }

    /// The digest this profile renders with (hex, 16 chars).
    pub fn digest_hex(&self) -> String {
        extract_digest(&self.to_json()).unwrap_or_default()
    }
}

/// Pull the `digest` field out of a rendered profile (for CI pinning and
/// cross-run agreement checks without re-parsing the whole artifact).
pub fn extract_digest(rendered: &str) -> Option<String> {
    let tail = rendered.rsplit("\"digest\": \"").next()?;
    let end = tail.find('"')?;
    let hex = &tail[..end];
    (hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit())).then(|| hex.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn stall_counts_gap_to_horizon_for_touched_windows() {
        let mut p = DomainProfiler::new(2, 100);
        // Window [0, 100): domain 0 at t=10, domain 1 at t=90.
        p.observe(0, 10);
        p.observe(1, 90);
        p.window_close(100);
        assert_eq!(p.windows(), 1);
        assert_eq!(p.stall_ns_of(0), 90);
        assert_eq!(p.stall_ns_of(1), 10);
        // Window [200, 300): only domain 0, two events; last one counts.
        p.observe(0, 210);
        p.observe(0, 250);
        p.window_close(300);
        assert_eq!(p.events_of(0), 3);
        assert_eq!(p.stall_ns_of(0), 90 + 50);
        // Domain 1 idled through the whole second window: full lookahead.
        assert_eq!(p.stall_ns_of(1), 10 + 100);
    }

    #[test]
    fn windowed_observation_reconstructs_barrier_windows() {
        // Lookahead 100: events at 0, 50, 99 share a window; 100 opens the
        // next; 250 opens a third (horizon 200 closes at the 250 event).
        let mut serial = DomainProfiler::new(1, 100);
        for t in [0, 50, 99, 100, 250] {
            serial.observe_windowed(0, t);
        }
        serial.close_boundary();

        let mut barrier = DomainProfiler::new(1, 100);
        barrier.observe(0, 0);
        barrier.observe(0, 50);
        barrier.observe(0, 99);
        barrier.window_close(100);
        barrier.observe(0, 100);
        barrier.window_close(200);
        barrier.observe(0, 250);
        barrier.window_close(350);

        assert_eq!(serial.windows(), barrier.windows());
        assert_eq!(serial.events_of(0), barrier.events_of(0));
        assert_eq!(serial.stall_ns_of(0), barrier.stall_ns_of(0));
        assert_eq!(serial.windows(), 3);
        // Stalls: 100−99, 200−100, 350−250.
        assert_eq!(serial.stall_ns_of(0), 1 + 100 + 100);
    }

    #[test]
    fn close_boundary_is_idempotent_and_noop_when_no_window_open() {
        let mut p = DomainProfiler::new(1, 10);
        p.close_boundary();
        assert_eq!(p.windows(), 0);
        p.observe_windowed(0, 5);
        p.close_boundary();
        p.close_boundary();
        assert_eq!(p.windows(), 1);
        assert_eq!(p.stall_ns_of(0), 10);
    }

    #[test]
    fn merge_sums_domains_and_checks_windows() {
        let mut a = DomainProfiler::new(2, 100);
        a.observe(0, 10);
        a.msg(0, 1);
        a.window_close(100);
        let mut b = DomainProfiler::new(2, 100);
        b.observe(1, 20);
        b.window_close(100);
        a.merge_from(&b);
        assert_eq!(a.windows(), 1);
        assert_eq!(a.events_of(0), 1);
        assert_eq!(a.events_of(1), 1);
        assert_eq!(a.msgs_out_of(0), 1);
        assert_eq!(a.msgs_in_of(1), 1);
        assert_eq!(a.stall_ns_of(0), 90);
        assert_eq!(a.stall_ns_of(1), 80);
    }

    #[test]
    #[should_panic(expected = "window count mismatch")]
    fn merge_rejects_window_count_disagreement() {
        let mut a = DomainProfiler::new(1, 10);
        a.window_close(10);
        let b = DomainProfiler::new(1, 10);
        a.merge_from(&b);
    }

    fn sample_profile() -> Profile {
        Profile {
            lookahead_ns: 300,
            windows: 2,
            domains: vec![
                DomainRow {
                    id: 0,
                    kind: "device",
                    events: 5,
                    msgs_out: 2,
                    msgs_in: 1,
                    stall_ns: 40,
                },
                DomainRow {
                    id: 1,
                    kind: "control",
                    events: 3,
                    msgs_out: 1,
                    msgs_in: 2,
                    stall_ns: 550,
                },
            ],
            pipeline: Some(PipelineSection {
                offered: 10,
                accepted: 9,
                backpressure_rejects: 1,
                peak_collect: 4,
                stages: vec![StageRow {
                    epoch: 1,
                    collect: 4,
                    validated: 2,
                    ready: 1,
                    sealed: 1,
                    pending_values: 3,
                }],
                ..PipelineSection::default()
            }),
        }
    }

    #[test]
    fn profile_render_is_schema_tagged_and_digest_stable() {
        let p = sample_profile();
        let a = p.to_json();
        let b = p.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"speedlight-profile/v1\""));
        assert!(a.contains("\"events_total\": 8"));
        assert!(a.contains("\"msgs_total\": 3"));
        let digest = extract_digest(&a).expect("digest present");
        assert_eq!(digest.len(), 16);
        assert_eq!(p.digest_hex(), digest);
        // The digest covers everything before it.
        let body_end = a.rfind(",\n  \"digest\"").unwrap();
        assert_eq!(digest, format!("{:016x}", fnv64(a[..body_end].as_bytes())));
    }

    #[test]
    fn profile_digest_distinguishes_contents() {
        let base = sample_profile();
        let mut tweaked = base.clone();
        tweaked.domains[0].stall_ns += 1;
        assert_ne!(base.digest_hex(), tweaked.digest_hex());
    }

    #[test]
    fn profile_without_pipeline_renders_null_section() {
        let p = Profile {
            lookahead_ns: 0,
            windows: 0,
            domains: Vec::new(),
            pipeline: None,
        };
        let j = p.to_json();
        assert!(j.contains("\"pipeline\": null"));
        assert!(j.contains("\"domains\": []"));
        assert!(extract_digest(&j).is_some());
    }
}
