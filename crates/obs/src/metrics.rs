//! Deterministic metrics registry: monotone counters, gauges, and
//! fixed-bucket histograms, exporting schema'd JSON with BTreeMap key
//! order — byte-stable across runs, like everything else in this crate.

use std::collections::BTreeMap;

use crate::json;

/// Schema tag written into every metrics export.
pub const METRICS_SCHEMA: &str = "speedlight-metrics/v1";

/// Bucket upper bounds (inclusive, nanoseconds) for snapshot completion
/// latency: 10µs .. 500ms, roughly log-spaced. Fixed bounds keep exports
/// comparable across runs and commits.
pub const LATENCY_BOUNDS_NS: [u64; 14] = [
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
];

/// Bucket upper bounds (inclusive) for queue-depth distributions.
pub const DEPTH_BOUNDS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `v <= bounds[i]` (and `v > bounds[i-1]`); one extra overflow bucket
/// counts everything above the last bound. Bounds must be strictly
/// increasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u128,
}

impl Histogram {
    /// Create a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.sum += u128::from(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram into this one (bucketwise count sums plus
    /// the observation sum). Both sides must have been created with the
    /// same bounds — merging differently-shaped histograms would silently
    /// misattribute observations, so it is a hard error.
    ///
    /// # Panics
    /// If the bounds differ.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
    }

    /// Exact nearest-rank quantile over the bucketed distribution,
    /// integer-only: for `p_pct` in 1..=100 and `n` observations, find
    /// the bucket containing rank `⌈p·n/100⌉` and return its inclusive
    /// upper bound — the tightest bound `b` such that at least `p%` of
    /// observations are ≤ `b`. Returns `None` when the histogram is
    /// empty or the rank lands in the overflow bucket (the quantile
    /// exceeds every configured bound).
    ///
    /// # Panics
    /// If `p_pct` is 0 or above 100.
    pub fn quantile(&self, p_pct: u64) -> Option<u64> {
        assert!(
            (1..=100).contains(&p_pct),
            "quantile percentile must be in 1..=100"
        );
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Nearest-rank: ⌈p·n/100⌉ in u128 so huge counts cannot overflow.
        let rank = (u128::from(p_pct) * u128::from(n)).div_ceil(100) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The overflow bucket has no upper bound: `get` yields None.
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"sum\":");
        out.push_str(&self.sum.to_string());
        for &(key, p) in &[("p50", 50), ("p90", 90), ("p99", 99)] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            match self.quantile(p) {
                Some(v) => out.push_str(&v.to_string()),
                None => out.push_str("null"),
            }
        }
        out.push('}');
        out
    }
}

/// The metrics registry. All maps are `BTreeMap` so the JSON export has
/// a single canonical key order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increment the counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment the counter `name` by `delta` (counters are monotone;
    /// there is deliberately no decrement).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Raise gauge `name` to `value` if it is higher than the current
    /// reading (high-water marks: queue depths, in-flight snapshots).
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name`, creating it with `bounds` on
    /// first use. All observation sites for one name must agree on the
    /// bounds (use the shared consts above).
    pub fn observe(&mut self, name: &'static str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// The histogram `name`, if any observation has been recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another registry into this one, using each kind's natural
    /// combination rule:
    ///
    /// * counters sum (they are monotone event counts),
    /// * histograms sum bucketwise (same-bounds requirement as
    ///   [`Histogram::merge_from`]),
    /// * gauges whose name ends in `_max` take the max (high-water marks
    ///   combine as maxima), every other gauge sums (levels/totals read
    ///   from disjoint state partitions).
    ///
    /// This is the merge rule the sharded simulation uses to combine
    /// per-shard registries: each shard only ever touches its own domains'
    /// metrics, so sums over shards reconstruct the single-process totals.
    pub fn merge_from(&mut self, other: &Metrics) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            if k.ends_with("_max") {
                let g = self.gauges.entry(k).or_insert(0);
                *g = (*g).max(v);
            } else {
                *self.gauges.entry(k).or_insert(0) += v;
            }
        }
        for (&k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge_from(h),
                None => {
                    self.histograms.insert(k, h.clone());
                }
            }
        }
    }

    /// True when nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Export the registry as pretty-stable JSON: schema tag, then the
    /// three sections with keys in BTreeMap (lexicographic) order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": ");
        out.push_str(&json::quoted(METRICS_SCHEMA));
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&json::quoted(k));
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&json::quoted(k));
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&json::quoted(k));
            out.push_str(": ");
            out.push_str(&h.to_json());
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let mut m = Metrics::new();
        m.gauge_max("depth", 3);
        m.gauge_max("depth", 1);
        assert_eq!(m.gauge("depth"), Some(3));
        m.gauge_set("depth", 1);
        assert_eq!(m.gauge("depth"), Some(1));
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_high_water_gauges() {
        let mut a = Metrics::new();
        a.add("events", 3);
        a.gauge_set("depth", 4);
        a.gauge_max("queue_max", 7);
        a.observe("lat", &[10, 20], 5);
        let mut b = Metrics::new();
        b.add("events", 2);
        b.inc("only_b");
        b.gauge_set("depth", 6);
        b.gauge_max("queue_max", 3);
        b.observe("lat", &[10, 20], 15);
        b.observe("other", &[1], 9);
        a.merge_from(&b);
        assert_eq!(a.counter("events"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("depth"), Some(10));
        assert_eq!(a.gauge("queue_max"), Some(7));
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 20);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merging_mismatched_histogram_bounds_panics() {
        let mut a = Histogram::new(&[1, 2]);
        a.merge_from(&Histogram::new(&[1, 3]));
    }

    #[test]
    fn export_is_byte_stable_and_schema_tagged() {
        let mut m = Metrics::new();
        m.inc("b");
        m.inc("a");
        m.gauge_set("g", 7);
        m.observe("h", &[10, 20], 15);
        let a = m.to_json();
        let b = m.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"speedlight-metrics/v1\""));
        // BTreeMap order: "a" before "b" regardless of insertion order.
        assert!(a.find("\"a\"").unwrap() < a.find("\"b\"").unwrap());
        assert!(a.contains("\"bounds\":[10,20]"));
        assert!(a.contains("\"counts\":[0,1,0]"));
    }

    #[test]
    fn nearest_rank_quantiles_hit_exact_bucket_boundaries() {
        // 10 observations: ranks are exact multiples of n/100.
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [1, 2, 3, 4, 5, 15, 15, 25, 25, 25] {
            h.observe(v);
        }
        // p50 → rank 5 → still in the ≤10 bucket (cum 5 ≥ 5).
        assert_eq!(h.quantile(50), Some(10));
        // p51 → rank ⌈5.1⌉ = 6 → the ≤20 bucket.
        assert_eq!(h.quantile(51), Some(20));
        // p70 → rank 7 → ≤20; p71 → rank 8 → ≤30.
        assert_eq!(h.quantile(70), Some(20));
        assert_eq!(h.quantile(71), Some(30));
        assert_eq!(h.quantile(90), Some(30));
        assert_eq!(h.quantile(99), Some(30));
        assert_eq!(h.quantile(100), Some(30));
        // p1..p10 all map to rank 1 → first bucket.
        assert_eq!(h.quantile(1), Some(10));
    }

    #[test]
    fn quantile_single_observation_and_overflow_bucket() {
        let mut h = Histogram::new(&[10]);
        assert_eq!(h.quantile(50), None, "empty histogram has no quantiles");
        h.observe(7);
        assert_eq!(h.quantile(1), Some(10));
        assert_eq!(h.quantile(100), Some(10));
        // An overflow observation pushes the tail quantiles out of range.
        h.observe(999);
        assert_eq!(h.quantile(50), Some(10));
        assert_eq!(h.quantile(99), None, "overflow bucket has no upper bound");
    }

    #[test]
    #[should_panic(expected = "1..=100")]
    fn quantile_percentile_zero_is_rejected() {
        let _ = Histogram::new(&[1]).quantile(0);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let mut m = Metrics::new();
        m.observe("h", &[10, 20], 15);
        let j = m.to_json();
        assert!(j.contains("\"p50\":20,\"p90\":20,\"p99\":20"));
        let mut m2 = Metrics::new();
        m2.observe("h", &[10], 99);
        assert!(m2.to_json().contains("\"p50\":null"));
    }

    #[test]
    fn empty_export_still_has_all_sections() {
        let m = Metrics::new();
        let j = m.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"gauges\": {}"));
        assert!(j.contains("\"histograms\": {}"));
    }
}
