//! Minimal JSON helpers: exact-byte rendering for the writers, a flat
//! one-object-per-line parser for the trace CLI and the golden tests.
//!
//! The renderer never formats floats (see [`crate::Value`]); the parser
//! accepts numbers, strings, and booleans in a single flat object — the
//! only shape [`crate::Event::to_jsonl`] produces.

/// Append `s` to `out` as a quoted JSON string, escaping `"`, `\`,
/// control characters, and nothing else — stable bytes, no locale.
pub fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` rendered as a quoted JSON string.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_quoted(&mut out, s);
    out
}

/// A parsed field value from one trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Unsigned integer (the common case: timestamps, ids, counts).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl JsonValue {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Look up a key in a parsed line's field list (first match wins).
pub fn field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse one flat JSONL object (`{"k":v,...}`) into ordered key/value
/// pairs. Rejects nesting, `null`, and floats — none of which the event
/// writer emits — with a byte-offset error message.
pub fn parse_line(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        p.pos, other
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at byte {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad code point at byte {}", self.pos))?,
                        );
                    }
                    other => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            other.map(|b| b as char),
                            self.pos
                        ))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the UTF-8 sequence starting one byte back.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| format!("bad UTF-8 at byte {start}"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'-') => {
                self.pos += 1;
                let n = self.uint()?;
                let v = i64::try_from(n)
                    .map_err(|_| format!("integer overflow at byte {}", self.pos))?;
                Ok(JsonValue::I64(-v))
            }
            Some(b'0'..=b'9') => Ok(JsonValue::U64(self.uint()?)),
            other => Err(format!(
                "unexpected value start {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn uint(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at byte {start}"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "float at byte {start}: traces are integer-only by design"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse::<u64>()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_controls_and_specials() {
        assert_eq!(quoted("plain"), r#""plain""#);
        assert_eq!(quoted("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(quoted("x\ny\t"), r#""x\ny\t""#);
        assert_eq!(quoted("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_an_event_line() {
        let line = r#"{"t":1000,"ev":"snap.complete","epoch":3,"forced":false,"who":"a\"b"}"#;
        let fields = parse_line(line).expect("parses");
        assert_eq!(fields[0], ("t".to_string(), JsonValue::U64(1000)));
        assert_eq!(
            fields[1],
            (
                "ev".to_string(),
                JsonValue::Str("snap.complete".to_string())
            )
        );
        assert_eq!(fields[3], ("forced".to_string(), JsonValue::Bool(false)));
        assert_eq!(
            fields[4],
            ("who".to_string(), JsonValue::Str("a\"b".to_string()))
        );
    }

    #[test]
    fn parse_accepts_negative_and_unicode() {
        let fields = parse_line(r#"{"n":-42,"u":"éé"}"#).expect("parses");
        assert_eq!(fields[0].1, JsonValue::I64(-42));
        assert_eq!(fields[1].1, JsonValue::Str("éé".to_string()));
    }

    #[test]
    fn parse_rejects_floats_nesting_and_trailing_garbage() {
        assert!(parse_line(r#"{"x":1.5}"#).is_err());
        assert!(parse_line(r#"{"x":{}}"#).is_err());
        assert!(parse_line(r#"{"x":1} extra"#).is_err());
        assert!(parse_line(r#"{"x":null}"#).is_err());
        assert!(parse_line(r#"{"x""#).is_err());
    }

    #[test]
    fn parse_accepts_empty_object() {
        assert_eq!(parse_line("{}").expect("parses"), Vec::new());
    }
}
