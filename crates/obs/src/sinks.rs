//! Concrete sinks: a bounded in-memory ring, a JSONL line buffer, the
//! input-order merge for parfan fan-outs, the one sanctioned stderr
//! writer, and the [`TraceSink`] runtime selector used by the fabric.

use std::collections::VecDeque;
use std::io::Write;

use crate::{Event, Sink, OBS_ENV};

/// A bounded in-memory ring of recent events: cheap always-on flight
/// recorder. When full, the oldest event is dropped and counted.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// How many events have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::new(4096)
    }
}

impl Sink for RingSink {
    fn record(&mut self, ev: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Buffers events as rendered JSONL lines. Rendering at record time keeps
/// the memory profile flat (no `Event` allocations retained) and makes the
/// deterministic byte surface explicit: what you diff is what was stored.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    lines: Vec<String>,
}

impl JsonlSink {
    /// An empty line buffer.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// The buffered lines, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Take the buffered lines, leaving the sink empty.
    pub fn take_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.lines)
    }

    /// Consume the sink into its lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }

    /// Write all lines (each newline-terminated) to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        for line in &self.lines {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, ev: Event) {
        self.lines.push(ev.to_jsonl());
    }
}

/// Render a slice of lines as one newline-terminated blob — the canonical
/// trace-file byte format (empty input renders as the empty string).
pub fn render_lines(lines: &[String]) -> String {
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Merge per-job trace buffers from a parfan fan-out in **input order** —
/// job 0's lines first, then job 1's, and so on. Because parfan returns
/// results in input order regardless of worker count (DESIGN.md §10), the
/// merged trace is byte-identical at any `SPEEDLIGHT_JOBS`.
pub fn merge_job_lines(per_job: Vec<Vec<String>>) -> Vec<String> {
    let total = per_job.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for lines in per_job {
        merged.extend(lines);
    }
    merged
}

/// Parse the leading `{"t":<n>,` sim-time stamp of a rendered trace line.
/// Every line `event!` produces starts with the stamp, so this never
/// allocates; malformed lines sort first (time 0).
fn line_time(line: &str) -> u64 {
    let rest = match line.strip_prefix("{\"t\":") {
        Some(r) => r,
        None => return 0,
    };
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or(0)
}

/// Merge per-shard trace buffers from a sharded simulation into one
/// canonical stream: `trace.meta` header lines first (in shard order —
/// only shard 0 stamps one), then every event line ordered by
/// `(sim time, line content)`.
///
/// Each domain's line subsequence is identical at any shard count (that
/// is the sharded engine's determinism contract), so sorting the union by
/// a content-total order yields a byte-identical merged trace no matter
/// how domains were packed onto shards. The sort is stable, so exact
/// duplicate lines keep their multiplicity and relative order.
pub fn merge_shard_lines(per_shard: Vec<Vec<String>>) -> Vec<String> {
    let total = per_shard.iter().map(Vec::len).sum();
    let mut meta = Vec::new();
    let mut events = Vec::with_capacity(total);
    for lines in per_shard {
        for line in lines {
            if line.contains("\"ev\":\"trace.meta\"") {
                meta.push(line);
            } else {
                events.push(line);
            }
        }
    }
    events.sort_by(|a, b| (line_time(a), a.as_str()).cmp(&(line_time(b), b.as_str())));
    meta.extend(events);
    meta
}

/// The one sanctioned stderr escape hatch for library crates: progress /
/// telemetry lines that must reach a human even when no trace sink is
/// wired up. Centralizing it here keeps the `raw-print` invariant rule
/// honest — everything else goes through a [`Sink`].
pub fn stderr_line(line: &str) {
    // invariants: allow-path — obs/src/sinks.rs is the raw-print rule's
    // designated exemption; see crates/invariants/src/rules.rs.
    eprintln!("{line}");
}

/// A sink that renders each event straight to stderr as JSONL. Useful for
/// ad-hoc debugging (`SPEEDLIGHT_OBS` has no mode for it on purpose — it
/// is not a deterministic output surface).
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, ev: Event) {
        stderr_line(&ev.to_jsonl());
    }
}

/// Runtime-selected trace sink: the concrete type the fabric embeds so a
/// single simulation build serves `off`, `ring`, and `jsonl` without
/// generics leaking into `Network`. `Off` keeps `enabled()` false, so the
/// `event!` guard skips event construction entirely.
#[derive(Debug, Clone, Default)]
pub enum TraceSink {
    /// Tracing disabled (the default; near-zero cost).
    #[default]
    Off,
    /// Bounded in-memory ring of recent events.
    Ring(RingSink),
    /// Unbounded JSONL line buffer.
    Jsonl(JsonlSink),
}

impl TraceSink {
    /// A fresh JSONL sink.
    pub fn jsonl() -> TraceSink {
        TraceSink::Jsonl(JsonlSink::new())
    }

    /// A fresh default-capacity ring sink.
    pub fn ring() -> TraceSink {
        TraceSink::Ring(RingSink::default())
    }

    /// Resolve from the `SPEEDLIGHT_OBS` environment variable:
    /// `ring` / `jsonl` select a sink, anything else (including unset)
    /// is `Off`.
    pub fn from_env() -> TraceSink {
        match std::env::var(OBS_ENV).as_deref() {
            Ok("ring") => TraceSink::ring(),
            Ok("jsonl") => TraceSink::jsonl(),
            _ => TraceSink::Off,
        }
    }

    /// True when tracing is disabled.
    pub fn is_off(&self) -> bool {
        matches!(self, TraceSink::Off)
    }

    /// Buffered JSONL lines (empty for `Off`; ring events are rendered
    /// on demand).
    pub fn lines(&self) -> Vec<String> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::Ring(r) => r.events().map(Event::to_jsonl).collect(),
            TraceSink::Jsonl(j) => j.lines().to_vec(),
        }
    }

    /// Take the buffered lines, leaving the sink in place (and empty).
    pub fn take_lines(&mut self) -> Vec<String> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::Ring(r) => {
                let lines = r.events().map(Event::to_jsonl).collect();
                r.events.clear();
                lines
            }
            TraceSink::Jsonl(j) => j.take_lines(),
        }
    }
}

impl Sink for TraceSink {
    #[inline]
    fn enabled(&self) -> bool {
        !matches!(self, TraceSink::Off)
    }

    fn record(&mut self, ev: Event) {
        match self {
            TraceSink::Off => {}
            TraceSink::Ring(r) => r.record(ev),
            TraceSink::Jsonl(j) => j.record(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for t in 0..5u64 {
            ring.record(Event::new(t, "e"));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let ts: Vec<u64> = ring.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, [3, 4]);
    }

    #[test]
    fn jsonl_sink_buffers_rendered_lines() {
        let mut sink = JsonlSink::new();
        event!(&mut sink, 1, "a", k = 2u64);
        assert_eq!(sink.lines(), [r#"{"t":1,"ev":"a","k":2}"#]);
        let taken = sink.take_lines();
        assert_eq!(taken.len(), 1);
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn merge_is_input_order_concatenation() {
        let merged = merge_job_lines(vec![
            vec!["j0-a".to_string(), "j0-b".to_string()],
            vec![],
            vec!["j2-a".to_string()],
        ]);
        assert_eq!(merged, ["j0-a", "j0-b", "j2-a"]);
        assert_eq!(render_lines(&merged), "j0-a\nj0-b\nj2-a\n");
        assert_eq!(render_lines(&[]), "");
    }

    #[test]
    fn shard_merge_is_time_then_content_ordered_with_meta_first() {
        let meta = r#"{"t":5,"ev":"trace.meta","schema":"s"}"#.to_string();
        let a0 = r#"{"t":3,"ev":"a"}"#.to_string();
        let b0 = r#"{"t":3,"ev":"b"}"#.to_string();
        let c = r#"{"t":10,"ev":"c"}"#.to_string();
        // Two packings of the same line multiset must merge identically.
        let one = merge_shard_lines(vec![vec![meta.clone(), c.clone(), b0.clone(), a0.clone()]]);
        let two = merge_shard_lines(vec![
            vec![meta.clone(), b0.clone()],
            vec![c.clone(), a0.clone()],
        ]);
        assert_eq!(one, two);
        // Header first despite its later stamp; then (t, content) order.
        assert_eq!(one, [meta, a0, b0, c]);
    }

    #[test]
    fn shard_merge_keeps_duplicate_lines() {
        let dup = r#"{"t":1,"ev":"x"}"#.to_string();
        let merged = merge_shard_lines(vec![vec![dup.clone()], vec![dup.clone()]]);
        assert_eq!(merged, [dup.clone(), dup]);
    }

    #[test]
    fn trace_sink_off_is_disabled_and_empty() {
        let mut off = TraceSink::Off;
        assert!(!Sink::enabled(&off));
        assert!(off.is_off());
        event!(&mut off, 1, "never");
        assert!(off.lines().is_empty());
        assert!(off.take_lines().is_empty());
    }

    #[test]
    fn trace_sink_variants_record_and_drain() {
        for mut sink in [TraceSink::ring(), TraceSink::jsonl()] {
            assert!(Sink::enabled(&sink));
            event!(&mut sink, 7, "x", v = 1u64);
            assert_eq!(sink.lines(), [r#"{"t":7,"ev":"x","v":1}"#]);
            assert_eq!(sink.take_lines().len(), 1);
            assert!(sink.lines().is_empty());
        }
    }
}
