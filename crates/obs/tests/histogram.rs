//! Bucket-boundary suite for [`obs::metrics::Histogram`]: bounds are
//! *inclusive* upper edges, the overflow bucket catches everything above
//! the last bound, and malformed bounds are rejected loudly.

use obs::metrics::{Histogram, DEPTH_BOUNDS, LATENCY_BOUNDS_NS};

#[test]
fn value_on_a_bound_lands_in_that_bucket() {
    let mut h = Histogram::new(&[10, 20, 30]);
    h.observe(10);
    h.observe(20);
    h.observe(30);
    assert_eq!(h.counts(), [1, 1, 1, 0]);
}

#[test]
fn value_just_above_a_bound_lands_in_the_next_bucket() {
    let mut h = Histogram::new(&[10, 20, 30]);
    h.observe(11);
    h.observe(21);
    h.observe(31);
    assert_eq!(h.counts(), [0, 1, 1, 1]);
}

#[test]
fn zero_and_minimum_values_land_in_the_first_bucket() {
    let mut h = Histogram::new(&[10, 20]);
    h.observe(0);
    h.observe(1);
    assert_eq!(h.counts(), [2, 0, 0]);
}

#[test]
fn overflow_bucket_is_unbounded() {
    let mut h = Histogram::new(&[10]);
    h.observe(u64::MAX);
    h.observe(11);
    assert_eq!(h.counts(), [0, 2]);
    assert_eq!(h.sum(), u128::from(u64::MAX) + 11);
}

#[test]
fn count_and_sum_track_every_observation() {
    let mut h = Histogram::new(&[5, 50]);
    for v in [1, 5, 6, 50, 51, 500] {
        h.observe(v);
    }
    assert_eq!(h.count(), 6);
    assert_eq!(h.sum(), 613);
    assert_eq!(h.counts(), [2, 2, 2]);
}

#[test]
fn zero_is_a_legal_first_bound() {
    // DEPTH_BOUNDS starts at 0: depth-0 observations get their own bucket.
    let mut h = Histogram::new(&DEPTH_BOUNDS);
    h.observe(0);
    h.observe(1);
    assert_eq!(h.counts()[0], 1);
    assert_eq!(h.counts()[1], 1);
}

#[test]
fn shared_bounds_are_strictly_increasing() {
    assert!(LATENCY_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
    assert!(DEPTH_BOUNDS.windows(2).all(|w| w[0] < w[1]));
}

#[test]
#[should_panic(expected = "strictly increasing")]
fn equal_bounds_are_rejected() {
    let _ = Histogram::new(&[10, 10]);
}

#[test]
#[should_panic(expected = "strictly increasing")]
fn decreasing_bounds_are_rejected() {
    let _ = Histogram::new(&[20, 10]);
}

#[test]
#[should_panic(expected = "at least one bound")]
fn empty_bounds_are_rejected() {
    let _ = Histogram::new(&[]);
}
