//! The differential oracle.
//!
//! Every substrate records the exact sequence of tagged deliveries each of
//! its units processed ([`DeliveryEvent`]: unwrapped tag, pre-update metric
//! value, contribution, initiation flag). Replaying that sequence through
//! the idealized Fig. 3 protocol ([`IdealUnit`]) yields, per unit and
//! epoch, the value an unconstrained implementation would have
//! snapshotted. The oracle then audits the substrate's *reported*
//! snapshots against that replay:
//!
//! * `Value { local, channel }` must equal the ideal slot exactly — this is
//!   the paper's claim that the hardware-constrained protocol agrees with
//!   the ideal one on every epoch it reports consistent, *including* across
//!   snapshot-ID wraparound (the log stores unwrapped tags, so a modulus-4
//!   run is compared at full epoch resolution);
//! * `Inferred { local }` (no-channel-state skips) must equal the ideal
//!   slot value — Fig. 3 fills every skipped slot with the same state the
//!   hardware's single write saved;
//! * exclusions must match the scenario's fault schedule, forced
//!   finalization must not occur in fault-free runs, and network-wide
//!   consistent totals must be monotone.

use crate::diff::Divergence;
use speedlight_core::consistency::DeliveryEvent;
use speedlight_core::ideal::{IdealSnap, IdealUnit};
use speedlight_core::observer::{GlobalSnapshot, UnitOutcome};
use speedlight_core::types::{UnitId, CPU_CHANNEL};
use std::collections::{BTreeMap, BTreeSet};

/// One completed snapshot plus how it completed.
#[derive(Debug, Clone)]
pub struct SnapEntry {
    /// The assembled snapshot.
    pub snapshot: GlobalSnapshot,
    /// Whether it only finished via `force_finalize`.
    pub forced: bool,
}

/// Everything one substrate produced for a scenario.
#[derive(Debug, Clone)]
pub struct SubstrateRun {
    /// Substrate label (`"fabric"`, `"emulation"`).
    pub substrate: &'static str,
    /// Completed snapshots in epoch order.
    pub snapshots: Vec<SnapEntry>,
    /// The recorded delivery log (per-unit processing order preserved).
    pub log: Vec<DeliveryEvent>,
}

/// What the scenario allows the substrate to do.
///
/// Each adversarial fault class maps onto these knobs (the invariant
/// table in DESIGN.md §12): permanently killed devices *must* be
/// excluded from forced snapshots once their kill epoch passes
/// (`faulted`); transient faults (link flaps under channel state,
/// notification drops, CP crashes) merely *permit* forcing and permit
/// excluding the affected devices (`allow_forced` + `may_exclude`);
/// load, duplication, reordering, and bounded PTP degradation permit
/// nothing — runs under them are held to the fully strict contract.
#[derive(Debug, Clone)]
pub struct Expectations {
    /// Channel-state variant?
    pub channel_state: bool,
    /// Devices the fault schedule permanently kills, mapped to the first
    /// epoch at which their exclusion becomes *required* (a device killed
    /// after completing `k` snapshots must be excluded from every forced
    /// epoch `>= k + 1`). Exclusion of these devices is *permitted* at
    /// any epoch (the kill may land mid-snapshot).
    pub faulted: BTreeMap<u16, u64>,
    /// Devices a transient fault may (but need not) drag into a forced
    /// exclusion: link-flap endpoints, notification-drop victims,
    /// crashed control planes.
    pub may_exclude: BTreeSet<u16>,
    /// Whether `force_finalize` completions are allowed at all.
    pub allow_forced: bool,
    /// Whether forced snapshots may exclude **only** expected devices
    /// (`faulted` keys and `may_exclude`).
    ///
    /// True for no-channel-state runs (completion never depends on a
    /// neighbor, so only an affected device can time out). In
    /// channel-state mode a dead device starves its neighbors' channels,
    /// which may legitimately drag them into the exclusion too.
    pub strict_exclusions: bool,
}

impl Expectations {
    /// A healthy run: no faults, nothing excluded, nothing forced.
    pub fn healthy(channel_state: bool) -> Expectations {
        Expectations {
            channel_state,
            faulted: BTreeMap::new(),
            may_exclude: BTreeSet::new(),
            allow_forced: false,
            strict_exclusions: true,
        }
    }
}

/// Per-unit ideal replay of a recorded delivery log.
#[derive(Debug)]
pub struct IdealReplay {
    units: BTreeMap<UnitId, IdealUnit>,
}

impl IdealReplay {
    /// Replay `log` through one [`IdealUnit`] per unit.
    ///
    /// Unit channel counts are sized from the log itself (the ideal
    /// protocol only indexes channels it receives on).
    pub fn from_log(log: &[DeliveryEvent], channel_state: bool) -> IdealReplay {
        let mut channels: BTreeMap<UnitId, u16> = BTreeMap::new();
        for ev in log {
            let entry = channels.entry(ev.unit).or_insert(1);
            if ev.channel != CPU_CHANNEL {
                *entry = (*entry).max(ev.channel.0 + 1);
            }
        }
        let mut units: BTreeMap<UnitId, IdealUnit> = channels
            .into_iter()
            .map(|(uid, n)| (uid, IdealUnit::new(uid, n, channel_state)))
            .collect();
        for ev in log {
            let unit = units.get_mut(&ev.unit).expect("sized above");
            unit.on_packet(ev.channel, ev.tag, ev.local_state, ev.contrib, ev.init);
        }
        IdealReplay { units }
    }

    /// The ideal snapshot for `(unit, epoch)`, if the replay reached it.
    pub fn snapshot(&self, unit: UnitId, epoch: u64) -> Option<IdealSnap> {
        self.units.get(&unit)?.snapshot(epoch)
    }

    /// Units that appeared in the log.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.units.keys().copied()
    }
}

/// Audit one substrate's snapshots against the ideal replay of its own
/// delivery log plus the scenario's expectations. Returns every
/// divergence found (empty = conformant).
pub fn check_run(run: &SubstrateRun, expect: &Expectations) -> Vec<Divergence> {
    let replay = IdealReplay::from_log(&run.log, expect.channel_state);
    let mut divergences = Vec::new();
    let substrate = run.substrate;

    // The participating unit set must not drift across the run.
    let unit_set: Option<BTreeSet<UnitId>> = run
        .snapshots
        .first()
        .map(|e| e.snapshot.units.keys().copied().collect());

    let mut totals: Vec<(u64, u64)> = Vec::new(); // (epoch, total)
    for entry in &run.snapshots {
        let snap = &entry.snapshot;

        if let Some(expected_units) = &unit_set {
            let this: BTreeSet<UnitId> = snap.units.keys().copied().collect();
            if &this != expected_units {
                divergences.push(Divergence::UnitSetMismatch {
                    context: format!("{substrate}-epoch-{}", snap.epoch),
                    missing: expected_units.difference(&this).copied().collect(),
                    extra: this.difference(expected_units).copied().collect(),
                });
            }
        }

        // Exclusion policy.
        if entry.forced {
            if !expect.allow_forced {
                divergences.push(Divergence::UnexpectedForce {
                    substrate,
                    epoch: snap.epoch,
                });
            }
            for (&d, &from_epoch) in &expect.faulted {
                if snap.epoch >= from_epoch && !snap.excluded.contains(&d) {
                    divergences.push(Divergence::MissingExclusion {
                        substrate,
                        epoch: snap.epoch,
                        device: d,
                    });
                }
            }
            if expect.strict_exclusions {
                for &d in &snap.excluded {
                    if !expect.faulted.contains_key(&d) && !expect.may_exclude.contains(&d) {
                        divergences.push(Divergence::UnexpectedExclusion {
                            substrate,
                            epoch: snap.epoch,
                            device: d,
                        });
                    }
                }
            }
        } else {
            for &d in &snap.excluded {
                divergences.push(Divergence::UnexpectedExclusion {
                    substrate,
                    epoch: snap.epoch,
                    device: d,
                });
            }
        }

        // Per-unit value comparison against the ideal replay.
        for (&uid, outcome) in &snap.units {
            match *outcome {
                UnitOutcome::Value { local, channel } => match replay.snapshot(uid, snap.epoch) {
                    None => divergences.push(Divergence::UnexplainedEpoch {
                        substrate,
                        unit: uid,
                        epoch: snap.epoch,
                    }),
                    Some(ideal) => {
                        if ideal.value != local {
                            divergences.push(Divergence::ValueMismatch {
                                substrate,
                                unit: uid,
                                epoch: snap.epoch,
                                reported: local,
                                expected: ideal.value,
                            });
                        }
                        if expect.channel_state && ideal.channel != channel {
                            divergences.push(Divergence::ChannelMismatch {
                                substrate,
                                unit: uid,
                                epoch: snap.epoch,
                                reported: channel,
                                expected: ideal.channel,
                            });
                        }
                    }
                },
                UnitOutcome::Inferred { local } => match replay.snapshot(uid, snap.epoch) {
                    None => divergences.push(Divergence::UnexplainedEpoch {
                        substrate,
                        unit: uid,
                        epoch: snap.epoch,
                    }),
                    Some(ideal) => {
                        if ideal.value != local {
                            divergences.push(Divergence::ValueMismatch {
                                substrate,
                                unit: uid,
                                epoch: snap.epoch,
                                reported: local,
                                expected: ideal.value,
                            });
                        }
                    }
                },
                // Hardware-limit skip in channel-state mode: the paper
                // accepts the loss; there is no value to compare.
                UnitOutcome::Inconsistent => {}
                UnitOutcome::Missing => divergences.push(Divergence::MissingReport {
                    substrate,
                    unit: uid,
                    epoch: snap.epoch,
                }),
                // Exclusion correctness is handled by the policy above.
                UnitOutcome::DeviceExcluded => {}
            }
        }

        if snap.fully_consistent() {
            totals.push((snap.epoch, snap.consistent_total()));
        }
    }

    // Monotone consistent totals over fully consistent snapshots, compared
    // in *epoch* order: counters only grow, so a later epoch can never
    // total less. The list is in completion order, which faults can
    // scramble (a dropped notification delays one epoch's finalization
    // past its successor's) — that reordering is legitimate; a shrinking
    // epoch-ordered total is not.
    totals.sort_unstable_by_key(|&(epoch, _)| epoch);
    for w in totals.windows(2) {
        if w[1].1 < w[0].1 {
            divergences.push(Divergence::NonMonotoneTotal {
                substrate,
                epoch: w[1].0,
                prev_total: w[0].1,
                total: w[1].1,
            });
        }
    }

    divergences
}

/// Compare the participating unit sets of two substrates (they run the
/// same logical topology, so the sets must be identical).
pub fn check_unit_sets(context: &str, a: &SubstrateRun, b: &SubstrateRun) -> Vec<Divergence> {
    let (Some(sa), Some(sb)) = (a.snapshots.first(), b.snapshots.first()) else {
        return Vec::new();
    };
    let ua: BTreeSet<UnitId> = sa.snapshot.units.keys().copied().collect();
    let ub: BTreeSet<UnitId> = sb.snapshot.units.keys().copied().collect();
    if ua == ub {
        Vec::new()
    } else {
        vec![Divergence::UnitSetMismatch {
            context: context.to_string(),
            missing: ua.difference(&ub).copied().collect(),
            extra: ub.difference(&ua).copied().collect(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedlight_core::types::ChannelId;

    fn uid() -> UnitId {
        UnitId::ingress(0, 0)
    }

    fn ev(tag: u64, local_state: u64, contrib: u64, init: bool) -> DeliveryEvent {
        DeliveryEvent {
            unit: uid(),
            channel: if init { CPU_CHANNEL } else { ChannelId(0) },
            tag,
            local_state,
            contrib,
            init,
        }
    }

    #[test]
    fn replay_matches_manual_ideal_run() {
        // Two data packets in epoch 0, then the initiation for epoch 1.
        let log = vec![ev(0, 0, 1, false), ev(0, 1, 1, false), ev(1, 2, 0, true)];
        let replay = IdealReplay::from_log(&log, true);
        assert_eq!(
            replay.snapshot(uid(), 1),
            Some(IdealSnap {
                value: 2,
                channel: 0
            })
        );
    }

    #[test]
    fn check_run_accepts_matching_values_and_flags_corruption() {
        let log = vec![ev(0, 0, 1, false), ev(1, 1, 0, true)];
        let mut snap = GlobalSnapshot {
            epoch: 1,
            devices: [0].into(),
            excluded: BTreeSet::new(),
            units: BTreeMap::from([(
                uid(),
                UnitOutcome::Value {
                    local: 1,
                    channel: 0,
                },
            )]),
        };
        let run = |snap: &GlobalSnapshot| SubstrateRun {
            substrate: "test",
            snapshots: vec![SnapEntry {
                snapshot: snap.clone(),
                forced: false,
            }],
            log: log.clone(),
        };
        let expect = Expectations::healthy(true);
        assert!(check_run(&run(&snap), &expect).is_empty());
        snap.units.insert(
            uid(),
            UnitOutcome::Value {
                local: 2,
                channel: 0,
            },
        );
        let divergences = check_run(&run(&snap), &expect);
        assert!(matches!(
            divergences.as_slice(),
            [Divergence::ValueMismatch {
                reported: 2,
                expected: 1,
                ..
            }]
        ));
    }
}
