//! Cross-substrate differential conformance harness.
//!
//! The repository implements the Speedlight snapshot protocol three times,
//! at three levels of realism:
//!
//! 1. the **idealized** Fig. 3 protocol in `speedlight_core::ideal` —
//!    unbounded snapshot IDs, multi-slot writes, no hardware limits;
//! 2. the **hardware-constrained** units driven by the deterministic
//!    discrete-event fabric (`fabric::testbed`) — wrapped IDs, single-slot
//!    writes, real queueing and latency;
//! 3. the **threaded emulation** (`emulation::cluster`) — one OS thread
//!    per device, real channels, wall-clock timing.
//!
//! A seeded [`scenario::Scenario`] pins topology, workload, load balancer,
//! snapshot variant/modulus/schedule, and fault schedule. The
//! [`runner`] executes it on substrates 2 and 3 while each substrate
//! records a per-unit delivery log; the [`oracle`] replays that log through
//! substrate 1 and diffs every reported snapshot value, channel state,
//! exclusion set, and consistency verdict against the ideal result. The
//! fabric run additionally feeds the omniscient flow-conservation audit
//! (`speedlight_core::consistency::ConservationChecker`).
//!
//! Any divergence produces a replayable [`artifact`]: seed, scenario spec,
//! and a minimized per-epoch diff, plus a one-command reproduction line.

pub mod adversarial;
pub mod artifact;
pub mod diff;
pub mod matrix;
pub mod oracle;
pub mod runner;
pub mod scenario;

pub use adversarial::{shrink, AdversarialGen};
pub use artifact::{assert_conformant, replay_command};
pub use diff::Divergence;
pub use oracle::{check_run, check_unit_sets, Expectations, IdealReplay, SnapEntry, SubstrateRun};
pub use runner::{fabric_digest, matrix_digest, run_matrix, run_scenario, ScenarioOutcome};
pub use scenario::{
    CpCrash, FaultSpec, Lb, LinkFlap, NotifFault, NotifFaultKind, PtpStep, Scenario, Topo,
    WorkloadKind,
};
