//! Failure artifacts and one-command replay.
//!
//! When a scenario diverges, [`assert_conformant`] dumps a replayable
//! artifact — the scenario spec, the master seed, and a minimized
//! per-epoch diff — and panics with the artifact path plus a single shell
//! command that re-executes exactly the failing scenario.

use crate::diff::Divergence;
use crate::runner::ScenarioOutcome;
use crate::scenario::Scenario;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Environment variable the replay test reads a scenario spec from.
pub const REPLAY_ENV: &str = "SPEEDLIGHT_SCENARIO";

/// Environment variable that redirects artifact dumps (default: the
/// system temp directory).
pub const ARTIFACT_DIR_ENV: &str = "CONFORMANCE_ARTIFACT_DIR";

/// The one-liner that re-executes exactly this scenario.
pub fn replay_command(sc: &Scenario) -> String {
    format!(
        "{REPLAY_ENV}='{}' cargo test -p conformance --test scenarios replay_from_env -- --nocapture",
        sc.spec()
    )
}

/// Render the failure artifact: spec, seed, replay command, and a
/// minimized per-epoch diff (the first divergent epoch in full, later
/// epochs summarized to counts).
pub fn render(sc: &Scenario, divergences: &[Divergence]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# speedlight conformance failure");
    let _ = writeln!(out, "scenario: {}", sc.spec());
    let _ = writeln!(out, "seed: 0x{:016x}", sc.seed);
    let _ = writeln!(out, "divergences: {}", divergences.len());
    let _ = writeln!(out, "\n## replay\n{}", replay_command(sc));

    let mut by_epoch: BTreeMap<Option<u64>, Vec<&Divergence>> = BTreeMap::new();
    for d in divergences {
        by_epoch.entry(d.epoch()).or_default().push(d);
    }
    let _ = writeln!(out, "\n## minimized per-epoch diff");
    let mut detailed = false;
    for (epoch, ds) in &by_epoch {
        match epoch {
            // Epoch-less findings (e.g. unit-set mismatches) always print
            // in full — there is nothing to minimize them to.
            None => {
                for d in ds {
                    let _ = writeln!(out, "  {d}");
                }
            }
            Some(e) if !detailed => {
                detailed = true;
                let _ = writeln!(out, "epoch {e} (first divergent epoch, in full):");
                for d in ds {
                    let _ = writeln!(out, "  {d}");
                }
            }
            Some(e) => {
                let _ = writeln!(out, "epoch {e}: {} divergence(s), e.g. {}", ds.len(), ds[0]);
            }
        }
    }
    out
}

/// The directory artifacts dump to: `CONFORMANCE_ARTIFACT_DIR`, else the
/// system temp directory. This is the *only* place the artifact pipeline
/// consults the environment — a sanctioned configuration point, read once
/// at the edge so the rest of the dump path is a pure function of its
/// arguments.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os(ARTIFACT_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Write the artifact into `dir` and return its path. Environment-free:
/// callers pick the directory (tests pass a tempdir, [`dump`] passes
/// [`artifact_dir`]).
pub fn dump_to(dir: &std::path::Path, sc: &Scenario, divergences: &[Divergence]) -> PathBuf {
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("conformance-seed-{:016x}.txt", sc.seed));
    let _ = std::fs::write(&path, render(sc, divergences));
    path
}

/// Write the artifact to disk (in [`artifact_dir`]) and return its path.
pub fn dump(sc: &Scenario, divergences: &[Divergence]) -> PathBuf {
    dump_to(&artifact_dir(), sc, divergences)
}

/// Panic with a replayable artifact if the outcome diverged.
pub fn assert_conformant(outcome: &ScenarioOutcome) {
    if outcome.divergences.is_empty() {
        return;
    }
    let path = dump(&outcome.scenario, &outcome.divergences);
    panic!(
        "scenario `{}` diverged ({} finding(s)); first: {}\nartifact: {}\nreplay: {}",
        outcome.scenario.spec(),
        outcome.divergences.len(),
        outcome.divergences[0],
        path.display(),
        replay_command(&outcome.scenario),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_minimizes_later_epochs() {
        let sc = Scenario::base(0xAB);
        let uid = speedlight_core::types::UnitId::ingress(0, 0);
        let ds: Vec<Divergence> = (1..=3)
            .map(|epoch| Divergence::ValueMismatch {
                substrate: "fabric",
                unit: uid,
                epoch,
                reported: 1,
                expected: 2,
            })
            .collect();
        let text = render(&sc, &ds);
        assert!(text.contains(&sc.spec()));
        assert!(text.contains("replay_from_env"));
        assert!(text.contains("epoch 1 (first divergent epoch, in full):"));
        assert!(text.contains("epoch 2: 1 divergence(s)"));
        assert!(text.contains("epoch 3: 1 divergence(s)"));
    }
}
