//! The seeded conformance matrix, as data.
//!
//! The scenario list lives here (rather than inline in the test file) so
//! that both the per-scenario tests and the parallel whole-matrix runner
//! ([`crate::runner::run_matrix`]) draw from one source of truth.

/// `(name, spec)` for every scenario in the matrix.
pub const SCENARIOS: &[(&str, &str)] = &[
    // Paper workloads on the leaf-spine testbed: every workload × both
    // load balancers × both snapshot variants, distinct seeds and moduli.
    (
        "hadoop_ecmp_nocs",
        "topo=leafspine;wl=hadoop;lb=ecmp;cs=0;mod=16;snaps=6;ival=5;seed=0x1001",
    ),
    (
        "hadoop_ecmp_cs",
        "topo=leafspine;wl=hadoop;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;seed=0x1002",
    ),
    (
        "hadoop_flowlet_nocs",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=64;snaps=6;ival=5;seed=0x1003",
    ),
    (
        "hadoop_flowlet_cs",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=1;mod=8;snaps=6;ival=5;seed=0x1004",
    ),
    (
        "graphx_ecmp_nocs",
        "topo=leafspine;wl=graphx;lb=ecmp;cs=0;mod=8;snaps=6;ival=5;seed=0x2001",
    ),
    (
        "graphx_ecmp_cs",
        "topo=leafspine;wl=graphx;lb=ecmp;cs=1;mod=64;snaps=6;ival=5;seed=0x2002",
    ),
    (
        "graphx_flowlet_nocs",
        "topo=leafspine;wl=graphx;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x2003",
    ),
    (
        "graphx_flowlet_cs",
        "topo=leafspine;wl=graphx;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x2004",
    ),
    (
        "memcache_ecmp_nocs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=0;mod=64;snaps=6;ival=5;seed=0x3001",
    ),
    (
        "memcache_ecmp_cs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=8;snaps=6;ival=5;seed=0x3002",
    ),
    (
        "memcache_flowlet_nocs",
        "topo=leafspine;wl=memcache;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x3003",
    ),
    (
        "memcache_flowlet_cs",
        "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x3004",
    ),
    // §5.2 wraparound stress: tiny moduli force many snapshot-ID wraps
    // while the oracle compares at full (unwrapped) epoch resolution.
    (
        "line_wrap_mod4_nocs",
        "topo=line:3;wl=cbr;cs=0;mod=4;snaps=10;ival=4;seed=0x4001",
    ),
    (
        "line_wrap_mod4_cs",
        "topo=line:3;wl=cbr;cs=1;mod=4;snaps=10;ival=4;seed=0x4002",
    ),
    (
        "line_wrap_mod8_nocs",
        "topo=line:4;wl=cbr;cs=0;mod=8;snaps=12;ival=3;seed=0x4003",
    ),
    (
        "line_wrap_mod8_cs",
        "topo=line:4;wl=cbr;cs=1;mod=8;snaps=12;ival=3;seed=0x4004",
    ),
    // Mid-run device failures: the faulted device must be excluded from
    // every forced snapshot; in no-channel-state mode *only* it may be.
    (
        "fault_leafspine_cs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;fault=3@3;seed=0x5001",
    ),
    (
        "fault_line_nocs_strict",
        "topo=line:4;wl=cbr;cs=0;mod=16;snaps=6;ival=5;fault=2@3;seed=0x5002",
    ),
    (
        "fault_leafspine_nocs_strict",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;fault=1@2;seed=0x5003",
    ),
    // Fabric vs threaded emulation on the same line topologies: both
    // substrates are oracle-checked and their unit sets must agree.
    (
        "emu_line3",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;seed=0x6001",
    ),
    (
        "emu_line2_wrap",
        "topo=line:2;wl=cbr;cs=0;mod=8;snaps=6;ival=8;emu=1;seed=0x6002",
    ),
    (
        "emu_line4",
        "topo=line:4;wl=cbr;cs=0;mod=64;snaps=5;ival=10;emu=1;seed=0x6003",
    ),
    (
        "emu_line3_fault",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;fault=1@2;seed=0x6004",
    ),
];

/// Look up a scenario spec by name. Panics on an unknown name so a typo in
/// a test is a hard error, not a silently skipped scenario.
pub fn spec(name: &str) -> &'static str {
    SCENARIOS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| panic!("unknown scenario name `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn every_spec_parses_and_round_trips_its_seed() {
        for &(name, spec) in SCENARIOS {
            let sc = Scenario::from_spec(spec)
                .unwrap_or_else(|e| panic!("scenario `{name}` does not parse: {e}"));
            sc.validate()
                .unwrap_or_else(|e| panic!("scenario `{name}` invalid: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario name")]
    fn unknown_name_panics() {
        spec("no_such_scenario");
    }
}
