//! The seeded conformance matrix, as data.
//!
//! The scenario list lives here (rather than inline in the test file) so
//! that both the per-scenario tests and the parallel whole-matrix runner
//! ([`crate::runner::run_matrix`]) draw from one source of truth.

/// `(name, spec)` for every scenario in the matrix.
pub const SCENARIOS: &[(&str, &str)] = &[
    // Paper workloads on the leaf-spine testbed: every workload × both
    // load balancers × both snapshot variants, distinct seeds and moduli.
    (
        "hadoop_ecmp_nocs",
        "topo=leafspine;wl=hadoop;lb=ecmp;cs=0;mod=16;snaps=6;ival=5;seed=0x1001",
    ),
    (
        "hadoop_ecmp_cs",
        "topo=leafspine;wl=hadoop;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;seed=0x1002",
    ),
    (
        "hadoop_flowlet_nocs",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=64;snaps=6;ival=5;seed=0x1003",
    ),
    (
        "hadoop_flowlet_cs",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=1;mod=8;snaps=6;ival=5;seed=0x1004",
    ),
    (
        "graphx_ecmp_nocs",
        "topo=leafspine;wl=graphx;lb=ecmp;cs=0;mod=8;snaps=6;ival=5;seed=0x2001",
    ),
    (
        "graphx_ecmp_cs",
        "topo=leafspine;wl=graphx;lb=ecmp;cs=1;mod=64;snaps=6;ival=5;seed=0x2002",
    ),
    (
        "graphx_flowlet_nocs",
        "topo=leafspine;wl=graphx;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x2003",
    ),
    (
        "graphx_flowlet_cs",
        "topo=leafspine;wl=graphx;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x2004",
    ),
    (
        "memcache_ecmp_nocs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=0;mod=64;snaps=6;ival=5;seed=0x3001",
    ),
    (
        "memcache_ecmp_cs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=8;snaps=6;ival=5;seed=0x3002",
    ),
    (
        "memcache_flowlet_nocs",
        "topo=leafspine;wl=memcache;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x3003",
    ),
    (
        "memcache_flowlet_cs",
        "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x3004",
    ),
    // §5.2 wraparound stress: tiny moduli force many snapshot-ID wraps
    // while the oracle compares at full (unwrapped) epoch resolution.
    (
        "line_wrap_mod4_nocs",
        "topo=line:3;wl=cbr;cs=0;mod=4;snaps=10;ival=4;seed=0x4001",
    ),
    (
        "line_wrap_mod4_cs",
        "topo=line:3;wl=cbr;cs=1;mod=4;snaps=10;ival=4;seed=0x4002",
    ),
    (
        "line_wrap_mod8_nocs",
        "topo=line:4;wl=cbr;cs=0;mod=8;snaps=12;ival=3;seed=0x4003",
    ),
    (
        "line_wrap_mod8_cs",
        "topo=line:4;wl=cbr;cs=1;mod=8;snaps=12;ival=3;seed=0x4004",
    ),
    // Mid-run device failures: the faulted device must be excluded from
    // every forced snapshot; in no-channel-state mode *only* it may be.
    (
        "fault_leafspine_cs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;fault=3@3;seed=0x5001",
    ),
    (
        "fault_line_nocs_strict",
        "topo=line:4;wl=cbr;cs=0;mod=16;snaps=6;ival=5;fault=2@3;seed=0x5002",
    ),
    (
        "fault_leafspine_nocs_strict",
        "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;fault=1@2;seed=0x5003",
    ),
    // Fabric vs threaded emulation on the same line topologies: both
    // substrates are oracle-checked and their unit sets must agree.
    (
        "emu_line3",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;seed=0x6001",
    ),
    (
        "emu_line2_wrap",
        "topo=line:2;wl=cbr;cs=0;mod=8;snaps=6;ival=8;emu=1;seed=0x6002",
    ),
    (
        "emu_line4",
        "topo=line:4;wl=cbr;cs=0;mod=64;snaps=5;ival=10;emu=1;seed=0x6003",
    ),
    (
        "emu_line3_fault",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;fault=1@2;seed=0x6004",
    ),
];

/// `(name, spec)` for the adversarial tier: generator-style chaos pinned
/// down as named scenarios. Every fault class from the DSL appears —
/// link flaps and multi-interval partitions, incast at 10–100× paper
/// load, notification-export drop/dup/reorder, control-plane
/// crash-recovery, PTP degradation (holdover drift, offset step, path
/// asymmetry), and a multi-fault cocktail. All of them are held to the
/// differential oracle under the per-fault-class invariant table
/// (DESIGN.md §12).
pub const ADVERSARIAL: &[(&str, &str)] = &[
    // Link flaps: a short outage mid-snapshot. Under channel state the
    // stalled channels may force the endpoints out; without it the run
    // stays fully strict.
    (
        "flap_line_cs",
        "topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;flap=1:1@12+6;seed=0x8001",
    ),
    (
        "flap_line_nocs",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;flap=0:1@8+4;seed=0x8002",
    ),
    // Partitions: outages spanning multiple snapshot intervals.
    (
        "partition_line_cs",
        "topo=line:4;wl=cbr;cs=1;mod=32;snaps=8;ival=5;flap=1:1@10+25;seed=0x8003",
    ),
    (
        "partition_leafspine_cs",
        "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=32;snaps=6;ival=5;flap=0:1@8+15;seed=0x8004",
    ),
    // Hostile traffic: memcache-style incast far above paper load. No
    // slack — totals must stay conserved and values exact.
    (
        "incast_line_10x",
        "topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;load=10;seed=0x8005",
    ),
    (
        "incast_line_100x_nocs",
        "topo=line:2;wl=cbr;cs=0;mod=16;snaps=3;ival=2;load=100;seed=0x8006",
    ),
    (
        "incast_memcache_25x",
        "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;load=25;seed=0x8007",
    ),
    // Notification-export faults: drop may delay reports (forcing
    // allowed); dup and cross-unit reorder must be absorbed exactly.
    (
        "notif_drop_line",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;notif=1:drop:3;seed=0x8008",
    ),
    (
        "notif_dup_line",
        "topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;notif=1:dup:2;seed=0x8009",
    ),
    (
        "notif_reorder_line",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;notif=1:reorder:2;seed=0x800a",
    ),
    // Control-plane crash-recovery: tracking state dies and resyncs.
    (
        "cpcrash_line",
        "topo=line:3;wl=cbr;cs=0;mod=32;snaps=6;ival=5;cpcrash=1@12+8;seed=0x800b",
    ),
    (
        "cpcrash_line_cs",
        "topo=line:3;wl=cbr;cs=1;mod=32;snaps=6;ival=5;cpcrash=2@14+6;seed=0x800c",
    ),
    // PTP degradation: holdover drift, a servo step, and path asymmetry
    // skew the initiation fan-out; consistency must not depend on sync.
    (
        "ptp_drift_line",
        "topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;ptpdrift=50000;seed=0x800d",
    ),
    (
        "ptp_step_line",
        "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;ptpstep=1@12:800;seed=0x800e",
    ),
    (
        "ptp_asym_leafspine",
        "topo=leafspine;wl=graphx;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;ptpdrift=20000;ptpasym=120;seed=0x800f",
    ),
    // Two devices dying in the same epoch: both must be excluded from
    // every forced snapshot past the kill point.
    (
        "twin_kill_line",
        "topo=line:4;wl=cbr;cs=0;mod=16;snaps=6;ival=5;fault=1@3;fault=2@3;seed=0x8010",
    ),
    // Everything at once.
    (
        "chaos_cocktail_cs",
        "topo=line:4;wl=cbr;cs=1;mod=64;snaps=6;ival=5;fault=3@4;flap=1:1@7+4;notif=2:dup:3;cpcrash=0@9+5;ptpdrift=10000;load=5;seed=0x8011",
    ),
];

/// Look up a scenario spec by name (searching the healthy matrix first,
/// then the adversarial tier). Panics on an unknown name so a typo in a
/// test is a hard error, not a silently skipped scenario.
pub fn spec(name: &str) -> &'static str {
    SCENARIOS
        .iter()
        .chain(ADVERSARIAL)
        .find(|(n, _)| *n == name)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| panic!("unknown scenario name `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn every_spec_parses_and_round_trips_its_seed() {
        for &(name, spec) in SCENARIOS.iter().chain(ADVERSARIAL) {
            let sc = Scenario::from_spec(spec)
                .unwrap_or_else(|e| panic!("scenario `{name}` does not parse: {e}"));
            sc.validate()
                .unwrap_or_else(|e| panic!("scenario `{name}` invalid: {e}"));
            assert_eq!(
                Scenario::from_spec(&sc.spec()).unwrap(),
                sc,
                "scenario `{name}` does not round-trip"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario name")]
    fn unknown_name_panics() {
        spec("no_such_scenario");
    }
}
