//! Scenario execution: the same [`Scenario`] runs on the deterministic
//! simulated fabric and (for line topologies) the threaded emulation, and
//! every substrate's output is audited by the oracle in [`crate::oracle`].

use crate::diff::Divergence;
use crate::oracle::{check_run, check_unit_sets, Expectations, SnapEntry, SubstrateRun};
use crate::scenario::switch_peer;
use crate::scenario::{Lb, NotifFaultKind as ScNotifKind, Scenario, Topo, WorkloadKind};
use emulation::cluster::{Cluster, ClusterConfig};
use experiments::common::{attach_workload_load, standard_testbed, Workload};
use fabric::network::{DriverConfig, NotifFaultConfig, NotifFaultKind as FabNotifKind};
use fabric::switchmod::SnapshotConfig;
use fabric::testbed::{Testbed, TestbedConfig};
use fabric::topology::{LbKind, Topology};
use netsim::dist::Dist;
use netsim::rng::SeedEcho;
use netsim::time::{Duration, Instant};
use speedlight_core::observer::UnitOutcome;
use std::collections::{BTreeMap, BTreeSet};
use telemetry::MetricKind;
use timesync::PtpDegradation;
use workloads::PoissonSource;

/// Everything one scenario produced, across substrates, plus the oracle's
/// verdict.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The deterministic fabric run.
    pub fabric: SubstrateRun,
    /// The threaded emulation run, when the scenario asked for one.
    pub emulation: Option<SubstrateRun>,
    /// Every divergence the oracle found (empty = conformant).
    pub divergences: Vec<Divergence>,
}

/// The oracle expectations a scenario implies — the invariant table of
/// DESIGN.md §12, in code.
///
/// * Device kills *require* excluding the dead device from every forced
///   epoch past its kill point (kill after `k` completed snapshots →
///   required from epoch `k + 1`).
/// * Transient faults (channel-state link flaps, notification drops, CP
///   crashes) *permit* forcing and permit excluding the affected devices,
///   but require neither: the fault may land between epochs and cost
///   nothing.
/// * Everything else (duplication, cross-unit reorder, incast load,
///   bounded PTP degradation) earns no slack at all — those runs are held
///   to the healthy contract.
pub fn expectations(sc: &Scenario) -> Expectations {
    let mut faulted: BTreeMap<u16, u64> = BTreeMap::new();
    for f in &sc.faults {
        let required_from = f.after_snapshots as u64 + 1;
        faulted
            .entry(f.device)
            .and_modify(|e| *e = (*e).min(required_from))
            .or_insert(required_from);
    }
    let mut may_exclude: BTreeSet<u16> = BTreeSet::new();
    let mut allow_forced = !faulted.is_empty();
    if sc.channel_state {
        // An outage stalls the channels crossing the dead link, which can
        // time both endpoints out; without channel state completion never
        // waits on a neighbor, so a flap costs nothing.
        for fl in &sc.flaps {
            allow_forced = true;
            may_exclude.insert(fl.device);
            if let Some((peer, _)) = switch_peer(sc.topo, fl.device, fl.port) {
                may_exclude.insert(peer);
            }
        }
    }
    for nf in &sc.notif_faults {
        // Dropped exports delay (cumulative) reports; dup and reorder are
        // absorbed by the CP's idempotent, forward-only tracking.
        if nf.kind == ScNotifKind::Drop {
            allow_forced = true;
            may_exclude.insert(nf.device);
        }
    }
    for cc in &sc.cp_crashes {
        allow_forced = true;
        may_exclude.insert(cc.device);
    }
    Expectations {
        channel_state: sc.channel_state,
        faulted,
        may_exclude,
        allow_forced,
        // A dead device starves its neighbors' channels in channel-state
        // mode, so exclusion can spread beyond the predicted set; every
        // other fault class has a bounded blast radius.
        strict_exclusions: !sc.channel_state || sc.faults.is_empty(),
    }
}

fn snapshot_config(sc: &Scenario) -> SnapshotConfig {
    SnapshotConfig {
        modulus: sc.modulus,
        channel_state: sc.channel_state,
        ingress_metric: MetricKind::PacketCount,
        egress_metric: MetricKind::PacketCount,
    }
}

fn interval_nanos(sc: &Scenario) -> u64 {
    sc.interval_ms * 1_000_000
}

/// Run the scenario on the simulated fabric. Returns the substrate run
/// plus any flow-conservation violations from the omniscient audit (which
/// only the fabric can provide: it sees headerless host packets the
/// delivery log does not carry).
pub fn run_fabric(sc: &Scenario) -> (SubstrateRun, Vec<Divergence>) {
    let (run, divergences, _) = run_fabric_inner(sc, false, false);
    (run, divergences)
}

/// [`run_fabric`] under the monolithic reference observer instead of the
/// staged pipeline (differential equivalence testing — the two must be
/// digest-identical on every scenario).
pub fn run_fabric_reference(sc: &Scenario) -> (SubstrateRun, Vec<Divergence>) {
    let (run, divergences, _) = run_fabric_inner(sc, false, true);
    (run, divergences)
}

/// [`run_fabric`] with the snapshot-lifecycle trace captured as JSONL
/// lines (deterministic sim-time stamps, so golden-file comparable).
pub fn run_fabric_traced(sc: &Scenario) -> (SubstrateRun, Vec<Divergence>, Vec<String>) {
    run_fabric_inner(sc, true, false)
}

fn run_fabric_inner(
    sc: &Scenario,
    trace: bool,
    reference_observer: bool,
) -> (SubstrateRun, Vec<Divergence>, Vec<String>) {
    let lb = match sc.lb {
        Lb::Ecmp => LbKind::Ecmp,
        Lb::Flowlet => LbKind::Flowlet { gap_us: 50 },
    };
    let mut driver = DriverConfig::default();
    if sc.force_inducing() {
        // Force-finalize quickly so faulted epochs complete inside the run.
        driver.device_timeout = Duration::from_millis(40);
    }
    let mut tb = match sc.topo {
        Topo::LeafSpine => {
            let wl = match sc.workload {
                WorkloadKind::Hadoop => Workload::Hadoop,
                WorkloadKind::GraphX => Workload::GraphX,
                WorkloadKind::Memcache => Workload::Memcache,
                WorkloadKind::Cbr => unreachable!("rejected by Scenario::validate"),
            };
            let mut tb = standard_testbed(snapshot_config(sc), lb, driver, sc.seed);
            attach_workload_load(&mut tb, wl, sc.seed, sc.load);
            tb
        }
        Topo::Line(n) => {
            let mut cfg = TestbedConfig::new(snapshot_config(sc));
            cfg.lb = lb;
            cfg.driver = driver;
            cfg.seed = sc.seed;
            let mut tb = Testbed::new(Topology::line(n), cfg);
            // Bidirectional traffic so snapshot IDs piggyback across every
            // inter-switch link (mirrors the emulation's host generators).
            // `load` scales the paper-calibrated base rate into the incast
            // tier.
            for (src, dst) in [(0u32, 1u32), (1, 0)] {
                tb.set_source(
                    src,
                    Instant::ZERO,
                    Box::new(PoissonSource::new(
                        src,
                        vec![dst],
                        80_000.0 * f64::from(sc.load),
                        Dist::constant(400.0),
                        sc.seed ^ (0x5EED * u64::from(src + 1)),
                    )),
                );
            }
            tb
        }
    };
    if reference_observer {
        tb.network_mut().use_reference_observer();
    }
    tb.enable_delivery_log();
    tb.network_mut().enable_audit();
    if trace {
        tb.enable_trace();
    }

    let ival = interval_nanos(sc);
    for i in 0..sc.snapshots {
        tb.snapshot_at(Instant::from_nanos(ival * (i as u64 + 1)));
    }
    // The whole fault schedule goes through simulation events, so a
    // parallel matrix run replays it identically (nothing depends on when
    // the host thread happens to observe the run).
    for f in &sc.faults {
        // Disable half an interval before the (k+1)-th snapshot is
        // scheduled.
        let at = ival * (f.after_snapshots as u64) + ival / 2;
        tb.fail_device_at(Instant::from_nanos(at), f.device);
    }
    for f in &sc.flaps {
        tb.flap_link_at(
            Instant::from_nanos(f.at_ms * 1_000_000),
            f.device,
            f.port,
            Duration::from_millis(f.down_ms),
        );
    }
    for f in &sc.cp_crashes {
        tb.crash_cp_at(
            Instant::from_nanos(f.at_ms * 1_000_000),
            f.device,
            Duration::from_millis(f.down_ms),
        );
    }
    for f in &sc.notif_faults {
        tb.set_notif_fault(
            f.device,
            NotifFaultConfig {
                kind: match f.kind {
                    ScNotifKind::Drop => FabNotifKind::Drop,
                    ScNotifKind::Dup => FabNotifKind::Dup,
                    ScNotifKind::Reorder => FabNotifKind::Reorder,
                },
                every: f.every,
            },
        );
    }
    if sc.has_ptp_degradation() {
        let (step_ns, step_device, step_at_ns) = match sc.ptp_step {
            Some(s) => (s.step_us * 1_000, s.device, s.at_ms * 1_000_000),
            None => (0, 0, 0),
        };
        tb.set_ptp_degradation(PtpDegradation {
            drift_ppb: sc.ptp_drift_ppb,
            step_ns,
            step_device,
            step_at_ns,
            asym_ns: sc.ptp_asym_us * 1_000,
        });
    }
    let tail = if sc.force_inducing() {
        200_000_000
    } else {
        100_000_000
    };
    tb.run_until(Instant::from_nanos(ival * sc.snapshots as u64 + tail));

    let snapshots: Vec<SnapEntry> = tb
        .snapshots()
        .iter()
        .map(|r| SnapEntry {
            snapshot: r.snapshot.clone(),
            forced: r.forced,
        })
        .collect();
    let log = tb
        .delivery_log()
        .expect("delivery log enabled above")
        .to_vec();

    let audit = tb.network().instr.audit.as_ref().expect("audit enabled");
    let mut reports = Vec::new();
    for entry in &snapshots {
        for (&uid, outcome) in &entry.snapshot.units {
            if let UnitOutcome::Value { local, channel } = *outcome {
                reports.push((
                    uid,
                    entry.snapshot.epoch,
                    local,
                    sc.channel_state.then_some(channel),
                ));
            }
        }
    }
    let conservation: Vec<Divergence> = audit
        .audit(reports)
        .into_iter()
        .map(|violation| Divergence::Conservation {
            substrate: "fabric",
            violation,
        })
        .collect();

    (
        SubstrateRun {
            substrate: "fabric",
            snapshots,
            log,
        },
        conservation,
        tb.take_trace_lines(),
    )
}

/// Run the scenario on the sharded fabric engine with `shards` shards,
/// returning the substrate run plus the golden trace lines. Mirrors
/// [`run_fabric`] minus the omniscient conservation audit (the audit is a
/// serial-engine instrument; the oracle's other checks still apply), so
/// the output is directly digest-comparable across shard counts — the
/// sharded engine's contract is byte-identical artifacts at any
/// `SPEEDLIGHT_SHARDS`.
pub fn run_fabric_sharded(sc: &Scenario, shards: usize) -> (SubstrateRun, Vec<String>) {
    let (run, trace, _, _) = run_fabric_sharded_full(sc, shards);
    (run, trace)
}

/// [`run_fabric_sharded`] plus the merged metrics JSON and the
/// deterministic `speedlight-profile/v1` artifact — the full set of
/// byte-comparable sharded outputs. Every element is shard-count- and
/// jobs-invariant; the CI `profile-equivalence` job rides on the last
/// two.
pub fn run_fabric_sharded_full(
    sc: &Scenario,
    shards: usize,
) -> (SubstrateRun, Vec<String>, String, String) {
    use experiments::common::{testbed_topology, workload_sources};
    use fabric::shard::{PartitionHint, ShardedTestbed};

    let lb = match sc.lb {
        Lb::Ecmp => LbKind::Ecmp,
        Lb::Flowlet => LbKind::Flowlet { gap_us: 50 },
    };
    let mut driver = DriverConfig::default();
    if sc.force_inducing() {
        driver.device_timeout = Duration::from_millis(40);
    }
    let (topo, hint) = match sc.topo {
        Topo::LeafSpine => (testbed_topology(), PartitionHint::LeafSpine { leaves: 2 }),
        Topo::Line(n) => (Topology::line(n), PartitionHint::Generic),
    };
    let mut cfg = TestbedConfig::new(snapshot_config(sc));
    cfg.lb = lb;
    cfg.driver = driver;
    cfg.seed = sc.seed;
    let mut tb = ShardedTestbed::new(topo, cfg, hint, shards);
    match sc.topo {
        Topo::LeafSpine => {
            let wl = match sc.workload {
                WorkloadKind::Hadoop => Workload::Hadoop,
                WorkloadKind::GraphX => Workload::GraphX,
                WorkloadKind::Memcache => Workload::Memcache,
                WorkloadKind::Cbr => unreachable!("rejected by Scenario::validate"),
            };
            for (h, source) in workload_sources(wl, sc.seed, sc.load) {
                tb.set_source(h, Instant::ZERO, source);
            }
        }
        Topo::Line(_) => {
            for (src, dst) in [(0u32, 1u32), (1, 0)] {
                tb.set_source(
                    src,
                    Instant::ZERO,
                    Box::new(PoissonSource::new(
                        src,
                        vec![dst],
                        80_000.0 * f64::from(sc.load),
                        Dist::constant(400.0),
                        sc.seed ^ (0x5EED * u64::from(src + 1)),
                    )),
                );
            }
        }
    }
    tb.enable_delivery_log();
    tb.enable_trace();
    tb.enable_profiling();

    let ival = interval_nanos(sc);
    for i in 0..sc.snapshots {
        tb.snapshot_at(Instant::from_nanos(ival * (i as u64 + 1)));
    }
    for f in &sc.faults {
        let at = ival * (f.after_snapshots as u64) + ival / 2;
        tb.fail_device_at(Instant::from_nanos(at), f.device);
    }
    for f in &sc.flaps {
        tb.flap_link_at(
            Instant::from_nanos(f.at_ms * 1_000_000),
            f.device,
            f.port,
            Duration::from_millis(f.down_ms),
        );
    }
    for f in &sc.cp_crashes {
        tb.crash_cp_at(
            Instant::from_nanos(f.at_ms * 1_000_000),
            f.device,
            Duration::from_millis(f.down_ms),
        );
    }
    for f in &sc.notif_faults {
        tb.set_notif_fault(
            f.device,
            NotifFaultConfig {
                kind: match f.kind {
                    ScNotifKind::Drop => FabNotifKind::Drop,
                    ScNotifKind::Dup => FabNotifKind::Dup,
                    ScNotifKind::Reorder => FabNotifKind::Reorder,
                },
                every: f.every,
            },
        );
    }
    if sc.has_ptp_degradation() {
        let (step_ns, step_device, step_at_ns) = match sc.ptp_step {
            Some(s) => (s.step_us * 1_000, s.device, s.at_ms * 1_000_000),
            None => (0, 0, 0),
        };
        tb.set_ptp_degradation(PtpDegradation {
            drift_ppb: sc.ptp_drift_ppb,
            step_ns,
            step_device,
            step_at_ns,
            asym_ns: sc.ptp_asym_us * 1_000,
        });
    }
    let tail = if sc.force_inducing() {
        200_000_000
    } else {
        100_000_000
    };
    tb.run_until(Instant::from_nanos(ival * sc.snapshots as u64 + tail));

    let snapshots: Vec<SnapEntry> = tb
        .snapshots()
        .iter()
        .map(|r| SnapEntry {
            snapshot: r.snapshot.clone(),
            forced: r.forced,
        })
        .collect();
    let log = tb.delivery_log().expect("delivery log enabled above");
    let trace = tb.take_trace_lines();
    let metrics = tb.export_metrics();
    let profile = tb.take_profile().to_json();
    (
        SubstrateRun {
            substrate: "fabric-sharded",
            snapshots,
            log,
        },
        trace,
        metrics,
        profile,
    )
}

/// Digest of a sharded run's full artifact set (snapshots, delivery log,
/// golden trace) — the byte-equality currency of the CI
/// `shard-equivalence` job.
pub fn sharded_digest(run: &SubstrateRun, trace: &[String]) -> u64 {
    let mut h = parfan::digest::Fnv64::new();
    h.update(format!("{run:?}").as_bytes());
    for line in trace {
        h.update(line.as_bytes());
        h.update(b"\n");
    }
    h.finish()
}

/// Run the scenario on the threaded emulation cluster (line topologies
/// only; wall-clock time).
pub fn run_emulation(sc: &Scenario) -> SubstrateRun {
    let Topo::Line(n) = sc.topo else {
        unreachable!("rejected by Scenario::validate");
    };
    let report = Cluster::new(ClusterConfig {
        switches: n,
        modulus: sc.modulus,
        channel_state: sc.channel_state,
        snapshots: sc.snapshots,
        // Wall-clock interval: never tighter than the OS scheduler can
        // reliably hit.
        interval: std::time::Duration::from_millis(sc.interval_ms.max(8)),
        host_rate: 20_000,
        // A faulted run waits out the whole timeout once per dead epoch;
        // keep that bounded while staying generous for healthy runs.
        timeout: std::time::Duration::from_millis(if sc.faults.is_empty() { 1_000 } else { 300 }),
        record_deliveries: true,
        fail_devices: sc
            .faults
            .iter()
            .map(|f| (f.device, f.after_snapshots))
            .collect(),
        reference_observer: false,
    })
    .run();
    let snapshots = report
        .snapshots
        .iter()
        .map(|s| SnapEntry {
            snapshot: s.clone(),
            forced: report.forced_epochs.contains(&s.epoch),
        })
        .collect();
    let log = report.delivery_logs.into_values().flatten().collect();
    SubstrateRun {
        substrate: "emulation",
        snapshots,
        log,
    }
}

/// Run `sc` on every substrate it selects and collect the oracle verdict.
pub fn run_scenario(sc: &Scenario) -> ScenarioOutcome {
    sc.validate().expect("scenario must be valid");
    // Echo the master seed if anything below panics (satellite of the
    // seed-on-failure policy; the fabric testbed echoes its own too).
    let _seed_echo = SeedEcho::new("conformance::runner", sc.seed);

    let expect = expectations(sc);
    let (fabric, mut divergences) = run_fabric(sc);
    divergences.extend(check_run(&fabric, &expect));

    let emulation = sc.emulate.then(|| run_emulation(sc));
    if let Some(emu) = &emulation {
        divergences.extend(check_run(emu, &expect));
        divergences.extend(check_unit_sets("fabric-vs-emulation", &fabric, emu));
    }

    ScenarioOutcome {
        scenario: sc.clone(),
        fabric,
        emulation,
        divergences,
    }
}

/// Run every scenario in the matrix, fanning out across cores. Scenarios
/// are independent seeded runs, so the outcome vector is identical (in
/// order and content) at any `SPEEDLIGHT_JOBS`; each job's label carries
/// the full spec string, so a panicking scenario is reproducible from the
/// failure message alone.
pub fn run_matrix(scenarios: &[Scenario]) -> Vec<ScenarioOutcome> {
    parfan::map_labeled(
        scenarios,
        |_, sc| format!("scenario `{}`", sc.spec()),
        |_, sc| run_scenario(sc),
    )
}

/// [`run_scenario`] under the monolithic reference observer. The emulation
/// arm is skipped: it is wall-clock (excluded from [`fabric_digest`]
/// anyway), and reference runs exist solely so their deterministic arm can
/// be digest-compared against the staged pipeline's.
pub fn run_scenario_reference(sc: &Scenario) -> ScenarioOutcome {
    sc.validate().expect("scenario must be valid");
    let _seed_echo = SeedEcho::new("conformance::runner[reference]", sc.seed);

    let expect = expectations(sc);
    let (fabric, mut divergences) = run_fabric_reference(sc);
    divergences.extend(check_run(&fabric, &expect));

    ScenarioOutcome {
        scenario: sc.clone(),
        fabric,
        emulation: None,
        divergences,
    }
}

/// [`run_matrix`] under the monolithic reference observer (see
/// [`run_scenario_reference`]). Same fan-out and determinism contract.
pub fn run_matrix_reference(scenarios: &[Scenario]) -> Vec<ScenarioOutcome> {
    parfan::map_labeled(
        scenarios,
        |_, sc| format!("scenario `{}`", sc.spec()),
        |_, sc| run_scenario_reference(sc),
    )
}

/// Digest of the deterministic arm of one outcome: the spec, the full
/// fabric run (every snapshot, outcome, and delivery-log entry via its
/// `Debug` rendering), and the divergence list. The emulation arm is
/// deliberately excluded — it is a wall-clock substrate and not
/// byte-reproducible, which is exactly why the oracle (not a digest)
/// checks it.
pub fn fabric_digest(outcome: &ScenarioOutcome) -> u64 {
    let mut h = parfan::digest::Fnv64::new();
    h.update(outcome.scenario.spec().as_bytes());
    h.update(format!("{:?}", outcome.fabric).as_bytes());
    // Emulation-derived divergences never appear here for a conformant
    // matrix (the list is empty); for a diverging one the fabric-side
    // entries still make serial and parallel runs comparable.
    for d in outcome
        .divergences
        .iter()
        .filter(|d| !format!("{d:?}").contains("emulation"))
    {
        h.update(format!("{d:?}").as_bytes());
    }
    h.finish()
}

/// Order-sensitive digest of a whole matrix run's deterministic arms.
pub fn matrix_digest(outcomes: &[ScenarioOutcome]) -> u64 {
    let mut h = parfan::digest::Fnv64::new();
    for o in outcomes {
        h.write_u64(fabric_digest(o));
    }
    h.finish()
}
