//! Divergence vocabulary: every way a substrate's snapshots can disagree
//! with the idealized oracle or with the scenario's expectations.

use speedlight_core::consistency::Violation;
use speedlight_core::types::UnitId;
use speedlight_core::Epoch;
use std::fmt;

/// One disagreement found by the conformance oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A unit's reported local value differs from the ideal replay.
    ValueMismatch {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The unit.
        unit: UnitId,
        /// The epoch.
        epoch: Epoch,
        /// What the substrate reported.
        reported: u64,
        /// What the idealized protocol computed from the same deliveries.
        expected: u64,
    },
    /// A unit's reported channel state differs from the ideal replay.
    ChannelMismatch {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The unit.
        unit: UnitId,
        /// The epoch.
        epoch: Epoch,
        /// What the substrate reported.
        reported: u64,
        /// What the idealized protocol computed from the same deliveries.
        expected: u64,
    },
    /// A unit reported a value for an epoch the ideal replay never reached
    /// (the delivery log cannot explain the report).
    UnexplainedEpoch {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The unit.
        unit: UnitId,
        /// The epoch.
        epoch: Epoch,
    },
    /// A completed snapshot carries a `Missing` outcome.
    MissingReport {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The unit.
        unit: UnitId,
        /// The epoch.
        epoch: Epoch,
    },
    /// A device was excluded that the fault schedule cannot account for.
    UnexpectedExclusion {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The epoch.
        epoch: Epoch,
        /// The excluded device.
        device: u16,
    },
    /// A faulted device was *not* excluded from a forced snapshot.
    MissingExclusion {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The epoch.
        epoch: Epoch,
        /// The device that should have been excluded.
        device: u16,
    },
    /// A snapshot was force-finalized in a fault-free scenario.
    UnexpectedForce {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The epoch.
        epoch: Epoch,
    },
    /// Network-wide consistent totals went backwards across epochs.
    NonMonotoneTotal {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The offending epoch.
        epoch: Epoch,
        /// Total at the previous fully consistent epoch.
        prev_total: u64,
        /// Total at this epoch.
        total: u64,
    },
    /// Two snapshots (within or across substrates) disagree on the set of
    /// participating units.
    UnitSetMismatch {
        /// Label of the comparison (e.g. `fabric-epoch-3` or
        /// `fabric-vs-emulation`).
        context: String,
        /// Units present on one side only.
        missing: Vec<UnitId>,
        /// Units present on the other side only.
        extra: Vec<UnitId>,
    },
    /// The omniscient flow-conservation audit flagged a reported value.
    Conservation {
        /// The substrate the snapshot came from.
        substrate: &'static str,
        /// The underlying violation.
        violation: Violation,
    },
}

impl Divergence {
    /// The epoch this divergence is anchored to, if any (for per-epoch
    /// grouping in failure artifacts).
    pub fn epoch(&self) -> Option<Epoch> {
        match self {
            Divergence::ValueMismatch { epoch, .. }
            | Divergence::ChannelMismatch { epoch, .. }
            | Divergence::UnexplainedEpoch { epoch, .. }
            | Divergence::MissingReport { epoch, .. }
            | Divergence::UnexpectedExclusion { epoch, .. }
            | Divergence::MissingExclusion { epoch, .. }
            | Divergence::UnexpectedForce { epoch, .. }
            | Divergence::NonMonotoneTotal { epoch, .. } => Some(*epoch),
            Divergence::Conservation { violation, .. } => Some(violation.epoch),
            Divergence::UnitSetMismatch { .. } => None,
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::ValueMismatch {
                substrate,
                unit,
                epoch,
                reported,
                expected,
            } => write!(
                f,
                "[{substrate}] epoch {epoch} {unit:?}: local value {reported} ≠ ideal {expected}"
            ),
            Divergence::ChannelMismatch {
                substrate,
                unit,
                epoch,
                reported,
                expected,
            } => write!(
                f,
                "[{substrate}] epoch {epoch} {unit:?}: channel state {reported} ≠ ideal {expected}"
            ),
            Divergence::UnexplainedEpoch {
                substrate,
                unit,
                epoch,
            } => write!(
                f,
                "[{substrate}] epoch {epoch} {unit:?}: reported, but the delivery log never \
                 reaches this epoch"
            ),
            Divergence::MissingReport {
                substrate,
                unit,
                epoch,
            } => write!(
                f,
                "[{substrate}] epoch {epoch} {unit:?}: Missing outcome in a completed snapshot"
            ),
            Divergence::UnexpectedExclusion {
                substrate,
                epoch,
                device,
            } => write!(
                f,
                "[{substrate}] epoch {epoch}: device {device} excluded without a scheduled fault"
            ),
            Divergence::MissingExclusion {
                substrate,
                epoch,
                device,
            } => write!(
                f,
                "[{substrate}] epoch {epoch}: faulted device {device} not excluded"
            ),
            Divergence::UnexpectedForce { substrate, epoch } => write!(
                f,
                "[{substrate}] epoch {epoch}: force-finalized despite a fault-free schedule"
            ),
            Divergence::NonMonotoneTotal {
                substrate,
                epoch,
                prev_total,
                total,
            } => write!(
                f,
                "[{substrate}] epoch {epoch}: consistent total {total} < previous {prev_total}"
            ),
            Divergence::UnitSetMismatch {
                context,
                missing,
                extra,
            } => write!(
                f,
                "[{context}] unit sets differ: {} missing, {} extra",
                missing.len(),
                extra.len()
            ),
            Divergence::Conservation {
                substrate,
                violation,
            } => write!(
                f,
                "[{substrate}] epoch {} {:?}: conservation audit expected \
                 local {} / channel {}, reported local {} / channel {}",
                violation.epoch,
                violation.unit,
                violation.expected.local,
                violation.expected.channel,
                violation.reported.local,
                violation.reported.channel
            ),
        }
    }
}
