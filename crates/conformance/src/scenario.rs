//! The scenario DSL.
//!
//! A [`Scenario`] pins down everything a conformance run depends on —
//! topology, workload, load balancer, snapshot variant and modulus,
//! snapshot schedule, fault schedule, and the master seed — and round-trips
//! through a compact `key=value;...` spec string. The spec string is the
//! replay handle: failure artifacts embed it, and
//! `SPEEDLIGHT_SCENARIO='<spec>' cargo test -p conformance --test scenarios
//! replay_from_env` re-executes exactly the failing run.

use std::fmt;

/// Which topology the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topo {
    /// The paper's testbed shape: 2 leaves × 2 spines, 3 hosts per leaf.
    LeafSpine,
    /// A line of `n` switches with a host at each end (the only shape the
    /// threaded emulation implements, so all three substrates can run it).
    Line(u16),
}

/// Which traffic drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Terasort-style shuffle (leaf-spine only).
    Hadoop,
    /// PageRank supersteps (leaf-spine only).
    GraphX,
    /// mc-crusher multi-get (leaf-spine only).
    Memcache,
    /// Constant-rate bidirectional traffic (line topologies).
    Cbr,
}

/// Load balancer selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lb {
    /// Per-flow ECMP.
    Ecmp,
    /// Flowlet switching (50 µs gap).
    Flowlet,
}

/// A mid-run device failure: `device` stops participating in the snapshot
/// protocol (it keeps forwarding) just before the `after_snapshots`-th
/// snapshot (0-based) is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The failing device.
    pub device: u16,
    /// Snapshots scheduled before the failure.
    pub after_snapshots: usize,
}

/// A fully specified conformance run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Topology.
    pub topo: Topo,
    /// Workload.
    pub workload: WorkloadKind,
    /// Load balancer.
    pub lb: Lb,
    /// Channel-state variant?
    pub channel_state: bool,
    /// Snapshot ID modulus (small values stress §5.2 wraparound).
    pub modulus: u16,
    /// Number of snapshots to schedule.
    pub snapshots: usize,
    /// Schedule interval, milliseconds (simulated time for the fabric,
    /// wall-clock for the emulation).
    pub interval_ms: u64,
    /// Optional mid-run device failure.
    pub fault: Option<FaultSpec>,
    /// Also run the threaded emulation (line topologies only).
    pub emulate: bool,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// A small healthy default (line of 3, CBR, no channel state).
    pub fn base(seed: u64) -> Scenario {
        Scenario {
            topo: Topo::Line(3),
            workload: WorkloadKind::Cbr,
            lb: Lb::Ecmp,
            channel_state: false,
            modulus: 16,
            snapshots: 6,
            interval_ms: 5,
            fault: None,
            emulate: false,
            seed,
        }
    }

    /// Parse a `key=value;...` spec string (the format [`Self::spec`]
    /// produces). Unknown keys and malformed values are errors.
    pub fn from_spec(spec: &str) -> Result<Scenario, String> {
        let mut sc = Scenario::base(0);
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field {part:?} (expected key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "topo" => {
                    sc.topo = if value == "leafspine" {
                        Topo::LeafSpine
                    } else if let Some(n) = value.strip_prefix("line:") {
                        Topo::Line(n.parse().map_err(|_| format!("bad line length {n:?}"))?)
                    } else {
                        return Err(format!("unknown topo {value:?}"));
                    };
                }
                "wl" => {
                    sc.workload = match value {
                        "hadoop" => WorkloadKind::Hadoop,
                        "graphx" => WorkloadKind::GraphX,
                        "memcache" => WorkloadKind::Memcache,
                        "cbr" => WorkloadKind::Cbr,
                        other => return Err(format!("unknown workload {other:?}")),
                    };
                }
                "lb" => {
                    sc.lb = match value {
                        "ecmp" => Lb::Ecmp,
                        "flowlet" => Lb::Flowlet,
                        other => return Err(format!("unknown lb {other:?}")),
                    };
                }
                "cs" => sc.channel_state = parse_bool(key, value)?,
                "mod" => sc.modulus = parse_num(key, value)?,
                "snaps" => sc.snapshots = parse_num(key, value)?,
                "ival" => sc.interval_ms = parse_num(key, value)?,
                "fault" => {
                    let (dev, after) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad fault {value:?} (expected dev@k)"))?;
                    sc.fault = Some(FaultSpec {
                        device: parse_num("fault device", dev)?,
                        after_snapshots: parse_num("fault snapshot", after)?,
                    });
                }
                "emu" => sc.emulate = parse_bool(key, value)?,
                "seed" => {
                    sc.seed = match value.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad seed {value:?}"))?,
                        None => value.parse().map_err(|_| format!("bad seed {value:?}"))?,
                    };
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        sc.validate()?;
        Ok(sc)
    }

    /// The canonical spec string ([`Self::from_spec`] round-trips it).
    pub fn spec(&self) -> String {
        let topo = match self.topo {
            Topo::LeafSpine => "leafspine".to_string(),
            Topo::Line(n) => format!("line:{n}"),
        };
        let wl = match self.workload {
            WorkloadKind::Hadoop => "hadoop",
            WorkloadKind::GraphX => "graphx",
            WorkloadKind::Memcache => "memcache",
            WorkloadKind::Cbr => "cbr",
        };
        let lb = match self.lb {
            Lb::Ecmp => "ecmp",
            Lb::Flowlet => "flowlet",
        };
        let mut spec = format!(
            "topo={topo};wl={wl};lb={lb};cs={};mod={};snaps={};ival={}",
            u8::from(self.channel_state),
            self.modulus,
            self.snapshots,
            self.interval_ms,
        );
        if let Some(f) = self.fault {
            spec.push_str(&format!(";fault={}@{}", f.device, f.after_snapshots));
        }
        if self.emulate {
            spec.push_str(";emu=1");
        }
        spec.push_str(&format!(";seed=0x{:x}", self.seed));
        spec
    }

    /// Structural sanity checks (workload/topology compatibility, fault
    /// target in range, …).
    pub fn validate(&self) -> Result<(), String> {
        let line_only = matches!(self.workload, WorkloadKind::Cbr);
        match self.topo {
            Topo::LeafSpine if line_only => {
                return Err("cbr workload requires a line topology".into())
            }
            Topo::Line(_) if !line_only => {
                return Err("paper workloads require topo=leafspine".into())
            }
            Topo::Line(0) => return Err("line topology needs ≥ 1 switch".into()),
            _ => {}
        }
        if self.emulate && !matches!(self.topo, Topo::Line(_)) {
            return Err("emulation only implements line topologies".into());
        }
        if self.emulate && self.channel_state {
            // A channel-state emulation run gates completion on real-thread
            // traffic timing; conformance keeps the emulation arm on the
            // no-channel-state variant (the fabric covers both).
            return Err("emulation conformance runs are no-channel-state only".into());
        }
        let num_devices = match self.topo {
            Topo::LeafSpine => 4,
            Topo::Line(n) => n,
        };
        if let Some(f) = self.fault {
            if f.device >= num_devices {
                return Err(format!(
                    "fault device {} out of range (topology has {num_devices})",
                    f.device
                ));
            }
            if f.after_snapshots == 0 || f.after_snapshots >= self.snapshots {
                return Err("fault must strike strictly mid-run (0 < k < snaps)".into());
            }
        }
        if self.modulus < 2 {
            return Err("modulus must be ≥ 2".into());
        }
        if self.snapshots == 0 {
            return Err("need at least one snapshot".into());
        }
        Ok(())
    }

    /// Devices this scenario expects to fail.
    pub fn faulted_devices(&self) -> Vec<u16> {
        self.fault.iter().map(|f| f.device).collect()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("bad {key} {other:?} (expected 0/1)")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad {key} {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let mut sc = Scenario::base(0xDEAD_BEEF);
        sc.topo = Topo::Line(4);
        sc.modulus = 8;
        sc.fault = Some(FaultSpec {
            device: 2,
            after_snapshots: 3,
        });
        sc.emulate = true;
        let spec = sc.spec();
        assert_eq!(Scenario::from_spec(&spec).unwrap(), sc);
    }

    #[test]
    fn leaf_spine_spec_round_trips() {
        let sc = Scenario::from_spec(
            "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=64;snaps=8;ival=3;seed=0x5eed",
        )
        .unwrap();
        assert_eq!(sc.topo, Topo::LeafSpine);
        assert_eq!(sc.workload, WorkloadKind::Memcache);
        assert_eq!(sc.lb, Lb::Flowlet);
        assert_eq!(sc.seed, 0x5eed);
        assert_eq!(Scenario::from_spec(&sc.spec()).unwrap(), sc);
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        assert!(Scenario::from_spec("topo=leafspine;wl=cbr").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=hadoop").is_err());
        assert!(Scenario::from_spec("topo=leafspine;wl=hadoop;emu=1").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;emu=1;cs=1").is_err());
        assert!(Scenario::from_spec("wl=cbr;topo=line:3;fault=7@2").is_err());
        assert!(Scenario::from_spec("wl=cbr;topo=line:3;snaps=4;fault=1@0").is_err());
        assert!(Scenario::from_spec("nonsense").is_err());
        assert!(Scenario::from_spec("topo=ring").is_err());
    }
}
