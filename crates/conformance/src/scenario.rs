//! The scenario DSL.
//!
//! A [`Scenario`] pins down everything a conformance run depends on —
//! topology, workload, load balancer, snapshot variant and modulus,
//! snapshot schedule, fault schedule, and the master seed — and round-trips
//! through a compact `key=value;...` spec string. The spec string is the
//! replay handle: failure artifacts embed it, and
//! `SPEEDLIGHT_SCENARIO='<spec>' cargo test -p conformance --test scenarios
//! replay_from_env` re-executes exactly the failing run.
//!
//! The adversarial tier composes *fault schedules* on top of the healthy
//! base: repeatable `fault=` (device kill), `flap=` (link down/up),
//! `notif=` (notification-export drop/dup/reorder), `cpcrash=`
//! (control-plane crash + recovery), plus PTP degradation knobs
//! (`ptpdrift`/`ptpstep`/`ptpasym`) and a traffic multiplier (`load=`).
//! Every combination still round-trips, so any generated chaos scenario
//! replays from its spec string alone.

use std::fmt;

/// Which topology the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topo {
    /// The paper's testbed shape: 2 leaves × 2 spines, 3 hosts per leaf.
    LeafSpine,
    /// A line of `n` switches with a host at each end (the only shape the
    /// threaded emulation implements, so all three substrates can run it).
    Line(u16),
}

/// Which traffic drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Terasort-style shuffle (leaf-spine only).
    Hadoop,
    /// PageRank supersteps (leaf-spine only).
    GraphX,
    /// mc-crusher multi-get (leaf-spine only).
    Memcache,
    /// Constant-rate bidirectional traffic (line topologies).
    Cbr,
}

/// Load balancer selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lb {
    /// Per-flow ECMP.
    Ecmp,
    /// Flowlet switching (50 µs gap).
    Flowlet,
}

/// A mid-run device failure: `device` stops participating in the snapshot
/// protocol (it keeps forwarding) just before the `after_snapshots`-th
/// snapshot (0-based) is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The failing device.
    pub device: u16,
    /// Snapshots scheduled before the failure.
    pub after_snapshots: usize,
}

/// A mid-run link flap: the inter-switch link out of `device` port `port`
/// goes down at `at_ms` and comes back `down_ms` later. A long `down_ms`
/// spanning several snapshot intervals is a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// One endpoint of the link (the peer is implied by the topology).
    pub device: u16,
    /// The port on `device` whose link flaps.
    pub port: u16,
    /// Simulated time the link goes down, milliseconds.
    pub at_ms: u64,
    /// Outage duration, milliseconds.
    pub down_ms: u64,
}

/// How a notification-export fault mangles the data-plane → CPU stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifFaultKind {
    /// Silently drop the matching notifications.
    Drop,
    /// Deliver the matching notifications twice.
    Dup,
    /// Hold a matching notification and release it after the next
    /// notification from a *different* unit (cross-unit reorder; per-unit
    /// FIFO order is preserved, as PCIe DMA would).
    Reorder,
}

/// A notification-export fault on one device: every `every`-th exported
/// notification is dropped, duplicated, or reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifFault {
    /// The device whose export path is faulty.
    pub device: u16,
    /// What happens to the selected notifications.
    pub kind: NotifFaultKind,
    /// Select every `every`-th notification (≥ 2).
    pub every: u32,
}

/// A control-plane crash: at `at_ms` the device's CPU agent dies (losing
/// all queued notifications and its tracking state); `down_ms` later it
/// restarts and resynchronizes against the observer's newest epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpCrash {
    /// The device whose control plane crashes.
    pub device: u16,
    /// Simulated crash time, milliseconds.
    pub at_ms: u64,
    /// Downtime before the restart, milliseconds.
    pub down_ms: u64,
}

/// A one-off PTP offset step on one device (servo glitch / restarted
/// `phc2sys`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtpStep {
    /// The device whose clock steps.
    pub device: u16,
    /// Simulated time of the step, milliseconds.
    pub at_ms: u64,
    /// Step magnitude, signed microseconds.
    pub step_us: i64,
}

/// A fully specified conformance run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Topology.
    pub topo: Topo,
    /// Workload.
    pub workload: WorkloadKind,
    /// Load balancer.
    pub lb: Lb,
    /// Channel-state variant?
    pub channel_state: bool,
    /// Snapshot ID modulus (small values stress §5.2 wraparound).
    pub modulus: u16,
    /// Number of snapshots to schedule.
    pub snapshots: usize,
    /// Schedule interval, milliseconds (simulated time for the fabric,
    /// wall-clock for the emulation).
    pub interval_ms: u64,
    /// Mid-run device failures (snapshot agents die, forwarding survives).
    pub faults: Vec<FaultSpec>,
    /// Mid-run link flaps / partitions.
    pub flaps: Vec<LinkFlap>,
    /// Notification-export faults (drop / dup / reorder).
    pub notif_faults: Vec<NotifFault>,
    /// Control-plane crash-recovery events.
    pub cp_crashes: Vec<CpCrash>,
    /// PTP holdover drift magnitude, parts-per-billion (0 = healthy).
    pub ptp_drift_ppb: i64,
    /// Optional PTP offset step.
    pub ptp_step: Option<PtpStep>,
    /// PTP path asymmetry, signed microseconds (0 = symmetric).
    pub ptp_asym_us: i64,
    /// Traffic multiplier over the workload's paper-calibrated rate
    /// (1 = paper load; 100 = the hostile incast tier).
    pub load: u32,
    /// Also run the threaded emulation (line topologies only).
    pub emulate: bool,
    /// Master seed.
    pub seed: u64,
}

/// The switch-side peer `(device, port)` of an inter-switch link, or
/// `None` if `(device, port)` is host-facing or unwired.
///
/// Wiring mirrors the fabric's builders: a line connects switch `i` port 1
/// to switch `i+1` port 0; the leaf-spine testbed connects leaf `l ∈ {0,1}`
/// port `s ∈ {0,1}` to spine `2+s` port `l`.
pub fn switch_peer(topo: Topo, device: u16, port: u16) -> Option<(u16, u16)> {
    match topo {
        Topo::Line(n) => {
            if device >= n {
                return None;
            }
            match port {
                0 if device > 0 => Some((device - 1, 1)),
                1 if device + 1 < n => Some((device + 1, 0)),
                _ => None,
            }
        }
        Topo::LeafSpine => {
            if device < 2 && port < 2 {
                Some((2 + port, device))
            } else if (2..4).contains(&device) && port < 2 {
                Some((port, device - 2))
            } else {
                None
            }
        }
    }
}

impl Scenario {
    /// A small healthy default (line of 3, CBR, no channel state).
    pub fn base(seed: u64) -> Scenario {
        Scenario {
            topo: Topo::Line(3),
            workload: WorkloadKind::Cbr,
            lb: Lb::Ecmp,
            channel_state: false,
            modulus: 16,
            snapshots: 6,
            interval_ms: 5,
            faults: Vec::new(),
            flaps: Vec::new(),
            notif_faults: Vec::new(),
            cp_crashes: Vec::new(),
            ptp_drift_ppb: 0,
            ptp_step: None,
            ptp_asym_us: 0,
            load: 1,
            emulate: false,
            seed,
        }
    }

    /// Parse a `key=value;...` spec string (the format [`Self::spec`]
    /// produces). Unknown keys and malformed values are errors; the
    /// fault-schedule keys (`fault`, `flap`, `notif`, `cpcrash`) repeat.
    pub fn from_spec(spec: &str) -> Result<Scenario, String> {
        let mut sc = Scenario::base(0);
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field {part:?} (expected key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "topo" => {
                    sc.topo = if value == "leafspine" {
                        Topo::LeafSpine
                    } else if let Some(n) = value.strip_prefix("line:") {
                        Topo::Line(n.parse().map_err(|_| format!("bad line length {n:?}"))?)
                    } else {
                        return Err(format!("unknown topo {value:?}"));
                    };
                }
                "wl" => {
                    sc.workload = match value {
                        "hadoop" => WorkloadKind::Hadoop,
                        "graphx" => WorkloadKind::GraphX,
                        "memcache" => WorkloadKind::Memcache,
                        "cbr" => WorkloadKind::Cbr,
                        other => return Err(format!("unknown workload {other:?}")),
                    };
                }
                "lb" => {
                    sc.lb = match value {
                        "ecmp" => Lb::Ecmp,
                        "flowlet" => Lb::Flowlet,
                        other => return Err(format!("unknown lb {other:?}")),
                    };
                }
                "cs" => sc.channel_state = parse_bool(key, value)?,
                "mod" => sc.modulus = parse_num(key, value)?,
                "snaps" => sc.snapshots = parse_num(key, value)?,
                "ival" => sc.interval_ms = parse_num(key, value)?,
                "fault" => {
                    let (dev, after) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad fault {value:?} (expected dev@k)"))?;
                    sc.faults.push(FaultSpec {
                        device: parse_num("fault device", dev)?,
                        after_snapshots: parse_num("fault snapshot", after)?,
                    });
                }
                "flap" => {
                    // dev:port@at+down
                    let (devport, timing) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad flap {value:?} (expected dev:port@at+down)"))?;
                    let (dev, port) = devport
                        .split_once(':')
                        .ok_or_else(|| format!("bad flap endpoint {devport:?}"))?;
                    let (at, down) = timing
                        .split_once('+')
                        .ok_or_else(|| format!("bad flap timing {timing:?}"))?;
                    sc.flaps.push(LinkFlap {
                        device: parse_num("flap device", dev)?,
                        port: parse_num("flap port", port)?,
                        at_ms: parse_num("flap time", at)?,
                        down_ms: parse_num("flap duration", down)?,
                    });
                }
                "notif" => {
                    // dev:kind:n
                    let mut it = value.splitn(3, ':');
                    let dev = it.next().unwrap_or_default();
                    let kind = it.next().ok_or_else(|| {
                        format!("bad notif {value:?} (expected dev:drop|dup|reorder:n)")
                    })?;
                    let every = it
                        .next()
                        .ok_or_else(|| format!("bad notif {value:?} (missing period)"))?;
                    sc.notif_faults.push(NotifFault {
                        device: parse_num("notif device", dev)?,
                        kind: match kind {
                            "drop" => NotifFaultKind::Drop,
                            "dup" => NotifFaultKind::Dup,
                            "reorder" => NotifFaultKind::Reorder,
                            other => return Err(format!("unknown notif kind {other:?}")),
                        },
                        every: parse_num("notif period", every)?,
                    });
                }
                "cpcrash" => {
                    // dev@at+down
                    let (dev, timing) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad cpcrash {value:?} (expected dev@at+down)"))?;
                    let (at, down) = timing
                        .split_once('+')
                        .ok_or_else(|| format!("bad cpcrash timing {timing:?}"))?;
                    sc.cp_crashes.push(CpCrash {
                        device: parse_num("cpcrash device", dev)?,
                        at_ms: parse_num("cpcrash time", at)?,
                        down_ms: parse_num("cpcrash downtime", down)?,
                    });
                }
                "ptpdrift" => sc.ptp_drift_ppb = parse_num(key, value)?,
                "ptpstep" => {
                    // dev@at:us (us signed)
                    let (dev, rest) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad ptpstep {value:?} (expected dev@at:us)"))?;
                    let (at, us) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("bad ptpstep timing {rest:?}"))?;
                    sc.ptp_step = Some(PtpStep {
                        device: parse_num("ptpstep device", dev)?,
                        at_ms: parse_num("ptpstep time", at)?,
                        step_us: parse_num("ptpstep magnitude", us)?,
                    });
                }
                "ptpasym" => sc.ptp_asym_us = parse_num(key, value)?,
                "load" => sc.load = parse_num(key, value)?,
                "emu" => sc.emulate = parse_bool(key, value)?,
                "seed" => {
                    sc.seed = match value.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad seed {value:?}"))?,
                        None => value.parse().map_err(|_| format!("bad seed {value:?}"))?,
                    };
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        sc.validate()?;
        Ok(sc)
    }

    /// The canonical spec string ([`Self::from_spec`] round-trips it).
    pub fn spec(&self) -> String {
        let topo = match self.topo {
            Topo::LeafSpine => "leafspine".to_string(),
            Topo::Line(n) => format!("line:{n}"),
        };
        let wl = match self.workload {
            WorkloadKind::Hadoop => "hadoop",
            WorkloadKind::GraphX => "graphx",
            WorkloadKind::Memcache => "memcache",
            WorkloadKind::Cbr => "cbr",
        };
        let lb = match self.lb {
            Lb::Ecmp => "ecmp",
            Lb::Flowlet => "flowlet",
        };
        let mut spec = format!(
            "topo={topo};wl={wl};lb={lb};cs={};mod={};snaps={};ival={}",
            u8::from(self.channel_state),
            self.modulus,
            self.snapshots,
            self.interval_ms,
        );
        for f in &self.faults {
            spec.push_str(&format!(";fault={}@{}", f.device, f.after_snapshots));
        }
        for f in &self.flaps {
            spec.push_str(&format!(
                ";flap={}:{}@{}+{}",
                f.device, f.port, f.at_ms, f.down_ms
            ));
        }
        for f in &self.notif_faults {
            let kind = match f.kind {
                NotifFaultKind::Drop => "drop",
                NotifFaultKind::Dup => "dup",
                NotifFaultKind::Reorder => "reorder",
            };
            spec.push_str(&format!(";notif={}:{kind}:{}", f.device, f.every));
        }
        for f in &self.cp_crashes {
            spec.push_str(&format!(";cpcrash={}@{}+{}", f.device, f.at_ms, f.down_ms));
        }
        if self.ptp_drift_ppb != 0 {
            spec.push_str(&format!(";ptpdrift={}", self.ptp_drift_ppb));
        }
        if let Some(s) = self.ptp_step {
            spec.push_str(&format!(";ptpstep={}@{}:{}", s.device, s.at_ms, s.step_us));
        }
        if self.ptp_asym_us != 0 {
            spec.push_str(&format!(";ptpasym={}", self.ptp_asym_us));
        }
        if self.load != 1 {
            spec.push_str(&format!(";load={}", self.load));
        }
        if self.emulate {
            spec.push_str(";emu=1");
        }
        spec.push_str(&format!(";seed=0x{:x}", self.seed));
        spec
    }

    /// Number of switches in this scenario's topology.
    pub fn num_devices(&self) -> u16 {
        match self.topo {
            Topo::LeafSpine => 4,
            Topo::Line(n) => n,
        }
    }

    /// Structural sanity checks (workload/topology compatibility, fault
    /// targets in range, knob bounds, …).
    pub fn validate(&self) -> Result<(), String> {
        let line_only = matches!(self.workload, WorkloadKind::Cbr);
        match self.topo {
            Topo::LeafSpine if line_only => {
                return Err("cbr workload requires a line topology".into())
            }
            Topo::Line(_) if !line_only => {
                return Err("paper workloads require topo=leafspine".into())
            }
            Topo::Line(0) => return Err("line topology needs ≥ 1 switch".into()),
            _ => {}
        }
        if self.emulate && !matches!(self.topo, Topo::Line(_)) {
            return Err("emulation only implements line topologies".into());
        }
        if self.emulate && self.channel_state {
            // A channel-state emulation run gates completion on real-thread
            // traffic timing; conformance keeps the emulation arm on the
            // no-channel-state variant (the fabric covers both).
            return Err("emulation conformance runs are no-channel-state only".into());
        }
        if self.emulate && self.has_adversarial_faults() {
            // The threaded emulation implements device kills only; the
            // adversarial fault classes live in the DES fabric.
            return Err("emulation runs support only fault= (device kill) schedules".into());
        }
        let num_devices = self.num_devices();
        for f in &self.faults {
            if f.device >= num_devices {
                return Err(format!(
                    "fault device {} out of range (topology has {num_devices})",
                    f.device
                ));
            }
            if f.after_snapshots == 0 || f.after_snapshots >= self.snapshots {
                return Err("fault must strike strictly mid-run (0 < k < snaps)".into());
            }
        }
        for f in &self.flaps {
            if switch_peer(self.topo, f.device, f.port).is_none() {
                return Err(format!(
                    "flap {}:{} is not an inter-switch link",
                    f.device, f.port
                ));
            }
            if f.at_ms == 0 || f.down_ms == 0 {
                return Err("flap timing must be ≥ 1 ms".into());
            }
        }
        for f in &self.notif_faults {
            if f.device >= num_devices {
                return Err(format!(
                    "notif device {} out of range (topology has {num_devices})",
                    f.device
                ));
            }
            if f.every < 2 {
                return Err("notif period must be ≥ 2 (every=1 starves the CP)".into());
            }
        }
        for f in &self.cp_crashes {
            if f.device >= num_devices {
                return Err(format!(
                    "cpcrash device {} out of range (topology has {num_devices})",
                    f.device
                ));
            }
            if f.at_ms == 0 || f.down_ms == 0 {
                return Err("cpcrash timing must be ≥ 1 ms".into());
            }
            if usize::from(self.modulus) <= self.snapshots {
                // A recovering CP resynchronizes to the newest issued epoch;
                // with modulus ≤ snapshots a freshly zeroed reference could
                // mis-unwrap wrapped IDs it never observed advancing.
                return Err("cpcrash scenarios need mod > snaps".into());
            }
        }
        if !(0..=100_000).contains(&self.ptp_drift_ppb) {
            return Err("ptpdrift must be in 0..=100000 ppb".into());
        }
        if let Some(s) = self.ptp_step {
            if s.device >= num_devices {
                return Err(format!(
                    "ptpstep device {} out of range (topology has {num_devices})",
                    s.device
                ));
            }
            if s.at_ms == 0 {
                return Err("ptpstep time must be ≥ 1 ms".into());
            }
            if s.step_us == 0 || s.step_us.abs() > 2_000 {
                return Err("ptpstep magnitude must be non-zero and ≤ 2000 µs".into());
            }
        }
        if self.ptp_asym_us.abs() > 200 {
            return Err("ptpasym must be within ±200 µs".into());
        }
        if self.load == 0 || self.load > 100 {
            return Err("load must be in 1..=100".into());
        }
        if self.modulus < 2 {
            return Err("modulus must be ≥ 2".into());
        }
        if self.snapshots == 0 {
            return Err("need at least one snapshot".into());
        }
        Ok(())
    }

    /// Devices this scenario kills (sorted, deduplicated).
    pub fn faulted_devices(&self) -> Vec<u16> {
        let mut devs: Vec<u16> = self.faults.iter().map(|f| f.device).collect();
        devs.sort_unstable();
        devs.dedup();
        devs
    }

    /// True iff the scenario uses any fault class beyond device kills
    /// (which the emulation substrate cannot inject).
    pub fn has_adversarial_faults(&self) -> bool {
        !self.flaps.is_empty()
            || !self.notif_faults.is_empty()
            || !self.cp_crashes.is_empty()
            || self.has_ptp_degradation()
            || self.load > 1
    }

    /// True iff any PTP degradation knob is set.
    pub fn has_ptp_degradation(&self) -> bool {
        self.ptp_drift_ppb != 0 || self.ptp_step.is_some() || self.ptp_asym_us != 0
    }

    /// True iff some fault class can legitimately make the observer
    /// force-finalize a snapshot (kills, notification drops, CP crashes,
    /// and — in channel-state mode — link outages that stall channels).
    pub fn force_inducing(&self) -> bool {
        !self.faults.is_empty()
            || !self.cp_crashes.is_empty()
            || self
                .notif_faults
                .iter()
                .any(|f| f.kind == NotifFaultKind::Drop)
            || (self.channel_state && !self.flaps.is_empty())
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("bad {key} {other:?} (expected 0/1)")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad {key} {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let mut sc = Scenario::base(0xDEAD_BEEF);
        sc.topo = Topo::Line(4);
        sc.modulus = 8;
        sc.faults = vec![FaultSpec {
            device: 2,
            after_snapshots: 3,
        }];
        sc.emulate = true;
        let spec = sc.spec();
        assert_eq!(Scenario::from_spec(&spec).unwrap(), sc);
    }

    #[test]
    fn leaf_spine_spec_round_trips() {
        let sc = Scenario::from_spec(
            "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=64;snaps=8;ival=3;seed=0x5eed",
        )
        .unwrap();
        assert_eq!(sc.topo, Topo::LeafSpine);
        assert_eq!(sc.workload, WorkloadKind::Memcache);
        assert_eq!(sc.lb, Lb::Flowlet);
        assert_eq!(sc.seed, 0x5eed);
        assert_eq!(Scenario::from_spec(&sc.spec()).unwrap(), sc);
    }

    #[test]
    fn adversarial_spec_round_trips() {
        let mut sc = Scenario::base(0xFEED);
        sc.topo = Topo::Line(4);
        sc.modulus = 32;
        sc.faults = vec![
            FaultSpec {
                device: 1,
                after_snapshots: 2,
            },
            FaultSpec {
                device: 3,
                after_snapshots: 2,
            },
        ];
        sc.flaps = vec![LinkFlap {
            device: 1,
            port: 1,
            at_ms: 12,
            down_ms: 6,
        }];
        sc.notif_faults = vec![NotifFault {
            device: 2,
            kind: NotifFaultKind::Reorder,
            every: 3,
        }];
        sc.cp_crashes = vec![CpCrash {
            device: 0,
            at_ms: 8,
            down_ms: 4,
        }];
        sc.ptp_drift_ppb = 50_000;
        sc.ptp_step = Some(PtpStep {
            device: 2,
            at_ms: 10,
            step_us: -250,
        });
        sc.ptp_asym_us = 40;
        sc.load = 10;
        let spec = sc.spec();
        assert_eq!(Scenario::from_spec(&spec).unwrap(), sc, "spec: {spec}");
    }

    #[test]
    fn switch_peer_matches_the_wiring() {
        // Line: interior links only.
        assert_eq!(switch_peer(Topo::Line(3), 0, 1), Some((1, 0)));
        assert_eq!(switch_peer(Topo::Line(3), 1, 0), Some((0, 1)));
        assert_eq!(switch_peer(Topo::Line(3), 0, 0), None); // host side
        assert_eq!(switch_peer(Topo::Line(3), 2, 1), None); // host side
                                                            // Leaf-spine: leaf l port s ↔ spine 2+s port l.
        assert_eq!(switch_peer(Topo::LeafSpine, 0, 1), Some((3, 0)));
        assert_eq!(switch_peer(Topo::LeafSpine, 3, 0), Some((0, 1)));
        assert_eq!(switch_peer(Topo::LeafSpine, 1, 0), Some((2, 1)));
        assert_eq!(switch_peer(Topo::LeafSpine, 0, 2), None); // host port
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        assert!(Scenario::from_spec("topo=leafspine;wl=cbr").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=hadoop").is_err());
        assert!(Scenario::from_spec("topo=leafspine;wl=hadoop;emu=1").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;emu=1;cs=1").is_err());
        assert!(Scenario::from_spec("wl=cbr;topo=line:3;fault=7@2").is_err());
        assert!(Scenario::from_spec("wl=cbr;topo=line:3;snaps=4;fault=1@0").is_err());
        assert!(Scenario::from_spec("nonsense").is_err());
        assert!(Scenario::from_spec("topo=ring").is_err());
    }

    #[test]
    fn adversarial_combinations_are_rejected() {
        // Flap must hit an inter-switch link.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;flap=0:0@5+5").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;flap=2:1@5+5").is_err());
        // Notif period 1 would starve the control plane.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;notif=1:drop:1").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;notif=1:mangle:3").is_err());
        // CP crash needs headroom between modulus and snapshot count.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;mod=4;snaps=6;cpcrash=1@10+5").is_err());
        // PTP knob bounds.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;ptpdrift=200000").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;ptpstep=1@5:5000").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;ptpasym=500").is_err());
        // Load bounds.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;load=0").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;load=101").is_err());
        // Emulation supports kills only.
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;emu=1;flap=1:1@5+5").is_err());
        assert!(Scenario::from_spec("topo=line:3;wl=cbr;emu=1;load=10").is_err());
    }
}
