//! Seeded adversarial scenario generation and shrinking.
//!
//! [`AdversarialGen`] maps `(seed, index)` deterministically onto a valid
//! chaos [`Scenario`]: a healthy base plus one or two fault classes drawn
//! from the full taxonomy (device kills, link flaps/partitions, incast
//! load, notification-export drop/dup/reorder, control-plane
//! crash-recovery, PTP degradation), with every knob inside the bounds
//! `Scenario::validate` enforces. The same `(seed, index)` always yields
//! the same scenario, so a CI batch is pinned by its seed alone and any
//! failure replays from the embedded spec string.
//!
//! [`shrink`] reduces a failing scenario to a locally minimal one under a
//! caller-supplied "still fails" predicate — dropping fault-schedule
//! entries one at a time, zeroing PTP knobs, collapsing load, and
//! shortening the run — so the artifact a human debugs is as small as the
//! failure allows.

use crate::scenario::{
    switch_peer, CpCrash, FaultSpec, Lb, LinkFlap, NotifFault, NotifFaultKind, PtpStep, Scenario,
    Topo, WorkloadKind,
};
use netsim::rng::SimRng;

/// The fault classes the generator composes.
const CLASSES: &[FaultClass] = &[
    FaultClass::Kill,
    FaultClass::Flap,
    FaultClass::Notif,
    FaultClass::CpCrash,
    FaultClass::Ptp,
    FaultClass::Load,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultClass {
    Kill,
    Flap,
    Notif,
    CpCrash,
    Ptp,
    Load,
}

/// Deterministic adversarial scenario stream.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialGen {
    seed: u64,
}

impl AdversarialGen {
    /// A generator rooted at `seed`.
    pub fn new(seed: u64) -> AdversarialGen {
        AdversarialGen { seed }
    }

    /// The `idx`-th scenario of the stream. Always valid; always the same
    /// for the same `(seed, idx)`.
    pub fn scenario(&self, idx: u64) -> Scenario {
        let mut rng = SimRng::new(self.seed).fork_idx("adversarial", idx);

        // Base: mostly lines (all fault classes apply there); occasionally
        // the leaf-spine testbed with a paper workload.
        let mut sc = Scenario::base(self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if rng.chance(0.2) {
            sc.topo = Topo::LeafSpine;
            sc.workload = *rng.pick(&[
                WorkloadKind::Hadoop,
                WorkloadKind::GraphX,
                WorkloadKind::Memcache,
            ]);
        } else {
            sc.topo = Topo::Line(2 + rng.below(3) as u16);
        }
        sc.lb = *rng.pick(&[Lb::Ecmp, Lb::Flowlet]);
        sc.channel_state = rng.chance(0.5);
        sc.snapshots = 4 + rng.index(3); // 4..=6
        sc.interval_ms = 4 + rng.below(3); // 4..=6 ms
                                           // Keep modulus above the snapshot count so every fault class
                                           // (including cpcrash) composes; small enough to keep wrapping.
        sc.modulus = *rng.pick(&[16u16, 32, 64]);

        let mut classes: Vec<FaultClass> = CLASSES.to_vec();
        rng.shuffle(&mut classes);
        let picks = 1 + usize::from(rng.chance(0.4));
        for &class in classes.iter().take(picks) {
            self.apply(class, &mut sc, &mut rng);
        }

        debug_assert!(sc.validate().is_ok(), "generated invalid: {}", sc.spec());
        sc
    }

    /// The first `n` scenarios of the stream.
    pub fn batch(&self, n: u64) -> Vec<Scenario> {
        (0..n).map(|i| self.scenario(i)).collect()
    }

    fn apply(&self, class: FaultClass, sc: &mut Scenario, rng: &mut SimRng) {
        let devs = sc.num_devices();
        let run_ms = sc.interval_ms * sc.snapshots as u64;
        match class {
            FaultClass::Kill => {
                // Strictly mid-run: 0 < k < snapshots.
                sc.faults.push(FaultSpec {
                    device: rng.below(u64::from(devs)) as u16,
                    after_snapshots: 1 + rng.index(sc.snapshots - 1),
                });
            }
            FaultClass::Flap => {
                // Draw an inter-switch endpoint via rejection (every
                // topology here has several).
                let (device, port) = loop {
                    let d = rng.below(u64::from(devs)) as u16;
                    let p = rng.below(2) as u16;
                    if switch_peer(sc.topo, d, p).is_some() {
                        break (d, p);
                    }
                };
                let at_ms = 1 + rng.below(run_ms.saturating_sub(2).max(1));
                sc.flaps.push(LinkFlap {
                    device,
                    port,
                    at_ms,
                    down_ms: 1 + rng.below(2 * sc.interval_ms),
                });
            }
            FaultClass::Notif => {
                sc.notif_faults.push(NotifFault {
                    device: rng.below(u64::from(devs)) as u16,
                    kind: *rng.pick(&[
                        NotifFaultKind::Drop,
                        NotifFaultKind::Dup,
                        NotifFaultKind::Reorder,
                    ]),
                    every: 2 + rng.below(4) as u32,
                });
            }
            FaultClass::CpCrash => {
                sc.cp_crashes.push(CpCrash {
                    device: rng.below(u64::from(devs)) as u16,
                    at_ms: 1 + rng.below(run_ms.saturating_sub(2).max(1)),
                    down_ms: 1 + rng.below(2 * sc.interval_ms),
                });
            }
            FaultClass::Ptp => {
                sc.ptp_drift_ppb = rng.below(100_001) as i64;
                if rng.chance(0.5) {
                    // Non-zero signed step within ±2000 µs.
                    let mag = 1 + rng.below(2_000) as i64;
                    sc.ptp_step = Some(PtpStep {
                        device: rng.below(u64::from(devs)) as u16,
                        at_ms: 1 + rng.below(run_ms.max(2) - 1),
                        step_us: if rng.chance(0.5) { mag } else { -mag },
                    });
                }
                if rng.chance(0.5) {
                    let mag = rng.below(201) as i64;
                    sc.ptp_asym_us = if rng.chance(0.5) { mag } else { -mag };
                }
            }
            FaultClass::Load => {
                // Bounded well under the named 100× case so a generated
                // batch stays cheap.
                sc.load = *rng.pick(&[5u32, 10, 25]);
            }
        }
    }
}

/// Shrink `sc` to a locally minimal scenario that still satisfies
/// `still_fails`. Deterministic first-improvement descent over a fixed
/// edit list, iterated to a fixpoint; the result is valid and fails the
/// predicate just like the input. Candidate edits: drop one fault-schedule
/// entry, clear one PTP knob, reset load, halve the snapshot count, and
/// shorten a line topology.
pub fn shrink(sc: &Scenario, still_fails: impl Fn(&Scenario) -> bool) -> Scenario {
    assert!(still_fails(sc), "shrink needs a failing input");
    let mut best = sc.clone();
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            debug_assert!(cand.validate().is_ok(), "bad shrink: {}", cand.spec());
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Strictly simpler valid variants of `sc`, in a fixed order.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |cand: Scenario| {
        if cand.validate().is_ok() {
            out.push(cand);
        }
    };
    for i in 0..sc.faults.len() {
        let mut c = sc.clone();
        c.faults.remove(i);
        push(c);
    }
    for i in 0..sc.flaps.len() {
        let mut c = sc.clone();
        c.flaps.remove(i);
        push(c);
    }
    for i in 0..sc.notif_faults.len() {
        let mut c = sc.clone();
        c.notif_faults.remove(i);
        push(c);
    }
    for i in 0..sc.cp_crashes.len() {
        let mut c = sc.clone();
        c.cp_crashes.remove(i);
        push(c);
    }
    if sc.ptp_drift_ppb != 0 {
        let mut c = sc.clone();
        c.ptp_drift_ppb = 0;
        push(c);
    }
    if sc.ptp_step.is_some() {
        let mut c = sc.clone();
        c.ptp_step = None;
        push(c);
    }
    if sc.ptp_asym_us != 0 {
        let mut c = sc.clone();
        c.ptp_asym_us = 0;
        push(c);
    }
    if sc.load > 1 {
        let mut c = sc.clone();
        c.load = 1;
        push(c);
    }
    if sc.snapshots > 2 {
        // Halving must keep every kill strictly mid-run, so `validate`
        // (via `push`) arbitrates.
        let mut c = sc.clone();
        c.snapshots = (sc.snapshots / 2).max(2);
        push(c);
    }
    if let Topo::Line(n) = sc.topo {
        if n > 2 {
            let mut c = sc.clone();
            c.topo = Topo::Line(n - 1);
            // Retarget anything that referenced the removed switch.
            let keep = |d: u16| d < n - 1;
            c.faults.retain(|f| keep(f.device));
            c.flaps
                .retain(|f| switch_peer(c.topo, f.device, f.port).is_some());
            c.notif_faults.retain(|f| keep(f.device));
            c.cp_crashes.retain(|f| keep(f.device));
            if let Some(s) = c.ptp_step {
                if !keep(s.device) {
                    c.ptp_step = None;
                }
            }
            push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = AdversarialGen::new(0xC0FFEE).batch(64);
        let b = AdversarialGen::new(0xC0FFEE).batch(64);
        assert_eq!(a, b);
        for sc in &a {
            sc.validate().unwrap();
            // Spec round-trip: the replay handle is lossless.
            assert_eq!(&Scenario::from_spec(&sc.spec()).unwrap(), sc);
        }
        // A different seed explores a different stream.
        assert_ne!(a, AdversarialGen::new(0xBEEF).batch(64));
    }

    #[test]
    fn generated_batches_cover_the_fault_taxonomy() {
        let batch = AdversarialGen::new(0x5EED).batch(128);
        assert!(batch.iter().any(|s| !s.faults.is_empty()));
        assert!(batch.iter().any(|s| !s.flaps.is_empty()));
        assert!(batch.iter().any(|s| !s.notif_faults.is_empty()));
        assert!(batch.iter().any(|s| !s.cp_crashes.is_empty()));
        assert!(batch.iter().any(|s| s.has_ptp_degradation()));
        assert!(batch.iter().any(|s| s.load > 1));
        assert!(batch.iter().any(|s| s.topo == Topo::LeafSpine));
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_scenario() {
        // "Fails" iff it still contains a cp crash on device 1.
        let sc = AdversarialGen::new(7)
            .batch(256)
            .into_iter()
            .find(|s| {
                s.cp_crashes.iter().any(|c| c.device == 1)
                    && (s.has_ptp_degradation()
                        || s.load > 1
                        || !s.faults.is_empty()
                        || !s.flaps.is_empty()
                        || !s.notif_faults.is_empty()
                        || s.cp_crashes.len() > 1)
            })
            .expect("stream contains a compound cpcrash scenario");
        let fails = |s: &Scenario| s.cp_crashes.iter().any(|c| c.device == 1);
        let min = shrink(&sc, fails);
        assert!(fails(&min));
        min.validate().unwrap();
        // Everything irrelevant to the predicate was stripped.
        assert_eq!(min.cp_crashes.len(), 1);
        assert!(min.faults.is_empty());
        assert!(min.flaps.is_empty());
        assert!(min.notif_faults.is_empty());
        assert!(!min.has_ptp_degradation());
        assert_eq!(min.load, 1);
        assert_eq!(min.snapshots, 2);
    }

    #[test]
    fn shrink_is_deterministic() {
        let sc = AdversarialGen::new(11).scenario(3);
        let fails = |_: &Scenario| true; // everything "fails"
        assert_eq!(shrink(&sc, fails), shrink(&sc, fails));
    }
}
