//! The adversarial conformance tier.
//!
//! Named chaos scenarios (`conformance::matrix::ADVERSARIAL`) run through
//! the same differential oracle as the healthy matrix, under the
//! per-fault-class invariant table; a pinned-seed generated batch proves
//! the `AdversarialGen` stream stays deterministic and conformant at any
//! `SPEEDLIGHT_JOBS`; and mutation twins prove each adversarial oracle
//! rule actually fails when its fault handling is broken.

use conformance::oracle::check_run;
use conformance::runner::{expectations, run_fabric};
use conformance::{
    assert_conformant, matrix, matrix_digest, run_matrix, run_scenario, AdversarialGen, Divergence,
    Scenario,
};
use speedlight_core::observer::UnitOutcome;

fn sc(spec: &str) -> Scenario {
    Scenario::from_spec(spec).expect("adversarial spec must parse")
}

fn run_and_check(spec: &str) {
    let scenario = sc(spec);
    let outcome = run_scenario(&scenario);
    assert_conformant(&outcome);
    assert_eq!(
        outcome.fabric.snapshots.len(),
        scenario.snapshots,
        "fabric must complete every scheduled snapshot for `{spec}` \
         (force-finalization covers faulted epochs)"
    );
    assert!(
        !outcome.fabric.log.is_empty(),
        "fabric delivery log empty for `{spec}`"
    );
}

// One test per adversarial scenario; `covered_adversarial_scenarios`
// below proves this list matches `matrix::ADVERSARIAL` exactly.
macro_rules! adversarial_tests {
    ($($name:ident,)*) => {
        $(
            #[test]
            fn $name() {
                run_and_check(matrix::spec(stringify!($name)));
            }
        )*
        const TESTED_NAMES: &[&str] = &[$(stringify!($name)),*];
    };
}

adversarial_tests! {
    flap_line_cs,
    flap_line_nocs,
    partition_line_cs,
    partition_leafspine_cs,
    incast_line_10x,
    incast_line_100x_nocs,
    incast_memcache_25x,
    notif_drop_line,
    notif_dup_line,
    notif_reorder_line,
    cpcrash_line,
    cpcrash_line_cs,
    ptp_drift_line,
    ptp_step_line,
    ptp_asym_leafspine,
    twin_kill_line,
    chaos_cocktail_cs,
}

/// Every adversarial scenario has a per-scenario test and vice versa.
#[test]
fn covered_adversarial_scenarios() {
    let tested: std::collections::BTreeSet<&str> = TESTED_NAMES.iter().copied().collect();
    let in_matrix: std::collections::BTreeSet<&str> =
        matrix::ADVERSARIAL.iter().map(|&(n, _)| n).collect();
    assert_eq!(tested, in_matrix);
}

/// The tier's acceptance floor: ≥ 12 scenarios spanning link flaps,
/// partitions, incast (including one at 100×), every notification fault
/// kind, CP crash-recovery, and ≥ 3 PTP-degradation variants — with
/// distinct seeds, disjoint from the healthy matrix.
#[test]
fn adversarial_tier_meets_coverage_floor() {
    let scenarios: Vec<Scenario> = matrix::ADVERSARIAL.iter().map(|&(_, s)| sc(s)).collect();
    assert!(scenarios.len() >= 12, "only {} scenarios", scenarios.len());
    assert!(scenarios.iter().any(|s| !s.flaps.is_empty()));
    // A partition: an outage spanning several snapshot intervals.
    assert!(scenarios
        .iter()
        .any(|s| s.flaps.iter().any(|f| f.down_ms >= 2 * s.interval_ms)));
    assert!(scenarios.iter().any(|s| s.load >= 10));
    assert!(scenarios.iter().any(|s| s.load == 100));
    for kind in [
        conformance::NotifFaultKind::Drop,
        conformance::NotifFaultKind::Dup,
        conformance::NotifFaultKind::Reorder,
    ] {
        assert!(
            scenarios
                .iter()
                .any(|s| s.notif_faults.iter().any(|f| f.kind == kind)),
            "notif fault kind {kind:?} missing"
        );
    }
    assert!(scenarios.iter().any(|s| !s.cp_crashes.is_empty()));
    assert!(
        scenarios.iter().filter(|s| s.has_ptp_degradation()).count() >= 3,
        "need ≥ 3 PTP-degradation variants"
    );
    // Satellite: multiple kills in the same epoch.
    assert!(scenarios.iter().any(|s| s.faults.len() >= 2
        && s.faults
            .windows(2)
            .any(|w| w[0].after_snapshots == w[1].after_snapshots)));
    let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
    seeds.extend(matrix::SCENARIOS.iter().map(|&(_, s)| sc(s).seed));
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "duplicate seeds across matrices");
}

/// Two devices dying in the same epoch: the run force-finalizes, and every
/// forced snapshot past the kill point excludes *both* (regression for the
/// multi-fault `FaultSpec` schedule — `fault=1@3;fault=2@3`).
#[test]
fn twin_kill_same_epoch_forces_and_excludes_both() {
    let scenario = sc(matrix::spec("twin_kill_line"));
    let expect = expectations(&scenario);
    let (run, conservation) = run_fabric(&scenario);
    assert!(conservation.is_empty(), "{conservation:?}");
    assert!(check_run(&run, &expect).is_empty(), "oracle must pass");
    let forced: Vec<_> = run.snapshots.iter().filter(|e| e.forced).collect();
    assert!(!forced.is_empty(), "twin kill must force-finalize");
    for entry in &forced {
        if entry.snapshot.epoch >= 4 {
            for dev in [1u16, 2] {
                assert!(
                    entry.snapshot.excluded.contains(&dev),
                    "epoch {} forced without excluding device {dev}",
                    entry.snapshot.epoch
                );
            }
        }
    }
    // And the epochs completed before the kill were not forced.
    assert!(run
        .snapshots
        .iter()
        .any(|e| !e.forced && e.snapshot.epoch < 4));
}

/// The whole adversarial tier, serial vs parallel: byte-identical digests.
#[test]
fn adversarial_parallel_matches_serial() {
    let scenarios: Vec<Scenario> = matrix::ADVERSARIAL.iter().map(|&(_, s)| sc(s)).collect();
    let serial = parfan::with_jobs(1, || matrix_digest(&run_matrix(&scenarios)));
    let parallel = parfan::with_jobs(4, || matrix_digest(&run_matrix(&scenarios)));
    assert_eq!(
        serial, parallel,
        "parallel adversarial digest {parallel:#018x} != serial {serial:#018x}"
    );
}

/// A pinned-seed generated batch runs conformant, and its matrix digest is
/// identical at any parallelism (the CI `adversarial` job's contract).
#[test]
fn generated_batch_is_conformant_and_parallel_stable() {
    let batch = AdversarialGen::new(0xAD5EED).batch(32);
    let serial = parfan::with_jobs(1, || {
        let outcomes = run_matrix(&batch);
        for o in &outcomes {
            assert_conformant(o);
        }
        matrix_digest(&outcomes)
    });
    let parallel = parfan::with_jobs(2, || matrix_digest(&run_matrix(&batch)));
    assert_eq!(
        serial, parallel,
        "generated batch digest {parallel:#018x} != serial {serial:#018x}"
    );
}

// --- Mutation twins: each adversarial oracle rule must actually fail ---
// --- when the handling it checks is broken.                          ---

/// Rule: forcing is only legal when the fault schedule explains it.
/// Breaking the expectation (allow_forced = false) on a genuinely forced
/// run must produce `UnexpectedForce`.
#[test]
fn mutation_unexplained_force_is_detected() {
    let scenario = sc(matrix::spec("twin_kill_line"));
    let (run, _) = run_fabric(&scenario);
    let mut expect = expectations(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    expect.allow_forced = false;
    let divergences = check_run(&run, &expect);
    assert!(
        divergences
            .iter()
            .any(|d| matches!(d, Divergence::UnexpectedForce { .. })),
        "disallowed force must be detected, got {divergences:?}"
    );
}

/// Rule: a killed device must be excluded from every forced snapshot past
/// its kill epoch. Erasing the exclusion must produce `MissingExclusion`.
#[test]
fn mutation_missing_exclusion_is_detected() {
    let scenario = sc(matrix::spec("twin_kill_line"));
    let expect = expectations(&scenario);
    let (run, _) = run_fabric(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    let mut corrupted = run.clone();
    let entry = corrupted
        .snapshots
        .iter_mut()
        .find(|e| e.forced && e.snapshot.epoch >= 4)
        .expect("a forced post-kill snapshot exists");
    assert!(entry.snapshot.excluded.remove(&1));
    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences
            .iter()
            .any(|d| matches!(d, Divergence::MissingExclusion { device: 1, .. })),
        "missing exclusion must be detected, got {divergences:?}"
    );
}

/// Rule: under a strict schedule, forced snapshots may exclude only the
/// devices the fault class predicts. Injecting an unrelated exclusion
/// must produce `UnexpectedExclusion`.
#[test]
fn mutation_unexpected_exclusion_is_detected() {
    let scenario = sc(matrix::spec("twin_kill_line"));
    let expect = expectations(&scenario);
    assert!(expect.strict_exclusions, "twin_kill_line is a strict run");
    let (run, _) = run_fabric(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    let mut corrupted = run.clone();
    let entry = corrupted
        .snapshots
        .iter_mut()
        .find(|e| e.forced)
        .expect("a forced snapshot exists");
    // Device 0 is neither killed nor in the may-exclude set.
    entry.snapshot.excluded.insert(0);
    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences
            .iter()
            .any(|d| matches!(d, Divergence::UnexpectedExclusion { device: 0, .. })),
        "unrelated exclusion must be detected, got {divergences:?}"
    );
}

/// Rule: notification duplication earns no slack — values stay exact.
/// Corrupting a reported value in the dup run must produce
/// `ValueMismatch`.
#[test]
fn mutation_corrupt_value_under_dup_fault_is_detected() {
    let scenario = sc(matrix::spec("notif_dup_line"));
    let expect = expectations(&scenario);
    assert!(!expect.allow_forced, "dup must not excuse forcing");
    let (run, _) = run_fabric(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.last_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { local, .. } = outcome else {
        unreachable!()
    };
    *local += 1;
    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ValueMismatch { unit, .. } if *unit == target
        )),
        "value corruption under dup fault must be detected, got {divergences:?}"
    );
}

/// Rule: cross-unit reorder is absorbed exactly, so a forced completion
/// in the reorder run is illegal. Flipping a snapshot's forced flag must
/// produce `UnexpectedForce`.
#[test]
fn mutation_forced_flag_under_reorder_is_detected() {
    let scenario = sc(matrix::spec("notif_reorder_line"));
    let expect = expectations(&scenario);
    assert!(!expect.allow_forced, "reorder must not excuse forcing");
    let (run, _) = run_fabric(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    let mut corrupted = run.clone();
    corrupted
        .snapshots
        .first_mut()
        .expect("snapshots exist")
        .forced = true;
    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences
            .iter()
            .any(|d| matches!(d, Divergence::UnexpectedForce { .. })),
        "forced-flag corruption must be detected, got {divergences:?}"
    );
}

/// Rule: bounded PTP degradation earns no slack — values stay exact.
/// Corrupting a reported value in the drift run must produce
/// `ValueMismatch`.
#[test]
fn mutation_corrupt_value_under_ptp_drift_is_detected() {
    let scenario = sc(matrix::spec("ptp_drift_line"));
    let expect = expectations(&scenario);
    assert!(
        !expect.allow_forced,
        "bounded drift must not excuse forcing"
    );
    let (run, _) = run_fabric(&scenario);
    assert!(check_run(&run, &expect).is_empty());
    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.first_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { local, .. } = outcome else {
        unreachable!()
    };
    *local = local.wrapping_add(3);
    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ValueMismatch { unit, .. } if *unit == target
        )),
        "value corruption under PTP drift must be detected, got {divergences:?}"
    );
}
