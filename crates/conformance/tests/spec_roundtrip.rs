//! Property-based fuzz of the scenario spec codec.
//!
//! The spec string is the replay handle for every conformance failure —
//! artifacts embed it, `SPEEDLIGHT_SCENARIO` replays it, and the
//! adversarial generator shrinks through it. Two properties keep that
//! contract honest:
//!
//! 1. **Round-trip**: for any valid-by-construction [`Scenario`],
//!    `from_spec(spec(sc)) == sc` exactly.
//! 2. **Totality**: `from_spec` never panics on arbitrary input, and when
//!    it *does* accept a string, the parsed scenario re-serializes to a
//!    spec that parses back to the same value (canonicalization is a
//!    fixpoint).
//!
//! Case counts honor `PROPTEST_CASES`; pinned regression specs at the
//! bottom cover corners the grammar makes easy to get wrong.

use conformance::scenario::switch_peer;
use conformance::{
    CpCrash, FaultSpec, Lb, LinkFlap, NotifFault, NotifFaultKind, PtpStep, Scenario, Topo,
    WorkloadKind,
};
use proptest::prelude::*;

/// Inter-switch endpoints of a topology (every valid `flap=` target).
fn switch_links(topo: Topo) -> Vec<(u16, u16)> {
    let devices = match topo {
        Topo::LeafSpine => 4,
        Topo::Line(n) => n,
    };
    let mut out = Vec::new();
    for d in 0..devices {
        for p in 0..2 {
            if switch_peer(topo, d, p).is_some() {
                out.push((d, p));
            }
        }
    }
    out
}

/// Raw draws for one scenario: selectors and magnitudes only, so every
/// range is static. `build_scenario` folds them into a valid scenario
/// (devices and link endpoints are picked modulo the drawn topology).
type RawBase = (u16, u8, bool, bool, usize, u64, u64, u32);
type RawFaults = Vec<(u16, usize)>;
type RawFlaps = Vec<(usize, u64, u64)>;
type RawNotifs = Vec<(u16, u8, u32)>;
type RawCrashes = Vec<(u16, u64, u64)>;
type RawPtp = (i64, bool, (u16, u64, bool, i64), i64);

fn build_scenario(
    base: RawBase,
    faults: RawFaults,
    flaps: RawFlaps,
    notifs: RawNotifs,
    crashes: RawCrashes,
    ptp: RawPtp,
) -> Scenario {
    let (topo_sel, wl_sel, cs, flowlet, snapshots, interval_ms, seed, load) = base;
    let topo = if topo_sel == 0 {
        Topo::LeafSpine
    } else {
        Topo::Line(topo_sel + 1) // 2..=5 switches
    };
    let devices = match topo {
        Topo::LeafSpine => 4u16,
        Topo::Line(n) => n,
    };
    let links = switch_links(topo);
    let (drift, has_step, (step_dev, step_at, step_pos, step_mag), asym) = ptp;

    let mut sc = Scenario::base(seed);
    sc.topo = topo;
    sc.workload = match topo {
        Topo::Line(_) => WorkloadKind::Cbr,
        Topo::LeafSpine => [
            WorkloadKind::Hadoop,
            WorkloadKind::GraphX,
            WorkloadKind::Memcache,
        ][usize::from(wl_sel % 3)],
    };
    sc.lb = if flowlet { Lb::Flowlet } else { Lb::Ecmp };
    sc.channel_state = cs;
    sc.snapshots = snapshots;
    sc.interval_ms = interval_ms;
    // Device kills strike strictly mid-run: 0 < k < snapshots (≥ 2 here).
    sc.faults = faults
        .into_iter()
        .map(|(d, k)| FaultSpec {
            device: d % devices,
            after_snapshots: 1 + k % (snapshots - 1).max(1),
        })
        .collect();
    sc.flaps = flaps
        .into_iter()
        .map(|(i, at_ms, down_ms)| {
            let (device, port) = links[i % links.len()];
            LinkFlap {
                device,
                port,
                at_ms,
                down_ms,
            }
        })
        .collect();
    sc.notif_faults = notifs
        .into_iter()
        .map(|(d, kind, every)| NotifFault {
            device: d % devices,
            kind: [
                NotifFaultKind::Drop,
                NotifFaultKind::Dup,
                NotifFaultKind::Reorder,
            ][usize::from(kind % 3)],
            every,
        })
        .collect();
    sc.cp_crashes = crashes
        .into_iter()
        .map(|(d, at_ms, down_ms)| CpCrash {
            device: d % devices,
            at_ms,
            down_ms,
        })
        .collect();
    // CP crash-recovery requires modulus headroom over the run length.
    sc.modulus = if sc.cp_crashes.is_empty() { 16 } else { 32 };
    sc.ptp_drift_ppb = drift;
    sc.ptp_step = has_step.then_some(PtpStep {
        device: step_dev % devices,
        at_ms: step_at,
        step_us: if step_pos { step_mag } else { -step_mag },
    });
    sc.ptp_asym_us = asym;
    sc.load = load;
    sc
}

proptest! {
    /// Any valid scenario round-trips through its spec string exactly.
    #[test]
    fn valid_scenarios_round_trip(
        base in (
            0u16..5,
            0u8..3,
            any::<bool>(),
            any::<bool>(),
            2usize..=8,
            1u64..=10,
            any::<u64>(),
            1u32..=100,
        ),
        faults in collection::vec((any::<u16>(), any::<usize>()), 0..3),
        flaps in collection::vec((any::<usize>(), 1u64..=40, 1u64..=25), 0..3),
        notifs in collection::vec((any::<u16>(), any::<u8>(), 2u32..=6), 0..3),
        crashes in collection::vec((any::<u16>(), 1u64..=40, 1u64..=20), 0..2),
        ptp in (
            0i64..=100_000,
            any::<bool>(),
            (any::<u16>(), 1u64..=40, any::<bool>(), 1i64..=2_000),
            -200i64..=200,
        ),
    ) {
        let sc = build_scenario(base, faults, flaps, notifs, crashes, ptp);
        prop_assert!(sc.validate().is_ok(), "strategy must build valid scenarios: {}", sc);
        let spec = sc.spec();
        let back = Scenario::from_spec(&spec)
            .map_err(|e| TestCaseError::fail(format!("{spec}: {e}")))?;
        prop_assert_eq!(&back, &sc, "round-trip mismatch via {}", spec);
    }

    /// `from_spec` is total (no panics) on arbitrary printable strings, and
    /// any string it accepts canonicalizes to a fixpoint.
    #[test]
    fn arbitrary_strings_never_panic(input in "[ -~]{0,120}") {
        if let Ok(sc) = Scenario::from_spec(&input) {
            let canon = sc.spec();
            let again = Scenario::from_spec(&canon)
                .map_err(|e| TestCaseError::fail(format!("canonical {canon}: {e}")))?;
            prop_assert_eq!(again, sc, "canonicalization is not a fixpoint for {}", input);
        }
    }

    /// Key-shaped junk: strings made of plausible key/value fragments probe
    /// the parser's branchy paths far more densely than uniform noise.
    #[test]
    fn keyish_junk_never_panics(
        parts in collection::vec((0u8..10, "[-a-z0-9@:+x]{0,8}"), 0..8),
    ) {
        let input: Vec<String> = parts
            .into_iter()
            .map(|(sel, payload)| match sel {
                0 => "topo=line:3".to_string(),
                1 => "topo=leafspine".to_string(),
                2 => "wl=cbr".to_string(),
                3 => format!("fault={payload}"),
                4 => format!("flap={payload}"),
                5 => format!("notif={payload}"),
                6 => format!("cpcrash={payload}"),
                7 => format!("ptpstep={payload}"),
                8 => format!("mod={payload}"),
                _ => format!("seed={payload}"),
            })
            .collect();
        let input = input.join(";");
        if let Ok(sc) = Scenario::from_spec(&input) {
            let canon = sc.spec();
            prop_assert_eq!(
                Scenario::from_spec(&canon).ok(),
                Some(sc),
                "canonicalization failed for {}", input
            );
        }
    }
}

/// Pinned corners: specs that must keep parsing (and round-tripping)
/// forever, plus specs that must keep failing. Grammar regressions show up
/// here before the randomized properties get a chance to find them again.
#[test]
fn pinned_spec_regressions() {
    let must_parse = [
        // Negative PTP step magnitude: the `dev@at:us` grammar carries a
        // sign in the last field.
        "topo=line:2;wl=cbr;ptpstep=1@5:-250",
        // Negative asymmetry.
        "topo=line:3;wl=cbr;ptpasym=-200",
        // Repeated fault keys accumulate in order.
        "topo=line:4;wl=cbr;snaps=6;fault=1@2;fault=2@2;fault=3@4",
        // Every fault class at once (the chaos-cocktail shape).
        "topo=line:4;wl=cbr;cs=1;mod=64;snaps=6;ival=5;fault=3@4;flap=1:1@7+4;\
         notif=2:dup:3;cpcrash=0@9+5;ptpdrift=10000;load=5;seed=0x8011",
        // Whitespace and empty segments are tolerated.
        " topo=line:3 ; wl=cbr ;; seed=17 ",
        // Decimal and hex seeds.
        "topo=line:3;wl=cbr;seed=12345",
        "topo=line:3;wl=cbr;seed=0xDEADBEEF",
    ];
    for spec in must_parse {
        let sc = Scenario::from_spec(spec)
            .unwrap_or_else(|e| panic!("pinned spec must parse: {spec}: {e}"));
        let canon = sc.spec();
        assert_eq!(
            Scenario::from_spec(&canon).as_ref(),
            Ok(&sc),
            "pinned spec must canonicalize: {spec} -> {canon}"
        );
    }
    let must_fail = [
        // Truncated structured values.
        "topo=line:3;wl=cbr;flap=1:1@5",
        "topo=line:3;wl=cbr;fault=1",
        "topo=line:3;wl=cbr;notif=1:drop",
        "topo=line:3;wl=cbr;cpcrash=1@5",
        "topo=line:3;wl=cbr;ptpstep=1@5",
        // Out-of-range values the validator owns.
        "topo=line:3;wl=cbr;ptpstep=1@0:100",
        "topo=line:3;wl=cbr;flap=1:1@0+5",
        "topo=line:0;wl=cbr",
        // Overflowing numerics must error, not wrap.
        "topo=line:3;wl=cbr;mod=99999",
        "topo=line:3;wl=cbr;seed=0xZZ",
    ];
    for spec in must_fail {
        assert!(
            Scenario::from_spec(spec).is_err(),
            "pinned spec must be rejected: {spec}"
        );
    }
}
