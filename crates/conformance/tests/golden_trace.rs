//! Golden-trace tests: small scenarios' snapshot-lifecycle traces are
//! pinned byte-for-byte — one healthy channel-state run, and one
//! clock-skew run exercising every PTP degradation knob.
//!
//! The traces are pure sim-time JSONL, so any change to protocol event
//! ordering, event vocabulary, field layout, or the JSON writer shows up
//! here as a diff. To re-bless after an *intentional* change:
//!
//! ```text
//! SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace
//! ```
//!
//! then review `git diff` on the golden files before committing them.

use conformance::runner::{run_fabric_sharded_full, run_fabric_traced};
use conformance::scenario::Scenario;

const SPEC: &str = "topo=line:2;wl=cbr;lb=ecmp;cs=1;mod=16;snaps=2;ival=2;seed=0x60de";
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/line2_cs_trace.jsonl"
);

const SKEW_SPEC: &str = "topo=line:2;wl=cbr;lb=ecmp;cs=0;mod=16;snaps=3;ival=3;\
                         ptpdrift=50000;ptpstep=1@4:300;ptpasym=80;seed=0x5ce1";
const SKEW_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/line2_ptp_skew_trace.jsonl"
);

#[test]
fn line2_channel_state_trace_matches_golden() {
    let sc = Scenario::from_spec(SPEC).expect("golden spec is valid");
    let (run, divergences, lines) = run_fabric_traced(&sc);
    assert!(divergences.is_empty(), "golden scenario must be conformant");
    assert_eq!(run.snapshots.len(), sc.snapshots);
    assert!(!lines.is_empty());

    let mut got = lines.join("\n");
    got.push('\n');

    if std::env::var_os("SPEEDLIGHT_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden trace");
        return;
    }

    let want = include_str!("golden/line2_cs_trace.jsonl");
    assert!(
        got == want,
        "trace diverged from golden file ({} vs {} lines).\n\
         If the change is intentional, re-bless with\n\
         SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace",
        got.lines().count(),
        want.lines().count(),
    );
}

const SHARDED_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/line2_cs_sharded_trace.jsonl"
);

/// Sharded-engine variant of the healthy channel-state golden: the
/// merged trace is pinned byte-for-byte and must be identical at 1, 2,
/// and 4 shards, along with the merged metrics JSON. The sharded merge
/// order differs from the serial scheduler's insertion order, so this is
/// a separate golden file — but the event *content* is the same
/// lifecycle vocabulary the serial golden pins.
#[test]
fn line2_channel_state_sharded_trace_matches_golden() {
    let sc = Scenario::from_spec(SPEC).expect("golden spec is valid");
    let (run, lines, metrics, _) = run_fabric_sharded_full(&sc, 1);
    assert_eq!(run.snapshots.len(), sc.snapshots);
    assert!(!lines.is_empty());

    let mut got = lines.join("\n");
    got.push('\n');

    for shards in [2usize, 4] {
        let (_, other_lines, other_metrics, _) = run_fabric_sharded_full(&sc, shards);
        let mut other = other_lines.join("\n");
        other.push('\n');
        assert!(
            other == got,
            "sharded trace diverges at {shards} shards ({} vs {} lines)",
            other.lines().count(),
            got.lines().count(),
        );
        assert!(
            other_metrics == metrics,
            "sharded metrics diverge at {shards} shards"
        );
    }

    if std::env::var_os("SPEEDLIGHT_BLESS").is_some() {
        std::fs::write(SHARDED_GOLDEN_PATH, &got).expect("write sharded golden trace");
        return;
    }

    let want = include_str!("golden/line2_cs_sharded_trace.jsonl");
    assert!(
        got == want,
        "sharded trace diverged from golden file ({} vs {} lines).\n\
         If the change is intentional, re-bless with\n\
         SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace",
        got.lines().count(),
        want.lines().count(),
    );
}

/// Clock-skew variant: holdover drift + a mid-run offset step + path
/// asymmetry all shift initiation *timing*, and the pinned trace proves
/// the shifted schedule is itself deterministic — the degradation model
/// never touches the RNG stream, only the initiation target times.
#[test]
fn line2_ptp_skew_trace_matches_golden() {
    let sc = Scenario::from_spec(SKEW_SPEC).expect("skew golden spec is valid");
    assert!(sc.has_ptp_degradation());
    let (run, divergences, lines) = run_fabric_traced(&sc);
    // Bounded skew only delays markers; the oracle stays fully strict.
    assert!(divergences.is_empty(), "skew scenario must be conformant");
    assert_eq!(run.snapshots.len(), sc.snapshots);
    assert!(!lines.is_empty());

    let mut got = lines.join("\n");
    got.push('\n');

    if std::env::var_os("SPEEDLIGHT_BLESS").is_some() {
        std::fs::write(SKEW_GOLDEN_PATH, &got).expect("write skew golden trace");
        return;
    }

    let want = include_str!("golden/line2_ptp_skew_trace.jsonl");
    assert!(
        got == want,
        "clock-skew trace diverged from golden file ({} vs {} lines).\n\
         If the change is intentional, re-bless with\n\
         SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace",
        got.lines().count(),
        want.lines().count(),
    );
}
