//! Golden-trace test: a small channel-state scenario's snapshot-lifecycle
//! trace is pinned byte-for-byte.
//!
//! The trace is pure sim-time JSONL, so any change to protocol event
//! ordering, event vocabulary, field layout, or the JSON writer shows up
//! here as a diff. To re-bless after an *intentional* change:
//!
//! ```text
//! SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace
//! ```
//!
//! then review `git diff` on the golden file before committing it.

use conformance::runner::run_fabric_traced;
use conformance::scenario::Scenario;

const SPEC: &str = "topo=line:2;wl=cbr;lb=ecmp;cs=1;mod=16;snaps=2;ival=2;seed=0x60de";
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/line2_cs_trace.jsonl"
);

#[test]
fn line2_channel_state_trace_matches_golden() {
    let sc = Scenario::from_spec(SPEC).expect("golden spec is valid");
    let (run, divergences, lines) = run_fabric_traced(&sc);
    assert!(divergences.is_empty(), "golden scenario must be conformant");
    assert_eq!(run.snapshots.len(), sc.snapshots);
    assert!(!lines.is_empty());

    let mut got = lines.join("\n");
    got.push('\n');

    if std::env::var_os("SPEEDLIGHT_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden trace");
        return;
    }

    let want = include_str!("golden/line2_cs_trace.jsonl");
    assert!(
        got == want,
        "trace diverged from golden file ({} vs {} lines).\n\
         If the change is intentional, re-bless with\n\
         SPEEDLIGHT_BLESS=1 cargo test -p conformance --test golden_trace",
        got.lines().count(),
        want.lines().count(),
    );
}
