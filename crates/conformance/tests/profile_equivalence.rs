//! The CI `profile-equivalence` surface: the deterministic
//! `speedlight-profile/v1` artifact (and the merged metrics JSON it
//! travels with) must be byte-identical at every worker-thread count ×
//! shard count. Jobs are pinned with `parfan::with_jobs`; shards are an
//! explicit simulation parameter — so one test process sweeps the whole
//! {1,2,4} × {1,2,4} grid deterministically.
//!
//! The fig9-style scenario (leaf-spine testbed, Hadoop workload,
//! channel-state snapshots — the shape behind the paper's Fig. 9 sync
//! CDFs) is additionally pinned against a committed golden profile, so
//! any change to stall accounting, window math, or the profile writer
//! shows up as a reviewable diff. To re-bless after an *intentional*
//! change:
//!
//! ```text
//! SPEEDLIGHT_BLESS=1 cargo test -p conformance --test profile_equivalence
//! ```

use conformance::runner::run_fabric_sharded_full;
use conformance::{matrix, Scenario};

/// Leaf-spine + Hadoop + channel-state: the matrix scenario closest to
/// the paper's Fig. 9 testbed.
const FIG9_SCENARIO: &str = "hadoop_ecmp_cs";

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fig9_profile.json"
);

fn profile_at(sc: &Scenario, jobs: usize, shards: usize) -> (String, String) {
    let (_, _, metrics, profile) = parfan::with_jobs(jobs, || run_fabric_sharded_full(sc, shards));
    (metrics, profile)
}

#[test]
fn fig9_profile_is_jobs_and_shard_count_invariant() {
    let sc = Scenario::from_spec(matrix::spec(FIG9_SCENARIO)).expect("matrix spec parses");
    let (ref_metrics, ref_profile) = profile_at(&sc, 1, 1);
    assert!(ref_profile.contains("speedlight-profile/v1"));
    assert!(obs::profile::extract_digest(&ref_profile).is_some());

    for jobs in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            if (jobs, shards) == (1, 1) {
                continue;
            }
            let (metrics, profile) = profile_at(&sc, jobs, shards);
            assert!(
                profile == ref_profile,
                "profile diverges at jobs={jobs} shards={shards}"
            );
            assert!(
                metrics == ref_metrics,
                "metrics diverge at jobs={jobs} shards={shards}"
            );
        }
    }

    if std::env::var_os("SPEEDLIGHT_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &ref_profile).expect("write golden profile");
        return;
    }

    let want = include_str!("golden/fig9_profile.json");
    assert!(
        ref_profile == want,
        "profile diverged from golden file.\n\
         If the change is intentional, re-bless with\n\
         SPEEDLIGHT_BLESS=1 cargo test -p conformance --test profile_equivalence"
    );
}

/// The profile has to stay meaningful, not just stable: every external
/// domain row is present, windows advanced, and stall is bounded by the
/// trivial ceiling `windows × lookahead` per domain.
#[test]
fn fig9_profile_is_internally_consistent() {
    let sc = Scenario::from_spec(matrix::spec(FIG9_SCENARIO)).expect("matrix spec parses");
    let (_, profile) = profile_at(&sc, 2, 2);

    let field = |line: &str, key: &str| -> Option<u64> {
        let rest = line.split(&format!("\"{key}\":")).nth(1)?.trim_start();
        let end = rest.find([',', ' ', '}']).unwrap_or(rest.len());
        rest.get(..end)?.parse().ok()
    };

    let mut windows = 0u64;
    let mut lookahead = 0u64;
    let mut devices = 0usize;
    let mut total_events = 0u64;
    for line in profile.lines() {
        if let Some(w) = field(line, "windows") {
            windows = w;
        }
        if let Some(l) = field(line, "lookahead_ns") {
            lookahead = l;
        }
        if line.contains("\"kind\":\"device\"") || line.contains("\"kind\":\"host\"") {
            devices += 1;
            let events = field(line, "events").expect("domain row has events");
            let stall = field(line, "stall_ns").expect("domain row has stall_ns");
            total_events += events;
            assert!(
                stall <= windows * lookahead,
                "stall {stall} exceeds windows×lookahead ceiling"
            );
        }
    }
    assert!(windows > 0, "run must close at least one window");
    assert!(lookahead > 0);
    assert!(devices >= 8, "leaf-spine testbed has switches and hosts");
    assert!(total_events > 0, "devices executed events");
}
