//! The seeded conformance matrix.
//!
//! Every test runs one [`Scenario`] through `run_scenario` — the
//! deterministic fabric always, the threaded emulation when `emu=1` — and
//! asserts the oracle found no divergence. On failure a replayable
//! artifact is dumped and the panic message carries the one-command
//! reproduction line.

use conformance::artifact::REPLAY_ENV;
use conformance::oracle::check_run;
use conformance::runner::{expectations, run_fabric};
use conformance::{assert_conformant, run_scenario, Divergence, Lb, Scenario, WorkloadKind};
use speedlight_core::observer::UnitOutcome;

fn sc(spec: &str) -> Scenario {
    Scenario::from_spec(spec).expect("matrix spec must parse")
}

fn run_and_check(spec: &str) {
    let scenario = sc(spec);
    let outcome = run_scenario(&scenario);
    assert_conformant(&outcome);
    assert_eq!(
        outcome.fabric.snapshots.len(),
        scenario.snapshots,
        "fabric must complete every scheduled snapshot for `{spec}`"
    );
    assert!(
        !outcome.fabric.log.is_empty(),
        "fabric delivery log empty for `{spec}`"
    );
    if let Some(emu) = &outcome.emulation {
        // Wall-clock substrate: the observer may skip a schedule slot
        // under the no-lapping cap, but never more than one.
        assert!(
            emu.snapshots.len() + 1 >= scenario.snapshots,
            "emulation completed only {} of {} snapshots for `{spec}`",
            emu.snapshots.len(),
            scenario.snapshots
        );
        assert!(
            !emu.log.is_empty(),
            "emulation delivery log empty for `{spec}`"
        );
    }
}

macro_rules! scenario_tests {
    ($($name:ident => $spec:expr,)*) => {
        $(
            #[test]
            fn $name() {
                run_and_check($spec);
            }
        )*
        const SCENARIOS: &[&str] = &[$($spec),*];
    };
}

scenario_tests! {
    // Paper workloads on the leaf-spine testbed: every workload × both
    // load balancers × both snapshot variants, distinct seeds and moduli.
    hadoop_ecmp_nocs => "topo=leafspine;wl=hadoop;lb=ecmp;cs=0;mod=16;snaps=6;ival=5;seed=0x1001",
    hadoop_ecmp_cs => "topo=leafspine;wl=hadoop;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;seed=0x1002",
    hadoop_flowlet_nocs => "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=64;snaps=6;ival=5;seed=0x1003",
    hadoop_flowlet_cs => "topo=leafspine;wl=hadoop;lb=flowlet;cs=1;mod=8;snaps=6;ival=5;seed=0x1004",
    graphx_ecmp_nocs => "topo=leafspine;wl=graphx;lb=ecmp;cs=0;mod=8;snaps=6;ival=5;seed=0x2001",
    graphx_ecmp_cs => "topo=leafspine;wl=graphx;lb=ecmp;cs=1;mod=64;snaps=6;ival=5;seed=0x2002",
    graphx_flowlet_nocs => "topo=leafspine;wl=graphx;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x2003",
    graphx_flowlet_cs => "topo=leafspine;wl=graphx;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x2004",
    memcache_ecmp_nocs => "topo=leafspine;wl=memcache;lb=ecmp;cs=0;mod=64;snaps=6;ival=5;seed=0x3001",
    memcache_ecmp_cs => "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=8;snaps=6;ival=5;seed=0x3002",
    memcache_flowlet_nocs => "topo=leafspine;wl=memcache;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;seed=0x3003",
    memcache_flowlet_cs => "topo=leafspine;wl=memcache;lb=flowlet;cs=1;mod=16;snaps=6;ival=5;seed=0x3004",

    // §5.2 wraparound stress: tiny moduli force many snapshot-ID wraps
    // while the oracle compares at full (unwrapped) epoch resolution.
    line_wrap_mod4_nocs => "topo=line:3;wl=cbr;cs=0;mod=4;snaps=10;ival=4;seed=0x4001",
    line_wrap_mod4_cs => "topo=line:3;wl=cbr;cs=1;mod=4;snaps=10;ival=4;seed=0x4002",
    line_wrap_mod8_nocs => "topo=line:4;wl=cbr;cs=0;mod=8;snaps=12;ival=3;seed=0x4003",
    line_wrap_mod8_cs => "topo=line:4;wl=cbr;cs=1;mod=8;snaps=12;ival=3;seed=0x4004",

    // Mid-run device failures: the faulted device must be excluded from
    // every forced snapshot; in no-channel-state mode *only* it may be.
    fault_leafspine_cs => "topo=leafspine;wl=memcache;lb=ecmp;cs=1;mod=16;snaps=6;ival=5;fault=3@3;seed=0x5001",
    fault_line_nocs_strict => "topo=line:4;wl=cbr;cs=0;mod=16;snaps=6;ival=5;fault=2@3;seed=0x5002",
    fault_leafspine_nocs_strict => "topo=leafspine;wl=hadoop;lb=flowlet;cs=0;mod=16;snaps=6;ival=5;fault=1@2;seed=0x5003",

    // Fabric vs threaded emulation on the same line topologies: both
    // substrates are oracle-checked and their unit sets must agree.
    emu_line3 => "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;seed=0x6001",
    emu_line2_wrap => "topo=line:2;wl=cbr;cs=0;mod=8;snaps=6;ival=8;emu=1;seed=0x6002",
    emu_line4 => "topo=line:4;wl=cbr;cs=0;mod=64;snaps=5;ival=10;emu=1;seed=0x6003",
    emu_line3_fault => "topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=8;emu=1;fault=1@2;seed=0x6004",
}

/// The acceptance floor for the matrix itself: ≥ 20 scenarios spanning
/// every workload, both load balancers, both snapshot variants, at least
/// one fault schedule, and at least one emulation arm.
#[test]
fn matrix_meets_coverage_floor() {
    let scenarios: Vec<Scenario> = SCENARIOS.iter().map(|s| sc(s)).collect();
    assert!(scenarios.len() >= 20, "only {} scenarios", scenarios.len());
    for wl in [
        WorkloadKind::Hadoop,
        WorkloadKind::GraphX,
        WorkloadKind::Memcache,
        WorkloadKind::Cbr,
    ] {
        assert!(
            scenarios.iter().any(|s| s.workload == wl),
            "workload {wl:?} missing from the matrix"
        );
    }
    for lb in [Lb::Ecmp, Lb::Flowlet] {
        assert!(scenarios.iter().any(|s| s.lb == lb), "{lb:?} missing");
    }
    for cs in [false, true] {
        assert!(scenarios.iter().any(|s| s.channel_state == cs));
    }
    assert!(scenarios.iter().any(|s| s.fault.is_some()));
    assert!(scenarios.iter().any(|s| s.emulate));
    // Seeds are distinct: no scenario accidentally re-runs another.
    let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), scenarios.len(), "duplicate seeds in matrix");
}

/// Mutation sensitivity: corrupting a single unit's reported local value
/// in an otherwise-conformant run must be flagged, naming that unit.
#[test]
fn mutation_corrupt_local_value_is_detected() {
    let scenario = sc("topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;seed=0x7001");
    let expect = expectations(&scenario);
    let (run, conservation) = run_fabric(&scenario);
    assert!(conservation.is_empty(), "{conservation:?}");
    assert!(check_run(&run, &expect).is_empty(), "clean run must pass");

    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.last_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { local, .. } = outcome else {
        unreachable!()
    };
    *local += 1;

    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ValueMismatch { unit, .. } if *unit == target
        )),
        "single-unit corruption must be detected, got {divergences:?}"
    );
}

/// Mutation sensitivity for the channel-state variant: corrupting one
/// unit's reported *channel* state must be flagged.
#[test]
fn mutation_corrupt_channel_state_is_detected() {
    let scenario = sc("topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;seed=0x7002");
    let expect = expectations(&scenario);
    let (run, conservation) = run_fabric(&scenario);
    assert!(conservation.is_empty(), "{conservation:?}");
    assert!(check_run(&run, &expect).is_empty(), "clean run must pass");

    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.first_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { channel, .. } = outcome else {
        unreachable!()
    };
    *channel += 7;

    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ChannelMismatch { unit, .. } if *unit == target
        )),
        "channel-state corruption must be detected, got {divergences:?}"
    );
}

/// Replay hook: when `SPEEDLIGHT_SCENARIO` holds a spec string (as every
/// failure artifact prescribes), re-execute exactly that scenario. A
/// no-op otherwise, so the test is always safe to run.
#[test]
fn replay_from_env() {
    let Ok(spec) = std::env::var(REPLAY_ENV) else {
        return;
    };
    eprintln!("[conformance] replaying scenario from {REPLAY_ENV}: {spec}");
    run_and_check(&spec);
}
