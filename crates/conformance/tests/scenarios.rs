//! The seeded conformance matrix.
//!
//! Every test runs one [`Scenario`] through `run_scenario` — the
//! deterministic fabric always, the threaded emulation when `emu=1` — and
//! asserts the oracle found no divergence. On failure a replayable
//! artifact is dumped and the panic message carries the one-command
//! reproduction line.

use conformance::artifact::REPLAY_ENV;
use conformance::oracle::check_run;
use conformance::runner::{expectations, run_fabric};
use conformance::{
    assert_conformant, matrix, matrix_digest, run_matrix, run_scenario, Divergence, Lb, Scenario,
    WorkloadKind,
};
use speedlight_core::observer::UnitOutcome;

fn sc(spec: &str) -> Scenario {
    Scenario::from_spec(spec).expect("matrix spec must parse")
}

fn run_and_check(spec: &str) {
    let scenario = sc(spec);
    let outcome = run_scenario(&scenario);
    assert_conformant(&outcome);
    assert_eq!(
        outcome.fabric.snapshots.len(),
        scenario.snapshots,
        "fabric must complete every scheduled snapshot for `{spec}`"
    );
    assert!(
        !outcome.fabric.log.is_empty(),
        "fabric delivery log empty for `{spec}`"
    );
    if let Some(emu) = &outcome.emulation {
        // Wall-clock substrate: the observer may skip a schedule slot
        // under the no-lapping cap, but never more than one.
        assert!(
            emu.snapshots.len() + 1 >= scenario.snapshots,
            "emulation completed only {} of {} snapshots for `{spec}`",
            emu.snapshots.len(),
            scenario.snapshots
        );
        assert!(
            !emu.log.is_empty(),
            "emulation delivery log empty for `{spec}`"
        );
    }
}

// One test per scenario; specs live in `conformance::matrix::SCENARIOS`
// (the single source of truth, shared with the parallel whole-matrix
// runner). `covered_scenarios` below proves this list matches the matrix.
macro_rules! scenario_tests {
    ($($name:ident,)*) => {
        $(
            #[test]
            fn $name() {
                run_and_check(matrix::spec(stringify!($name)));
            }
        )*
        const TESTED_NAMES: &[&str] = &[$(stringify!($name)),*];
    };
}

scenario_tests! {
    hadoop_ecmp_nocs,
    hadoop_ecmp_cs,
    hadoop_flowlet_nocs,
    hadoop_flowlet_cs,
    graphx_ecmp_nocs,
    graphx_ecmp_cs,
    graphx_flowlet_nocs,
    graphx_flowlet_cs,
    memcache_ecmp_nocs,
    memcache_ecmp_cs,
    memcache_flowlet_nocs,
    memcache_flowlet_cs,
    line_wrap_mod4_nocs,
    line_wrap_mod4_cs,
    line_wrap_mod8_nocs,
    line_wrap_mod8_cs,
    fault_leafspine_cs,
    fault_line_nocs_strict,
    fault_leafspine_nocs_strict,
    emu_line3,
    emu_line2_wrap,
    emu_line4,
    emu_line3_fault,
}

/// Every matrix scenario has a per-scenario test and vice versa — a
/// scenario added to one list but not the other is a hard failure, not a
/// silent coverage gap.
#[test]
fn covered_scenarios() {
    let tested: std::collections::BTreeSet<&str> = TESTED_NAMES.iter().copied().collect();
    let in_matrix: std::collections::BTreeSet<&str> =
        matrix::SCENARIOS.iter().map(|&(n, _)| n).collect();
    assert_eq!(tested, in_matrix);
}

/// The acceptance floor for the matrix itself: ≥ 20 scenarios spanning
/// every workload, both load balancers, both snapshot variants, at least
/// one fault schedule, and at least one emulation arm.
#[test]
fn matrix_meets_coverage_floor() {
    let scenarios: Vec<Scenario> = matrix::SCENARIOS.iter().map(|&(_, s)| sc(s)).collect();
    assert!(scenarios.len() >= 20, "only {} scenarios", scenarios.len());
    for wl in [
        WorkloadKind::Hadoop,
        WorkloadKind::GraphX,
        WorkloadKind::Memcache,
        WorkloadKind::Cbr,
    ] {
        assert!(
            scenarios.iter().any(|s| s.workload == wl),
            "workload {wl:?} missing from the matrix"
        );
    }
    for lb in [Lb::Ecmp, Lb::Flowlet] {
        assert!(scenarios.iter().any(|s| s.lb == lb), "{lb:?} missing");
    }
    for cs in [false, true] {
        assert!(scenarios.iter().any(|s| s.channel_state == cs));
    }
    assert!(scenarios.iter().any(|s| !s.faults.is_empty()));
    assert!(scenarios.iter().any(|s| s.emulate));
    // Seeds are distinct: no scenario accidentally re-runs another.
    let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), scenarios.len(), "duplicate seeds in matrix");
}

/// Mutation sensitivity: corrupting a single unit's reported local value
/// in an otherwise-conformant run must be flagged, naming that unit.
#[test]
fn mutation_corrupt_local_value_is_detected() {
    let scenario = sc("topo=line:3;wl=cbr;cs=0;mod=16;snaps=6;ival=5;seed=0x7001");
    let expect = expectations(&scenario);
    let (run, conservation) = run_fabric(&scenario);
    assert!(conservation.is_empty(), "{conservation:?}");
    assert!(check_run(&run, &expect).is_empty(), "clean run must pass");

    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.last_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { local, .. } = outcome else {
        unreachable!()
    };
    *local += 1;

    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ValueMismatch { unit, .. } if *unit == target
        )),
        "single-unit corruption must be detected, got {divergences:?}"
    );
}

/// Mutation sensitivity for the channel-state variant: corrupting one
/// unit's reported *channel* state must be flagged.
#[test]
fn mutation_corrupt_channel_state_is_detected() {
    let scenario = sc("topo=line:3;wl=cbr;cs=1;mod=16;snaps=6;ival=5;seed=0x7002");
    let expect = expectations(&scenario);
    let (run, conservation) = run_fabric(&scenario);
    assert!(conservation.is_empty(), "{conservation:?}");
    assert!(check_run(&run, &expect).is_empty(), "clean run must pass");

    let mut corrupted = run.clone();
    let entry = corrupted.snapshots.first_mut().expect("snapshots exist");
    let (&target, outcome) = entry
        .snapshot
        .units
        .iter_mut()
        .find(|(_, o)| matches!(o, UnitOutcome::Value { .. }))
        .expect("a Value outcome exists");
    let UnitOutcome::Value { channel, .. } = outcome else {
        unreachable!()
    };
    *channel += 7;

    let divergences = check_run(&corrupted, &expect);
    assert!(
        divergences.iter().any(|d| matches!(
            d,
            Divergence::ChannelMismatch { unit, .. } if *unit == target
        )),
        "channel-state corruption must be detected, got {divergences:?}"
    );
}

/// Replay hook: when `SPEEDLIGHT_SCENARIO` holds a spec string (as every
/// failure artifact prescribes), re-execute exactly that scenario. A
/// no-op otherwise, so the test is always safe to run.
#[test]
fn replay_from_env() {
    let Ok(spec) = std::env::var(REPLAY_ENV) else {
        return;
    };
    obs::sinks::stderr_line(&format!(
        "[conformance] replaying scenario from {REPLAY_ENV}: {spec}"
    ));
    run_and_check(&spec);
}

/// The tentpole acceptance bar: the whole matrix run through the parallel
/// fan-out produces byte-identical deterministic results to a serial run.
/// The emulation arms are forced off here — they are wall-clock substrates
/// and excluded from the digest by design (see `fabric_digest`); the next
/// test exercises them in parallel separately.
#[test]
fn matrix_parallel_matches_serial() {
    let scenarios: Vec<Scenario> = matrix::SCENARIOS
        .iter()
        .map(|&(_, s)| {
            let mut s = sc(s);
            s.emulate = false;
            s
        })
        .collect();
    let serial = parfan::with_jobs(1, || matrix_digest(&run_matrix(&scenarios)));
    let parallel = parfan::with_jobs(4, || matrix_digest(&run_matrix(&scenarios)));
    assert_eq!(
        serial, parallel,
        "parallel matrix digest {parallel:#018x} != serial {serial:#018x}"
    );
}

/// The staged pipeline observer (the default) is byte-identical to the
/// monolithic reference observer across the whole conformance matrix: one
/// reference run of every scenario digests equal to pipeline runs at
/// `SPEEDLIGHT_JOBS` 1, 2, and 4. Emulation arms are forced off as in
/// `matrix_parallel_matches_serial` — they are wall-clock and excluded
/// from the digest by design.
#[test]
fn pipeline_observer_matches_reference_across_matrix() {
    let scenarios: Vec<Scenario> = matrix::SCENARIOS
        .iter()
        .map(|&(_, s)| {
            let mut s = sc(s);
            s.emulate = false;
            s
        })
        .collect();
    let reference = parfan::with_jobs(2, || {
        matrix_digest(&conformance::runner::run_matrix_reference(&scenarios))
    });
    for jobs in [1, 2, 4] {
        let pipeline = parfan::with_jobs(jobs, || matrix_digest(&run_matrix(&scenarios)));
        assert_eq!(
            pipeline, reference,
            "pipeline matrix digest {pipeline:#018x} at jobs={jobs} != reference {reference:#018x}"
        );
    }
}

/// Misattribution regression at the conformance layer: a report whose
/// unit claims a different device than the one delivering it must be
/// rejected — identically — by both observer implementations, and the
/// rejection must be traced. Before the fix the reference observer
/// credited the spoofed value to the victim unit.
#[test]
fn misattributed_report_rejected_by_both_observers() {
    use speedlight_core::control::{Report, ReportValue};
    use speedlight_core::observer::{Observer, ObserverConfig};
    use speedlight_core::pipeline::{PipelineConfig, PipelineObserver};
    use speedlight_core::types::UnitId;

    let report = |unit: UnitId, epoch, local| Report {
        unit,
        epoch,
        value: ReportValue::Value { local, channel: 0 },
    };
    let units = |device| vec![UnitId::ingress(device, 0)];

    let mut reference = Observer::new(ObserverConfig::for_modulus(16));
    let mut pipeline = PipelineObserver::new(PipelineConfig::for_modulus(16));
    for obs in [0u16, 1] {
        reference.register_device(obs, units(obs));
        pipeline.register_device(obs, units(obs));
    }

    let epoch = reference.begin_snapshot().expect("reference initiates");
    assert_eq!(pipeline.begin_snapshot(), Some(epoch));

    // Device 0 delivers a report for device 1's unit: both reject it.
    let spoofed = report(UnitId::ingress(1, 0), epoch, 99);
    let mut ring = obs::sinks::RingSink::new(8);
    assert!(reference
        .on_report_traced(0, spoofed, &mut ring, 0)
        .is_none());
    assert!(pipeline
        .on_report_traced(0, spoofed, &mut ring, 0)
        .is_none());
    assert_eq!(reference.misattributed_count(), 1);
    assert_eq!(pipeline.misattributed_count(), 1);
    let traced = ring
        .events()
        .filter(|e| e.name == "report.misattributed")
        .count();
    assert_eq!(traced, 2, "both rejections must be traced");

    // Genuine reports (device 0's unit, then device 1's own) still
    // complete the epoch — with the real value, not the spoofed 99.
    assert!(reference
        .on_report(0, report(UnitId::ingress(0, 0), epoch, 7))
        .is_none());
    assert!(pipeline
        .on_report(0, report(UnitId::ingress(0, 0), epoch, 7))
        .is_none());
    let snap_ref = reference
        .on_report(1, report(UnitId::ingress(1, 0), epoch, 12))
        .expect("reference completes");
    let snap_pipe = pipeline
        .on_report(1, report(UnitId::ingress(1, 0), epoch, 12))
        .expect("pipeline completes");
    assert_eq!(snap_ref, snap_pipe);
    assert_eq!(
        snap_ref.units[&UnitId::ingress(1, 0)],
        speedlight_core::observer::UnitOutcome::Value {
            local: 12,
            channel: 0
        }
    );
}

/// The emulation-bearing scenarios still pass the oracle when their
/// (thread-spawning, wall-clock) runs are themselves co-scheduled by the
/// parallel fan-out.
#[test]
fn matrix_parallel_runs_emulation_arms() {
    let scenarios: Vec<Scenario> = matrix::SCENARIOS
        .iter()
        .map(|&(_, s)| sc(s))
        .filter(|s| s.emulate)
        .collect();
    assert!(scenarios.len() >= 3, "emulation arms missing from matrix");
    let outcomes = parfan::with_jobs(2, || run_matrix(&scenarios));
    for o in &outcomes {
        assert_conformant(o);
        assert!(o.emulation.is_some(), "emulation arm did not run");
    }
}
